//! Offline shim for `rand`: a SplitMix64-backed `StdRng` plus the `Rng` /
//! `SeedableRng` traits with the `gen_range` forms the workspace uses
//! (half-open and inclusive integer ranges). Not cryptographic — the
//! workspace only uses it for simulation workloads and test inputs.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, bound)` without modulo bias (Lemire rejection is
/// overkill for a shim; plain widening-multiply keeps bias below 2^-32 for
/// the small bounds this workspace uses).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Integer types [`SampleRange`] can draw. A single blanket impl per range
/// shape keeps integer-literal inference working (`gen_range(0..1000)` must
/// unify the literal with the result type, as the real crate does).
pub trait SampleUniform: Copy {
    /// Widens into a common signed base.
    fn as_base(self) -> i128;
    /// Narrows back; the value is always in range by construction.
    fn from_base(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn as_base(self) -> i128 {
                self as i128
            }
            fn from_base(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.as_base(), self.end.as_base());
        assert!(start < end, "cannot sample empty range");
        let span = (end - start) as u64;
        T::from_base(start + below(rng, span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().as_base(), self.end().as_base());
        assert!(start <= end, "cannot sample empty range");
        let span = (end - start) as u128 + 1;
        if span > u64::MAX as u128 {
            // Only reachable for the full 64-bit domain.
            return T::from_base(start + rng.next_u64() as i128);
        }
        T::from_base(start + below(rng, span as u64) as i128)
    }
}

/// User-facing random-number interface.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic, fast, non-crypto).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
