//! Offline shim for `proptest`: a miniature property-testing harness that
//! implements the strategy combinators and macros this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the values
//!   involved (via the assertion message); cases are deterministic per test
//!   name, so a failure reproduces on re-run.
//! * Case generation is seeded from the test's module path + case index, so
//!   runs are reproducible without a persistence file.
//! * String patterns support the `.{m,n}` form the workspace uses; anything
//!   else falls back to short printable soup.

// Let code inside this crate (doc examples, unit tests) use `proptest::`
// paths exactly as downstream crates do.
extern crate self as proptest;

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub struct TestCaseError {
        reject: bool,
        msg: String,
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: String) -> Self {
            TestCaseError { reject: false, msg }
        }

        /// A rejected case (`prop_assume!` miss) — skipped, not failed.
        pub fn reject() -> Self {
            TestCaseError {
                reject: true,
                msg: "assumption not met".into(),
            }
        }

        /// Is this a rejection rather than a failure?
        pub fn is_rejection(&self) -> bool {
            self.reject
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic per-case generator (SplitMix64 seeded by test identity).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform index in `[0, len)`.
        pub fn index(&mut self, len: usize) -> usize {
            self.below(len as u64) as usize
        }

        /// Coin flip.
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 0
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy behind a cheaply-cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Arc::new(move |rng| self.generate(rng)),
            }
        }

        /// Builds recursive structures: `self` is the leaf case; `f` wraps a
        /// strategy for depth *n* into one for depth *n + 1*. `depth` bounds
        /// nesting; the size-hint parameters of the real crate are accepted
        /// and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let expanded = f(strat).boxed();
                strat = Union::new(vec![leaf.clone(), expanded]).boxed();
            }
            strat
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<V> {
        gen: Arc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: self.gen.clone(),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.index(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_ranges!(u8, u16, u32, u64, usize);

    /// `&'static str` regex-ish patterns; only the `.{m,n}` form generates
    /// pattern-shaped output (printable soup of that length).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = min + rng.index(max - min + 1);
            // Printable ASCII plus occasional exotica; no newlines, matching
            // regex `.`.
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.index(20) {
                    0 => '\t',
                    1 => char::from_u32(0x00c0 + rng.below(0x80) as u32).unwrap_or('é'),
                    _ => (0x20u8 + rng.below(0x5f) as u8) as char,
                };
                out.push(c);
            }
            out
        }
    }

    /// Parses `.{m,n}` into `(m, n)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (m, n) = rest.split_once(',')?;
        let (m, n) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        (m <= n).then_some((m, n))
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 => 0, S1 => 1);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8, S9 => 9);

    /// Strategy for any [`Arbitrary`] type — see [`super::arbitrary::any`].
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.flip()
        }
    }

    /// The canonical strategy for `T` (`any::<u32>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.start + rng.index(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (best-effort when the element domain is too small).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets of `element` values with size in `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.start + rng.index(self.size.end - self.size.start);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so tiny element
            // domains can't loop forever.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (50% `Some`).
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.flip().then(|| self.inner.generate(rng))
        }
    }
}

/// The usual glob import: strategies, config, and macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly above the fn, as
/// with the real crate's macro) running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg_pat = $crate::strategy::Strategy::generate(&($arg_strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name))
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts within a proptest body; failure fails the case with context
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(left_val == right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left_val,
                            right_val,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(left_val == right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if left_val == right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left_val,
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies respect bounds; assume/assert plumbing works.
        #[test]
        fn ranges_and_assume(x in 10u32..20, y in 0u8..=4) {
            prop_assume!(x != 13);
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
            prop_assert_ne!(x, 13);
        }

        /// Tuples, maps, oneofs, and collections compose.
        #[test]
        fn combinators_compose(
            v in proptest::collection::vec((0u16..5, any::<bool>()), 1..8),
            s in proptest::collection::btree_set(0usize..10, 1..5),
            opt in proptest::option::of(Just(7u8)),
            label in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|(n, _)| *n < 5));
            prop_assert!(!s.is_empty() && s.len() < 5);
            prop_assert!(opt.is_none() || opt == Some(7));
            prop_assert!(label == "a" || label == "b");
        }

        /// The `.{m,n}` string pattern honours its length bounds.
        #[test]
        fn string_pattern_lengths(s in ".{2,6}") {
            let n = s.chars().count();
            prop_assert!((2..=6).contains(&n), "len {} outside 2..=6", n);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 3, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::for_case("recursive", 0);
        for case in 0..200 {
            let mut rng2 = crate::test_runner::TestRng::for_case("recursive", case);
            let t = crate::strategy::Strategy::generate(&strat, &mut rng2);
            assert!(depth(&t) <= 7, "depth runaway: {t:?}");
        }
        // Determinism: same seed, same value.
        let a = crate::strategy::Strategy::generate(&strat, &mut rng.clone());
        let b = crate::strategy::Strategy::generate(&strat, &mut rng);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
