//! Offline shim for CPU-affinity pinning: best-effort `sched_setaffinity`
//! for the calling thread on Linux, a no-op everywhere else.
//!
//! The workspace is `#![forbid(unsafe_code)]` outside the shims; this crate
//! owns the one FFI call core-pinned deputy shards need. libc is already
//! linked by std, so no new dependency is introduced.
//!
//! Pinning is strictly best-effort: a failed or unsupported call returns
//! `false` and the caller keeps running unpinned. Nothing in the workspace
//! may depend on pinning for correctness — only for locality.

/// Number of logical CPUs visible to this process (1 when unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the calling thread to `core` (modulo the visible core count).
/// Returns `true` when the kernel accepted the mask, `false` on any
/// failure or on platforms without `sched_setaffinity`.
pub fn pin_to_core(core: usize) -> bool {
    imp::pin_to_core(core % available_cores().max(1))
}

#[cfg(target_os = "linux")]
mod imp {
    // cpu_set_t is 1024 bits; represent it as 16 u64 words.
    const CPU_SET_WORDS: usize = 16;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn pin_to_core(core: usize) -> bool {
        if core >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; CPU_SET_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // pid 0 = the calling thread.
        let rc = unsafe { sched_setaffinity(0, CPU_SET_WORDS * 8, mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn pin_to_core(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pin_is_best_effort_and_does_not_panic() {
        // Whatever the platform answers, the call must not crash the
        // thread; on Linux pinning to core 0 should generally succeed.
        let _ = pin_to_core(0);
        let _ = pin_to_core(usize::MAX - 1);
    }
}
