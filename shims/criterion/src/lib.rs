//! Offline shim for `criterion`: a functional micro-benchmark harness with
//! the builder API the workspace's bench targets use. It measures mean
//! wall-clock time per iteration and prints one plain-text line per
//! benchmark — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.name = String::new();
        group.run(name.into(), &mut f);
    }
}

/// Identifies one benchmark within a group: `label/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `label/parameter`.
    pub fn new(label: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{label}/{parameter}"),
        }
    }

    /// Builds a bare parameterised id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for deriving rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.full.clone(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.full.clone(), &mut f);
    }

    /// Ends the group (reporting happens as each benchmark runs).
    pub fn finish(self) {}

    fn run(&mut self, bench_name: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            bench_name
        } else {
            format!("{}/{}", self.name, bench_name)
        };

        // Warm-up: run the body repeatedly until the warm-up budget is spent,
        // and learn roughly how long one iteration takes.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter = (bencher.elapsed / bencher.iters as u32).max(Duration::from_nanos(1));
        }

        // Measurement: split the budget into `sample_size` samples, each
        // running enough iterations to be timeable.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total += bencher.elapsed;
            total_iters += bencher.iters;
        }

        let mean = if total_iters > 0 {
            total.as_nanos() as f64 / total_iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / mean)
            }
            _ => String::new(),
        };
        println!("{full:<60} {:>12} ns/iter{rate}", format_nanos(mean));
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into one runner, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bench binary
            // invoked with `--test` must not run the full measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            runs += 1;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs > 0, "benchmark body never executed");
    }
}
