//! Offline shim for `bytes`: cheaply-cloneable immutable byte buffers
//! (`Bytes`), a growable builder (`BytesMut`), and the big-endian
//! reader/writer traits (`Buf`/`BufMut`) the OpenFlow codec uses.
//!
//! `Bytes` is an `Arc<[u8]>` plus a window, so `clone`/`split_to` are O(1)
//! and never copy, matching the real crate's behaviour for the operations
//! this workspace performs. Out-of-range reads panic, as upstream does.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied once into shared storage; the real crate
    /// borrows it, but the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies an arbitrary slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a sub-window of this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.data.clone()).fmt(f)
    }
}

/// Big-endian reader over a byte source. Reads past the end panic, matching
/// the upstream crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The readable contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian writer into a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_slice(b"xy");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 17);
        assert_eq!(frozen.get_u8(), 0x01);
        assert_eq!(frozen.get_u16(), 0x0203);
        assert_eq!(frozen.get_u32(), 0x0405_0607);
        assert_eq!(frozen.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        let mut tail = [0u8; 2];
        frozen.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(frozen.is_empty());
    }

    #[test]
    fn split_and_advance_share_storage() {
        let mut b = Bytes::from_static(b"hello world");
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        b.advance(1);
        assert_eq!(b.as_ref(), b"world");
        assert_eq!(b.slice(1..3).as_ref(), b"or");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_read_panics() {
        let mut b = Bytes::from_static(b"\x01");
        let _ = b.get_u16();
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from(b"ab".to_vec());
        assert_eq!(a, Bytes::from_static(b"ab"));
        assert_eq!(a, *b"ab".as_slice());
        assert_eq!(format!("{a:?}"), "b\"ab\"");
    }
}
