//! Lock-free bounded queues, mirroring the `crossbeam-queue` crate surface.
//!
//! [`ArrayQueue`] is the classic Vyukov bounded MPMC queue: a fixed slab of
//! slots, each carrying a *stamp* that encodes which lap of the ring the
//! slot is on and whether it currently holds a value. Producers claim a
//! slot by CAS-advancing the tail, write the value, then publish by bumping
//! the stamp; consumers mirror the dance on the head. Neither side ever
//! takes a lock, and a full (or empty) queue is detected in O(1) from the
//! stamp alone.
//!
//! The controller's audit ring builds on this: `push` returning `Err` is
//! its backpressure signal, and `pop` is its drain path.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Lap/occupancy stamp. For the slot at index `i`:
    /// `stamp == tail` means empty and writable on this lap;
    /// `stamp == pos + 1` means occupied and readable;
    /// `stamp == pos + capacity` means empty again on the next lap.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
pub struct ArrayQueue<T> {
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[Slot<T>]>,
    cap: usize,
}

unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ArrayQueue capacity must be non-zero");
        ArrayQueue {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            cap,
        }
    }

    /// Attempts to push `value`, returning it back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let dif = (stamp as isize).wrapping_sub(tail as isize);
            if dif == 0 {
                // Slot is empty on our lap: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if dif < 0 {
                // Slot still holds a value from the previous lap. Confirm
                // the queue really is full (rather than racing a pop that
                // has advanced the head but not yet bumped the stamp).
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(self.cap) == tail {
                    return Err(value);
                }
                std::hint::spin_loop();
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                // Another producer claimed this slot; reload the tail.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to pop the oldest value.
    ///
    /// Returns `None` when the queue is empty — including the transient
    /// case where a producer has claimed a slot but not yet published its
    /// value. Callers polling for completeness should re-check after the
    /// producers they synchronize with have returned from `push`.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let dif = (stamp as isize).wrapping_sub(head.wrapping_add(1) as isize);
            if dif == 0 {
                // Slot holds a published value on our lap: claim it.
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp
                            .store(head.wrapping_add(self.cap), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if dif < 0 {
                // Empty on our lap (a producer may have claimed but not
                // published; that value is not yet observable).
                return None;
            } else {
                // Another consumer claimed this slot; reload the head.
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Approximate number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        tail.wrapping_sub(head).min(self.cap)
    }

    /// Whether the queue is empty (approximate under contention).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is full (approximate under contention).
    pub fn is_full(&self) -> bool {
        self.len() == self.cap
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = ArrayQueue::new(4);
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraps_across_many_laps() {
        let q = ArrayQueue::new(3);
        for lap in 0..100 {
            q.push(lap * 2).unwrap();
            q.push(lap * 2 + 1).unwrap();
            assert_eq!(q.pop(), Some(lap * 2));
            assert_eq!(q.pop(), Some(lap * 2 + 1));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_transfers_every_element_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 10_000;
        let q = Arc::new(ArrayQueue::new(64));
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if count.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn drop_releases_unpopped_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = ArrayQueue::new(8);
            for _ in 0..5 {
                q.push(Tracked).unwrap();
            }
            drop(q.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
