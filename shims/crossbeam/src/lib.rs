//! Offline shim for `crossbeam`: multi-producer **multi-consumer** channels
//! with crossbeam's disconnect semantics, built on `Mutex<VecDeque>` +
//! `Condvar`. `std::sync::mpsc` cannot back this — the controller clones one
//! `Receiver` across a pool of deputy threads, which requires MPMC.

pub mod epoch;
pub mod queue;

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item is pushed or the last sender drops.
        readable: Condvar,
        /// Signalled when an item is popped or the last receiver drops
        /// (unblocks bounded senders).
        writable: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` messages; sends block while
    /// full. `bounded(0)` is approximated with capacity 1 (the workspace only
    /// uses rendezvous channels for single-shot replies, where the two
    /// behave identically).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnection.
                let _guard = self.shared.inner.lock();
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked bounded senders.
                let _guard = self.shared.inner.lock();
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                let full = inner.capacity.is_some_and(|cap| inner.queue.len() >= cap);
                if !full {
                    inner.queue.push_back(msg);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .writable
                    .wait(inner)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Is the channel currently empty?
        pub fn is_empty(&self) -> bool {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queue
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queue
                .len()
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .readable
                    .wait(inner)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .readable
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                inner = guard;
            }
        }

        /// Is the channel currently empty?
        pub fn is_empty(&self) -> bool {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queue
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queue
                .len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn mpmc_fanout() {
        let (tx, rx) = unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
