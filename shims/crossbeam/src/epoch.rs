//! Epoch-based RCU cell for the offline `crossbeam` shim.
//!
//! `RcuCell<T>` publishes immutable `Arc<T>` snapshots through a single
//! atomic pointer. Readers pin the current epoch (one TLS access plus one
//! atomic store), load the pointer, and never block; writers swap the
//! pointer and retire the old snapshot onto a per-cell reclamation list
//! that is drained once every pinned reader has moved past the
//! retirement epoch.
//!
//! # Protocol
//!
//! Every operation on the global epoch, the participant slots, and the
//! cell pointer is `SeqCst`, which makes the safety argument a statement
//! about the single total order of those operations:
//!
//! * A writer **swaps** the pointer first, then bumps the global epoch to
//!   obtain the retirement tag `t`, then scans participant slots.
//! * A reader **loads** the global epoch `e`, stores it into its slot,
//!   then loads the pointer.
//!
//! If the writer's scan observes a slot as idle (or with epoch >= `t`),
//! then in the total order that reader's pointer load follows the swap,
//! so it can only observe the *new* pointer — never the retired one. A
//! reader that could still hold the old pointer necessarily published an
//! epoch `< t` before the scan, and blocks reclamation of that entry.
//!
//! A snapshot retired at tag `t` is therefore freed exactly when the
//! minimum epoch over all pinned participants exceeds `t` (idle slots
//! report `u64::MAX`). Reclamation is driven by subsequent `store` calls
//! and by `Drop`; a cell that is never written again keeps at most its
//! last retired snapshot alive until the cell itself drops.
//!
//! Participants are leaked `'static` nodes handed out through a free
//! list, so the registry is bounded by the peak number of concurrently
//! live threads, not by the total number of threads ever spawned.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Slot value meaning "not currently pinned".
const IDLE: u64 = u64::MAX;

/// Global epoch counter. Starts at 1 so an epoch of 0 is never observed
/// and retirement tags are always strictly positive.
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Every participant ever created (leaked nodes; bounded by the peak
/// thread count thanks to the free list below).
static PARTICIPANTS: Mutex<Vec<&'static Participant>> = Mutex::new(Vec::new());

/// Participants whose owning thread has exited, available for reuse.
static FREE: Mutex<Vec<&'static Participant>> = Mutex::new(Vec::new());

struct Participant {
    /// The epoch this thread pinned at, or [`IDLE`].
    epoch: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-thread handle caching this thread's participant slot.
struct Handle {
    slot: &'static Participant,
    nest: Cell<usize>,
}

impl Handle {
    fn new() -> Handle {
        let slot = lock(&FREE).pop().unwrap_or_else(|| {
            let slot: &'static Participant = Box::leak(Box::new(Participant {
                epoch: AtomicU64::new(IDLE),
            }));
            lock(&PARTICIPANTS).push(slot);
            slot
        });
        slot.epoch.store(IDLE, SeqCst);
        Handle {
            slot,
            nest: Cell::new(0),
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.slot.epoch.store(IDLE, SeqCst);
        lock(&FREE).push(self.slot);
    }
}

thread_local! {
    static HANDLE: Handle = Handle::new();
}

/// Proof that the current thread is pinned; see [`pin`].
///
/// Deliberately `!Send`: the guard manipulates this thread's participant
/// slot on drop.
pub struct Guard {
    _not_send: PhantomData<*const ()>,
}

/// Pin the current thread, keeping every snapshot loaded through the
/// returned [`Guard`] alive until the guard drops. Reentrant: nested
/// pins share the outermost epoch.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        if h.nest.get() == 0 {
            h.slot.epoch.store(GLOBAL_EPOCH.load(SeqCst), SeqCst);
        }
        h.nest.set(h.nest.get() + 1);
    });
    Guard {
        _not_send: PhantomData,
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // `try_with`: during thread teardown the handle may already be
        // gone, in which case its own Drop has retired the slot.
        let _ = HANDLE.try_with(|h| {
            let n = h.nest.get() - 1;
            h.nest.set(n);
            if n == 0 {
                h.slot.epoch.store(IDLE, SeqCst);
            }
        });
    }
}

/// Smallest epoch any pinned participant holds (`IDLE` if none).
fn min_active_epoch() -> u64 {
    lock(&PARTICIPANTS)
        .iter()
        .map(|p| p.epoch.load(SeqCst))
        .min()
        .unwrap_or(IDLE)
}

/// An epoch-protected cell publishing immutable `Arc<T>` snapshots.
///
/// Readers: [`RcuCell::load`] under a [`Guard`] (zero refcount traffic),
/// or [`RcuCell::load_full`] for an owned `Arc`. Writers:
/// [`RcuCell::store`] publishes a new snapshot and retires the old one.
/// Concurrent stores are safe but callers normally serialize writers
/// externally (the cell makes no ordering promise between racing
/// stores).
pub struct RcuCell<T> {
    ptr: AtomicPtr<T>,
    /// Retired snapshots as `(retirement_tag, pointer)` pairs.
    retired: Mutex<Vec<(u64, *const T)>>,
}

unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    pub fn new(value: Arc<T>) -> RcuCell<T> {
        RcuCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Load the current snapshot. The reference lives as long as the
    /// guard: the snapshot cannot be reclaimed while any participant is
    /// pinned at or before the epoch of the store that retires it.
    pub fn load<'g>(&self, _guard: &'g Guard) -> &'g T {
        unsafe { &*self.ptr.load(SeqCst) }
    }

    /// Load the current snapshot as an owned `Arc` (pins internally).
    pub fn load_full(&self) -> Arc<T> {
        let guard = pin();
        let p = self.ptr.load(SeqCst);
        let arc = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        drop(guard);
        arc
    }

    /// Publish a new snapshot, retiring the old one. Reclaims every
    /// retired snapshot no pinned reader can still observe.
    pub fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value) as *mut T;
        let old = self.ptr.swap(new, SeqCst);
        let tag = GLOBAL_EPOCH.fetch_add(1, SeqCst) + 1;
        let mut retired = lock(&self.retired);
        retired.push((tag, old as *const T));
        let min_active = min_active_epoch();
        retired.retain(|&(t, p)| {
            if t < min_active {
                unsafe { drop(Arc::from_raw(p)) };
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        for &(_, p) in lock(&self.retired).iter() {
            unsafe { drop(Arc::from_raw(p)) };
        }
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) };
    }
}

impl<T: fmt::Debug> fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RcuCell")
            .field("value", &self.load_full())
            .finish()
    }
}

impl<T: Default> Default for RcuCell<T> {
    fn default() -> Self {
        RcuCell::new(Arc::new(T::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    struct Counted {
        a: u64,
        b: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    fn counted(v: u64, drops: &Arc<AtomicUsize>) -> Arc<Counted> {
        Arc::new(Counted {
            a: v,
            b: v,
            drops: drops.clone(),
        })
    }

    #[test]
    fn store_then_load_sees_new_value() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(counted(1, &drops));
        cell.store(counted(2, &drops));
        let g = pin();
        assert_eq!(cell.load(&g).a, 2);
        drop(g);
        assert_eq!(cell.load_full().a, 2);
    }

    #[test]
    fn unpinned_retirees_are_reclaimed() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(counted(0, &drops));
        for i in 1..=10 {
            cell.store(counted(i, &drops));
        }
        // With no pinned readers every retired snapshot is freed on the
        // store that follows; only value 9's retirement may be pending,
        // and the final store's cleanup freed it too.
        assert_eq!(drops.load(SeqCst), 10 - 1 + 1);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 11);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(counted(1, &drops));
        let g = pin();
        let old = cell.load(&g);
        cell.store(counted(2, &drops));
        // Our pin predates the retirement tag, so value 1 must survive.
        assert_eq!(drops.load(SeqCst), 0);
        assert_eq!((old.a, old.b), (1, 1));
        drop(g);
        // Next store's cleanup runs with no pinned readers.
        cell.store(counted(3, &drops));
        assert!(drops.load(SeqCst) >= 2);
    }

    #[test]
    fn nested_pins_share_the_outer_epoch() {
        let cell = RcuCell::new(Arc::new(7u64));
        let outer = pin();
        let inner = pin();
        assert_eq!(*cell.load(&inner), 7);
        drop(inner);
        // Still pinned: loads through the outer guard remain valid.
        assert_eq!(*cell.load(&outer), 7);
        drop(outer);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(RcuCell::new(counted(0, &drops)));
        let stop = Arc::new(AtomicU64::new(0));
        let started = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                let started = started.clone();
                thread::spawn(move || {
                    let mut reads = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let g = pin();
                        let v = cell.load(&g);
                        // The invariant a == b holds in every published
                        // snapshot; a torn or reclaimed read breaks it.
                        assert_eq!(v.a, v.b);
                        reads += 1;
                        if reads == 1 {
                            started.fetch_add(1, SeqCst);
                        }
                    }
                    reads
                })
            })
            .collect();

        // Keep publishing until every reader has raced at least one load
        // against a store (so the writer can't finish before the readers
        // are scheduled).
        let mut i = 0u64;
        while i < 10_000 || started.load(SeqCst) < 4 {
            i += 1;
            cell.store(counted(i, &drops));
        }
        stop.store(1, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }

    #[test]
    fn participants_are_recycled_across_threads() {
        for _ in 0..64 {
            thread::spawn(|| {
                let g = pin();
                drop(g);
            })
            .join()
            .unwrap();
        }
        // The free list bounds the registry: 64 sequential threads must
        // not have leaked 64 fresh participants beyond the peak count.
        assert!(lock(&PARTICIPANTS).len() < 64);
    }
}
