//! Offline shim for `parking_lot`: non-poisoning `Mutex`/`RwLock` built on
//! `std::sync`. Lock poisoning is deliberately swallowed — parking_lot locks
//! never poison, and the workspace's supervision code relies on being able to
//! take a lock that a panicking app thread held.

use std::sync::{self, TryLockError};

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        std::panic::set_hook(prev);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
