//! Client-side harness for the southbound wire path: emulated switches that
//! speak the OpenFlow wire codec over real TCP sockets, plus the CBench-style
//! latency/throughput measurement modes built on them.
//!
//! Shared by the `cbench` binary (the external load generator), the wire
//! end-to-end test, and the tier-2 perf regression guard, so all three drive
//! the server through the identical protocol path.

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use sdnshield_apps::l2_learning::{L2LearningSwitch, L2_MANIFEST};
use sdnshield_controller::isolation::{ControllerConfig, ShieldedController};
use sdnshield_controller::southbound::{spawn_southbound, SouthboundConfig, SouthboundHandle};
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_netsim::trafficgen::{PacketKind, TrafficGen};
use sdnshield_openflow::messages::{OfBody, OfMessage, PacketIn};
use sdnshield_openflow::southbound::StreamDecoder;
use sdnshield_openflow::types::{DatapathId, PortNo, Xid};
use sdnshield_openflow::wire::{self, msg_type};

/// Starts the standard wire-bench server: a linear network of `switches`
/// switches, the L2-learning app under full mediation, CBench absorb mode
/// (fake switches count responses; no data-plane walk), and the southbound
/// reactor listening on `addr` (port 0 picks an ephemeral port).
///
/// Returns the controller (kept alive for stats/teardown) and the server
/// handle.
///
/// # Errors
///
/// Propagates listener bind failures.
pub fn serve_l2(
    addr: &str,
    switches: usize,
    deputies: usize,
    config: SouthboundConfig,
) -> io::Result<(Arc<ShieldedController>, SouthboundHandle)> {
    let network = Network::new(builders::linear(switches), 65_536);
    let controller = Arc::new(ShieldedController::new_with_config(
        network,
        ControllerConfig {
            num_deputies: deputies,
            ..ControllerConfig::default()
        },
    ));
    controller.kernel().set_absorb_packet_outs(true);
    controller
        .register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).expect("valid L2 manifest"),
        )
        .expect("register L2 app");
    let handle = spawn_southbound(Arc::clone(&controller), addr, config)?;
    Ok((controller, handle))
}

/// A controller→switch message surfaced by [`SwitchConn`]. ECHO_REQUESTs are
/// answered transparently inside the harness and never surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A FLOW_MOD (a mediated response).
    FlowMod(Xid),
    /// A PACKET_OUT (a mediated response).
    PacketOut(Xid),
    /// Anything else, by type code.
    Other(u8, Xid),
}

impl WireEvent {
    /// Is this one of the response kinds CBench counts?
    pub fn is_response(&self) -> bool {
        matches!(self, WireEvent::FlowMod(_) | WireEvent::PacketOut(_))
    }
}

/// One emulated switch: a TCP connection that has completed the
/// HELLO/FEATURES handshake and now exchanges PACKET_IN for
/// FLOW_MOD/PACKET_OUT.
pub struct SwitchConn {
    stream: TcpStream,
    decoder: StreamDecoder,
    /// The datapath id this connection claimed.
    pub dpid: DatapathId,
    out: Vec<u8>,
    scratch: Vec<u8>,
    next_xid: u32,
}

impl SwitchConn {
    /// Connects and runs the switch side of the handshake: send HELLO, wait
    /// for the server's FEATURES_REQUEST, answer with a FEATURES_REPLY
    /// claiming `dpid`.
    ///
    /// # Errors
    ///
    /// Connection failures, `timeout` expiring mid-handshake, or protocol
    /// errors.
    pub fn connect(addr: SocketAddr, dpid: DatapathId, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        let mut conn = SwitchConn {
            stream,
            decoder: StreamDecoder::new(),
            dpid,
            out: Vec::with_capacity(4096),
            scratch: Vec::with_capacity(256),
            next_xid: 1,
        };
        conn.send_body(&OfBody::Hello)?;
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "handshake timed out",
                ));
            }
            if let WireEvent::Other(msg_type::FEATURES_REQUEST, xid) = conn.recv_event()? {
                let reply = OfMessage::new(
                    xid,
                    OfBody::FeaturesReply {
                        datapath_id: dpid,
                        ports: vec![PortNo(1), PortNo(2), PortNo(3)],
                        table_capacity: 65_536,
                    },
                );
                conn.scratch.clear();
                wire::encode_into(&reply, &mut conn.scratch);
                let frame = std::mem::take(&mut conn.scratch);
                conn.write_all_nb(&frame)?;
                conn.scratch = frame;
                return Ok(conn);
            }
        }
    }

    fn take_xid(&mut self) -> Xid {
        let x = Xid(self.next_xid);
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    fn send_body(&mut self, body: &OfBody) -> io::Result<()> {
        let msg = OfMessage::new(self.take_xid(), body.clone());
        self.scratch.clear();
        wire::encode_into(&msg, &mut self.scratch);
        let frame = std::mem::take(&mut self.scratch);
        let r = self.write_all_nb(&frame);
        self.scratch = frame;
        r
    }

    /// Writes a full buffer, tolerating `WouldBlock` on a nonblocking
    /// socket by yielding briefly (egress frames are small relative to the
    /// socket send buffer, so this rarely spins).
    fn write_all_nb(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut off = 0;
        while off < buf.len() {
            match self.stream.write(&buf[off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Appends a PACKET_IN frame to the local output buffer without
    /// touching the socket (throughput mode batches many per write).
    pub fn queue_packet_in(&mut self, pi: &PacketIn) {
        let msg = OfMessage::new(self.take_xid(), OfBody::PacketIn(pi.clone()));
        wire::encode_into(&msg, &mut self.out);
    }

    /// Writes and clears the batched output buffer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn flush_out(&mut self) -> io::Result<()> {
        if self.out.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.out);
        let r = self.write_all_nb(&buf);
        self.out = buf;
        self.out.clear();
        r
    }

    /// Sends one PACKET_IN immediately (latency mode).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_packet_in(&mut self, pi: &PacketIn) -> io::Result<()> {
        self.queue_packet_in(pi);
        self.flush_out()
    }

    /// Switches the connection between blocking (with `read_timeout`) and
    /// nonblocking reads.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_nonblocking(&mut self, nb: bool) -> io::Result<()> {
        self.stream.set_nonblocking(nb)
    }

    /// Adjusts the blocking-read timeout.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&mut self, t: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(t))
    }

    /// Blocking receive of the next surfaced event. ECHO_REQUESTs are
    /// answered in place (xid + payload verbatim) and the loop continues.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` when the read timeout expires, `UnexpectedEof`
    /// on close, `InvalidData` on stream corruption.
    pub fn recv_event(&mut self) -> io::Result<WireEvent> {
        loop {
            if let Some(ev) = self.pop_event()? {
                return Ok(ev);
            }
            match self.decoder.read_from(&mut self.stream) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Nonblocking receive: `Ok(None)` when no complete frame is buffered
    /// and the socket has nothing to read.
    ///
    /// # Errors
    ///
    /// As [`SwitchConn::recv_event`], except `WouldBlock` maps to `Ok(None)`.
    pub fn try_recv_event(&mut self) -> io::Result<Option<WireEvent>> {
        loop {
            if let Some(ev) = self.pop_event()? {
                return Ok(Some(ev));
            }
            match self.decoder.read_from(&mut self.stream) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Decodes one buffered frame into an event, answering echo probes
    /// inline. `Ok(None)` when no complete frame is buffered.
    fn pop_event(&mut self) -> io::Result<Option<WireEvent>> {
        let (ty, xid, echo_payload) = {
            let frame = match self.decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => return Ok(None),
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            };
            let payload = (frame.ty == msg_type::ECHO_REQUEST)
                .then(|| Bytes::copy_from_slice(frame.echo_payload()));
            (frame.ty, frame.xid, payload)
        };
        if let Some(payload) = echo_payload {
            // Keep the liveness contract: mirror xid and payload verbatim.
            let msg = OfMessage::new(xid, OfBody::EchoReply(payload));
            self.scratch.clear();
            wire::encode_into(&msg, &mut self.scratch);
            let frame = std::mem::take(&mut self.scratch);
            self.write_all_nb(&frame)?;
            self.scratch = frame;
            return self.pop_event();
        }
        Ok(Some(match ty {
            msg_type::FLOW_MOD => WireEvent::FlowMod(xid),
            msg_type::PACKET_OUT => WireEvent::PacketOut(xid),
            t => WireEvent::Other(t, xid),
        }))
    }
}

/// Per-connection tallies returned by the mode workers.
#[derive(Debug, Default, Clone)]
pub struct ConnTally {
    /// PACKET_INs sent.
    pub sent: u64,
    /// FLOW_MOD/PACKET_OUT responses received.
    pub responses: u64,
    /// Response latencies in microseconds (first response per packet-in in
    /// latency mode; best-effort FIFO pairing in throughput mode).
    pub latencies_us: Vec<f64>,
}

/// Aggregated result of one measurement mode.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// `"latency"` or `"throughput"`.
    pub mode: &'static str,
    /// Connections that completed the handshake and ran.
    pub connections: usize,
    /// Total PACKET_INs sent.
    pub sent: u64,
    /// Total mediated responses received.
    pub responses: u64,
    /// Measurement wall-clock duration in seconds.
    pub duration_secs: f64,
    /// Responses per second across all connections.
    pub resp_per_sec: f64,
    /// Median response latency (µs).
    pub p50_us: f64,
    /// 99th-percentile response latency (µs).
    pub p99_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn aggregate(mode: &'static str, tallies: Vec<ConnTally>, duration: Duration) -> ModeResult {
    let connections = tallies.len();
    let sent = tallies.iter().map(|t| t.sent).sum();
    let responses: u64 = tallies.iter().map(|t| t.responses).sum();
    let mut lat: Vec<f64> = tallies.into_iter().flat_map(|t| t.latencies_us).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let duration_secs = duration.as_secs_f64();
    ModeResult {
        mode,
        connections,
        sent,
        responses,
        duration_secs,
        resp_per_sec: responses as f64 / duration_secs,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// CBench latency mode: every connection keeps exactly one PACKET_IN
/// outstanding — send, wait for the first mediated response, record the
/// round trip, drain stragglers, repeat.
///
/// # Errors
///
/// Connection or handshake failures (measurement-phase socket errors end
/// that connection's run early but keep its tallies).
pub fn run_latency_mode(
    addr: SocketAddr,
    switches: usize,
    duration: Duration,
    seed: u64,
) -> io::Result<ModeResult> {
    let tallies = run_workers(
        addr,
        switches,
        move |conn, deadline, mut gen| {
            let mut tally = ConnTally::default();
            let _ = conn.set_read_timeout(Duration::from_millis(100));
            while Instant::now() < deadline {
                let (_, pi) = gen.next_packet_in();
                let t0 = Instant::now();
                if conn.send_packet_in(&pi).is_err() {
                    break;
                }
                tally.sent += 1;
                // First response carries the RTT.
                loop {
                    match conn.recv_event() {
                        Ok(ev) if ev.is_response() => {
                            tally.responses += 1;
                            tally.latencies_us.push(us(t0.elapsed()));
                            break;
                        }
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            break;
                        }
                        Err(_) => return tally,
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                // Settle: some packet-ins produce a second response (flow-mod +
                // packet-out); drain it so it cannot pollute the next RTT.
                let _ = conn.set_read_timeout(Duration::from_millis(2));
                loop {
                    match conn.recv_event() {
                        Ok(ev) if ev.is_response() => tally.responses += 1,
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
                let _ = conn.set_read_timeout(Duration::from_millis(100));
            }
            tally
        },
        duration,
        seed,
    )?;
    Ok(aggregate("latency", tallies, duration))
}

/// CBench throughput mode: every connection keeps a pipelined window of
/// PACKET_INs outstanding and counts mediated responses; latencies pair
/// responses to sends FIFO (best-effort — responses without a pending send
/// are counted but not timed).
///
/// # Errors
///
/// Connection or handshake failures.
pub fn run_throughput_mode(
    addr: SocketAddr,
    switches: usize,
    window: usize,
    duration: Duration,
    seed: u64,
) -> io::Result<ModeResult> {
    let tallies = run_workers(
        addr,
        switches,
        move |conn, deadline, mut gen| {
            let mut tally = ConnTally::default();
            if conn.set_nonblocking(true).is_err() {
                return tally;
            }
            let mut fifo: VecDeque<Instant> = VecDeque::with_capacity(window);
            while Instant::now() < deadline {
                while fifo.len() < window {
                    let (_, pi) = gen.next_packet_in();
                    conn.queue_packet_in(&pi);
                    fifo.push_back(Instant::now());
                    tally.sent += 1;
                }
                if conn.flush_out().is_err() {
                    return tally;
                }
                let mut drained = false;
                loop {
                    match conn.try_recv_event() {
                        Ok(Some(ev)) => {
                            if ev.is_response() {
                                tally.responses += 1;
                                if let Some(t0) = fifo.pop_front() {
                                    tally.latencies_us.push(us(t0.elapsed()));
                                }
                            }
                            drained = true;
                        }
                        Ok(None) => break,
                        Err(_) => return tally,
                    }
                }
                if !drained {
                    thread::sleep(Duration::from_micros(50));
                }
            }
            // Grace drain: collect in-flight responses so the count reflects
            // work the controller actually completed.
            if conn.set_nonblocking(false).is_ok() {
                let _ = conn.set_read_timeout(Duration::from_millis(50));
                let grace = Instant::now() + Duration::from_millis(250);
                while Instant::now() < grace {
                    match conn.recv_event() {
                        Ok(ev) if ev.is_response() => tally.responses += 1,
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
            }
            tally
        },
        duration,
        seed,
    )?;
    Ok(aggregate("throughput", tallies, duration))
}

/// Spawns one worker thread per emulated switch (dpids `1..=switches`),
/// each with its own connection and deterministic traffic stream.
fn run_workers<F>(
    addr: SocketAddr,
    switches: usize,
    work: F,
    duration: Duration,
    seed: u64,
) -> io::Result<Vec<ConnTally>>
where
    F: Fn(&mut SwitchConn, Instant, TrafficGen) -> ConnTally + Send + Sync,
{
    let work = &work;
    let mut tallies = Vec::with_capacity(switches);
    let results: Vec<io::Result<ConnTally>> = thread::scope(|s| {
        let handles: Vec<_> = (1..=switches as u64)
            .map(|d| {
                s.spawn(move || {
                    let mut conn =
                        SwitchConn::connect(addr, DatapathId(d), Duration::from_secs(5))?;
                    let gen = TrafficGen::new(1, 16, PacketKind::Arp, seed ^ (d << 8));
                    let deadline = Instant::now() + duration;
                    Ok(work(&mut conn, deadline, gen))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for r in results {
        tallies.push(r?);
    }
    Ok(tallies)
}
