//! `trace_gen` — generates a decision trace for `shieldcheck certify`.
//!
//! ```text
//! trace_gen --out FILE [--commands N] [--seed S] [--corrupt]
//! ```
//!
//! Builds a journaled kernel with enforcement, the read fast lane, the
//! decision cache, and batching all live; registers a small app market with
//! deliberately different authority levels; and drives a seeded random
//! workload through every decision seam — deputy calls, fast-lane reads,
//! vectored packet-outs, and atomic batches — with the decision trace
//! recorder armed. The resulting trace is the conformance-certification
//! input: `shieldcheck certify` must find every recorded Allow derivable
//! from the registered manifests (zero SH016), on a correct kernel.
//!
//! `--corrupt` appends a fabricated Allow for a call no manifest grants
//! (wrong switch, absurd priority) — the injected defect CI uses to prove
//! the certifier actually fails when the kernel misbehaves.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdnshield_controller::journal::Journal;
use sdnshield_controller::kernel::Kernel;
use sdnshield_controller::FlowOp;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::trace::{write_event, write_trace, TraceEvent};
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, PacketOut, StatsRequest};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo, Priority};

const USAGE: &str = "usage: trace_gen --out FILE [--commands N] [--seed S] [--corrupt]";

/// The privileged app: broad write + read + emit authority.
const ADMIN: AppId = AppId(1);
/// The constrained app: writes boxed to two switches and low priorities.
const TENANT: AppId = AppId(2);
/// The observer app: read-only.
const VIEWER: AppId = AppId(3);

fn flow_mod(rng: &mut StdRng) -> FlowMod {
    let net = rng.gen_range(0u32..4) << 8;
    FlowMod::add(
        FlowMatch {
            ip_dst: Some(MaskedIpv4::prefix(
                Ipv4(0x0a00_0000 | net | rng.gen_range(0u32..4)),
                rng.gen_range(24u8..=32),
            )),
            ..FlowMatch::default()
        },
        Priority(rng.gen_range(0u16..200)),
        if rng.gen_bool(0.5) {
            ActionList::output(PortNo(1))
        } else {
            ActionList::drop()
        },
    )
    .with_hard_timeout(rng.gen_range(0u16..30))
}

fn packet_out(rng: &mut StdRng) -> PacketOut {
    PacketOut {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        actions: ActionList::output(PortNo(2)),
        payload: bytes::Bytes::from(vec![rng.gen_range(0u8..16); 8]),
    }
}

/// A random app: mostly the constrained tenant (its denials are the
/// interesting decisions), sometimes the admin or the read-only viewer.
fn pick_app(rng: &mut StdRng) -> AppId {
    match rng.gen_range(0u8..4) {
        0 => ADMIN,
        1 | 2 => TENANT,
        _ => VIEWER,
    }
}

fn pick_dpid(rng: &mut StdRng) -> DatapathId {
    DatapathId(rng.gen_range(1u64..=3))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut commands: u64 = 10_000;
    let mut seed: u64 = 0x5d45;
    let mut corrupt = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().cloned(),
            "--commands" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => commands = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(3);
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(3);
                }
            },
            "--corrupt" => corrupt = true,
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(3);
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(3);
    };

    let kernel = Kernel::new(Network::new(builders::linear(3), 1024), true);
    kernel.attach_journal(std::sync::Arc::new(Journal::in_memory()));
    kernel.enable_decision_trace();

    let admin = parse_manifest(
        "PERM insert_flow\nPERM delete_flow LIMITING OWN_FLOWS\nPERM read_flow_table\n\
         PERM send_pkt_out\nPERM visible_topology\nPERM read_statistics\nPERM pkt_in_event",
    )
    .expect("admin manifest");
    let tenant = parse_manifest(
        "PERM insert_flow LIMITING SWITCH 1,2 AND MAX_PRIORITY 100\n\
         PERM read_flow_table LIMITING IP_DST 10.0.0.0 MASK 255.255.0.0\n\
         PERM read_statistics LIMITING PORT_LEVEL\nPERM visible_topology",
    )
    .expect("tenant manifest");
    let viewer = parse_manifest("PERM visible_topology\nPERM read_statistics").expect("viewer");
    kernel
        .register_app(ADMIN, "admin", &admin)
        .expect("register admin");
    kernel
        .register_app(TENANT, "tenant", &tenant)
        .expect("register tenant");
    kernel
        .register_app(VIEWER, "viewer", &viewer)
        .expect("register viewer");

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..commands {
        let app = pick_app(&mut rng);
        match rng.gen_range(0u8..10) {
            // Deputy writes (allowed and denied, depending on the app).
            0..=2 => {
                let call = ApiCall::new(
                    app,
                    ApiCallKind::InsertFlow {
                        dpid: pick_dpid(&mut rng),
                        flow_mod: flow_mod(&mut rng),
                    },
                );
                let _ = kernel.execute(&call);
            }
            3 => {
                let call = ApiCall::new(
                    app,
                    ApiCallKind::DeleteFlow {
                        dpid: pick_dpid(&mut rng),
                        flow_mod: flow_mod(&mut rng),
                    },
                );
                let _ = kernel.execute(&call);
            }
            // Reads, preferring the fast lane and falling back to the
            // deputy when the fast path declines to serve.
            4..=5 => {
                let call = ApiCall::new(
                    app,
                    match rng.gen_range(0u8..4) {
                        0 => ApiCallKind::ReadFlowTable {
                            dpid: pick_dpid(&mut rng),
                            query: FlowMatch::any(),
                        },
                        1 => ApiCallKind::ReadStatistics {
                            dpid: pick_dpid(&mut rng),
                            request: StatsRequest::Port(PortNo(1)),
                        },
                        2 => ApiCallKind::ReadStatistics {
                            dpid: pick_dpid(&mut rng),
                            request: StatsRequest::Table,
                        },
                        _ => ApiCallKind::ReadTopology,
                    },
                );
                if kernel.try_serve_read(&call).is_none() {
                    let _ = kernel.execute(&call);
                }
            }
            // Vectored packet-outs.
            6 => {
                let outs: Vec<(DatapathId, PacketOut)> = (0..rng.gen_range(2usize..5))
                    .map(|_| (pick_dpid(&mut rng), packet_out(&mut rng)))
                    .collect();
                let _ = kernel.execute_packet_outs(app, &outs);
            }
            // Atomic batches.
            7 => {
                let ops: Vec<FlowOp> = (0..rng.gen_range(2usize..5))
                    .map(|_| FlowOp {
                        dpid: pick_dpid(&mut rng),
                        flow_mod: flow_mod(&mut rng),
                    })
                    .collect();
                let _ = kernel.execute_batch(app, &ops);
            }
            // Subscriptions (admin holds pkt_in_event; others are denied).
            8 => {
                let call = ApiCall::new(
                    app,
                    ApiCallKind::Subscribe {
                        kind: EventKind::PacketIn,
                    },
                );
                let _ = kernel.execute(&call);
            }
            // Clock advance: expiries churn tracker state between checks.
            _ => {
                let _ = kernel.advance_clock(rng.gen_range(1u64..5));
            }
        }
    }

    let events = kernel.take_decision_trace();
    let decisions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Decision { .. }))
        .count();
    let mut text = write_trace(&events);
    if corrupt {
        // A fabricated Allow no manifest can justify: the tenant writing to
        // a switch outside its SWITCH 1,2 box at an absurd priority.
        let rogue = TraceEvent::Decision {
            lane: "fastlane".into(),
            allowed: true,
            call: ApiCall::new(
                TENANT,
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(9),
                    flow_mod: FlowMod::add(FlowMatch::any(), Priority(60_000), ActionList::drop()),
                },
            ),
        };
        text.push_str(&write_event(&rogue));
        text.push('\n');
    }
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("error: cannot write `{out_path}`: {e}");
        return ExitCode::from(3);
    }
    println!(
        "trace_gen: {commands} command(s), {decisions} decision(s), {} event(s){} -> {out_path}",
        events.len() + usize::from(corrupt),
        if corrupt {
            " (+1 injected rogue allow)"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}
