//! `sdnshield` — command-line front end for the permission tooling.
//!
//! ```text
//! sdnshield check <manifest-file>                validate a permission manifest
//! sdnshield policy <policy-file>                 validate a security policy
//! sdnshield reconcile <manifest-file> <policy-file> [app-name]
//!                                                reconcile and print the result
//! sdnshield templates                            print the stock class templates
//! ```
//!
//! Exit status: 0 on success (including reconciliations that repaired
//! violations — the report says so), 1 on usage errors, 2 on syntax errors.

use std::process::ExitCode;

use sdnshield::core::templates::CLASS_TEMPLATES;
use sdnshield::core::{parse_manifest, parse_policy, Reconciler};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => with_file(args.get(1), |src| match parse_manifest(src) {
            Ok(manifest) => {
                println!("manifest OK: {} permission(s)", manifest.len());
                print!("{manifest}");
                let stubs = manifest.stub_names();
                if !stubs.is_empty() {
                    println!(
                        "stub macros awaiting administrator values: {}",
                        stubs.join(", ")
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        }),
        Some("policy") => with_file(args.get(1), |src| match parse_policy(src) {
            Ok(policy) => {
                println!(
                    "policy OK: {} statement(s), {} constraint(s)",
                    policy.stmts.len(),
                    policy.constraints().count()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        }),
        Some("reconcile") => {
            let (Some(manifest_path), Some(policy_path)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: sdnshield reconcile <manifest-file> <policy-file> [app-name]");
                return ExitCode::FAILURE;
            };
            let app = args.get(3).map(String::as_str).unwrap_or("app");
            let manifest_src = match std::fs::read_to_string(manifest_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{manifest_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let policy_src = match std::fs::read_to_string(policy_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{policy_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let manifest = match parse_manifest(&manifest_src) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{manifest_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let policy = match parse_policy(&policy_src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{policy_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let mut reconciler = Reconciler::new(policy);
            reconciler.register_app(app, manifest);
            match reconciler.reconcile(app) {
                Ok(report) => {
                    if report.is_clean() {
                        println!("clean: the manifest satisfies the policy unchanged");
                    } else {
                        println!("{} violation(s) repaired:", report.violations.len());
                        for v in &report.violations {
                            println!("  - {v}");
                        }
                    }
                    println!("\nreconciled permissions for `{app}`:");
                    print!("{}", report.reconciled);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("reconciliation failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("southbound") => serve_southbound(&args[1..]),
        Some("templates") => {
            for (i, t) in CLASS_TEMPLATES.iter().enumerate() {
                println!("# ===== attack class {} template =====", i + 1);
                println!("{t}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: sdnshield <check|policy|reconcile|templates|southbound> [args]\n\
                 \n\
                 check <manifest-file>                      validate a manifest\n\
                 policy <policy-file>                       validate a policy\n\
                 reconcile <manifest> <policy> [app-name]   reconcile and print\n\
                 templates                                  print class templates\n\
                 southbound serve [--addr A] [--switches N] [--deputies N]\n\
                 \x20                [--duration-secs S]        run the wire-path server"
            );
            ExitCode::FAILURE
        }
    }
}

/// `sdnshield southbound serve` — the wire-path server half of the CBench
/// pair: a linear network, the L2-learning app under full mediation, and
/// the southbound TCP reactor. Prints `listening <addr>` on stdout once
/// bound so scripts can wait for readiness, runs for `--duration-secs`
/// (0 = until killed), then prints reactor stats.
fn serve_southbound(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) != Some("serve") {
        eprintln!("usage: sdnshield southbound serve [--addr A] [--switches N] [--deputies N] [--duration-secs S]");
        return ExitCode::FAILURE;
    }
    let mut addr = "127.0.0.1:6653".to_string();
    let mut switches = 8usize;
    let mut deputies = 4usize;
    let mut duration_secs = 0f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let Some(v) = it.next() else {
            eprintln!("{a} requires a value");
            return ExitCode::FAILURE;
        };
        let parsed = match a.as_str() {
            "--addr" => {
                addr = v.clone();
                Ok(())
            }
            "--switches" => v.parse().map(|n| switches = n).map_err(|e| e.to_string()),
            "--deputies" => v.parse().map(|n| deputies = n).map_err(|e| e.to_string()),
            "--duration-secs" => v
                .parse()
                .map(|s| duration_secs = s)
                .map_err(|e| e.to_string()),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = parsed {
            eprintln!("{a}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let (controller, handle) = match sdnshield::wirebench::serve_l2(
        &addr,
        switches,
        deputies,
        sdnshield::controller::southbound::SouthboundConfig::default(),
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("southbound serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if duration_secs > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(duration_secs));
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let stats = handle.stats();
    println!(
        "stats accepted={} handshakes={} closed={} frames_rx={} packet_ins={} flow_mods_tx={} packet_outs_tx={} echo_timeouts={} unknown_skipped={} shed={} protocol_errors={}",
        stats.accepted,
        stats.handshakes,
        stats.closed,
        stats.frames_rx,
        stats.packet_ins,
        stats.flow_mods_tx,
        stats.packet_outs_tx,
        stats.echo_timeouts,
        stats.unknown_skipped,
        stats.shed,
        stats.protocol_errors
    );
    handle.shutdown();
    controller.shutdown();
    ExitCode::SUCCESS
}

fn with_file(path: Option<&String>, f: impl FnOnce(&str) -> ExitCode) -> ExitCode {
    let Some(path) = path else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    match std::fs::read_to_string(path) {
        Ok(src) => f(&src),
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}
