//! `cbench` — CBench-class external load generator for the southbound wire
//! path (paper §VIII-C, Fig. 6, measured over real TCP instead of the
//! in-process harness).
//!
//! Runs as a separate process: it connects N emulated switches to a running
//! `sdnshield southbound serve` instance over loopback, then measures
//!
//! * **latency mode** — one outstanding PACKET_IN per connection; reports
//!   round-trip p50/p99 and responses/sec;
//! * **throughput mode** — a pipelined window of PACKET_INs per connection;
//!   reports sustained responses/sec with best-effort FIFO latencies.
//!
//! ```text
//! cbench [--addr HOST:PORT] [--switches N] [--duration-secs S]
//!        [--window W] [--mode latency|throughput|both] [--seed N]
//!        [--out FILE] [--fast]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:6653 --switches 8 --duration-secs 4
//! --window 64 --mode both --out BENCH_fig6_wire.json`. `--fast` shrinks the
//! run for CI smoke (2 switches, 1s per mode).
//!
//! Exit status is self-gating: 0 only if every requested mode completed its
//! handshakes and received at least one mediated response.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use sdnshield::wirebench::{run_latency_mode, run_throughput_mode, ModeResult};

struct Opts {
    addr: String,
    switches: usize,
    duration: Duration,
    window: usize,
    latency: bool,
    throughput: bool,
    seed: u64,
    out: String,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:6653".to_string(),
        switches: 8,
        duration: Duration::from_secs(4),
        window: 64,
        latency: true,
        throughput: true,
        seed: 0xC0FFEE,
        out: "BENCH_fig6_wire.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--addr" => opts.addr = val("--addr")?,
            "--switches" => {
                opts.switches = val("--switches")?
                    .parse()
                    .map_err(|e| format!("--switches: {e}"))?;
            }
            "--duration-secs" => {
                let s: f64 = val("--duration-secs")?
                    .parse()
                    .map_err(|e| format!("--duration-secs: {e}"))?;
                opts.duration = Duration::from_secs_f64(s);
            }
            "--window" => {
                opts.window = val("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--seed" => {
                opts.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => opts.out = val("--out")?,
            "--mode" => match val("--mode")?.as_str() {
                "latency" => {
                    opts.latency = true;
                    opts.throughput = false;
                }
                "throughput" => {
                    opts.latency = false;
                    opts.throughput = true;
                }
                "both" => {
                    opts.latency = true;
                    opts.throughput = true;
                }
                m => return Err(format!("--mode: unknown mode {m:?}")),
            },
            "--fast" => {
                opts.switches = 2;
                opts.duration = Duration::from_secs(1);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn json_mode(out: &mut String, r: &ModeResult) {
    let _ = write!(
        out,
        "    {{\n      \"mode\": \"{}\",\n      \"connections\": {},\n      \"sent\": {},\n      \"responses\": {},\n      \"duration_secs\": {:.3},\n      \"resp_per_sec\": {:.1},\n      \"latency_p50_us\": {:.1},\n      \"latency_p99_us\": {:.1}\n    }}",
        r.mode,
        r.connections,
        r.sent,
        r.responses,
        r.duration_secs,
        r.resp_per_sec,
        r.p50_us,
        r.p99_us
    );
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match opts.addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cbench: --addr {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);

    let mut results: Vec<ModeResult> = Vec::new();
    if opts.latency {
        eprintln!(
            "cbench: latency mode — {} switches, {:.1}s against {}",
            opts.switches,
            opts.duration.as_secs_f64(),
            opts.addr
        );
        match run_latency_mode(addr, opts.switches, opts.duration, opts.seed) {
            Ok(r) => {
                eprintln!(
                    "cbench: latency: {:.1} resp/s, p50 {:.1}us, p99 {:.1}us ({} responses)",
                    r.resp_per_sec, r.p50_us, r.p99_us, r.responses
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("cbench: latency mode failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.throughput {
        eprintln!(
            "cbench: throughput mode — {} switches, window {}, {:.1}s against {}",
            opts.switches,
            opts.window,
            opts.duration.as_secs_f64(),
            opts.addr
        );
        match run_throughput_mode(addr, opts.switches, opts.window, opts.duration, opts.seed) {
            Ok(r) => {
                eprintln!(
                    "cbench: throughput: {:.1} resp/s, p50 {:.1}us, p99 {:.1}us ({} responses)",
                    r.resp_per_sec, r.p50_us, r.p99_us, r.responses
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("cbench: throughput mode failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"fig6_wire_cbench\",");
    let _ = writeln!(
        json,
        "  \"description\": \"CBench-class load over the real southbound TCP wire path (loopback)\","
    );
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"switches\": {},", opts.switches);
    let _ = writeln!(json, "  \"window\": {},", opts.window);
    let _ = writeln!(json, "  \"app\": \"l2-learning (full mediation)\",");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, r) in results.iter().enumerate() {
        json_mode(&mut json, r);
        let _ = writeln!(json, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("cbench: write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("cbench: wrote {}", opts.out);

    // Self-gate: a run where any mode saw zero mediated responses is a
    // failure regardless of what the JSON says.
    let ok = !results.is_empty()
        && results
            .iter()
            .all(|r| r.responses > 0 && r.connections == opts.switches);
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("cbench: FAILED — a mode saw zero responses or missing connections");
        ExitCode::FAILURE
    }
}
