//! # SDNShield
//!
//! A from-scratch Rust reproduction of *SDNShield: Reconciliating
//! Configurable Application Permissions for SDN App Markets* (DSN 2016) —
//! a permission-control system for SDN controller applications.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`sdnshield-core`) — the paper's contribution: the two-level
//!   permission abstraction, the permission and security-policy languages,
//!   policy reconciliation, and the runtime permission engine.
//! * [`controller`] (`sdnshield-controller`) — the SDN controller kernel
//!   with the thread-based isolation architecture, plus the monolithic
//!   baseline.
//! * [`openflow`] (`sdnshield-openflow`) — the OpenFlow 1.0-style protocol
//!   substrate.
//! * [`netsim`] (`sdnshield-netsim`) — the simulated network (switches,
//!   topology, data plane, CBench-style traffic generation).
//! * [`apps`] (`sdnshield-apps`) — evaluation workloads, the §VII case-study
//!   apps, and the four proof-of-concept attack apps.
//!
//! # Quickstart
//!
//! ```
//! use sdnshield::controller::ShieldedController;
//! use sdnshield::core::{parse_manifest, parse_policy, Reconciler};
//! use sdnshield::netsim::network::Network;
//! use sdnshield::netsim::topology::builders;
//!
//! // 1. The developer ships a manifest; the administrator writes a policy.
//! let manifest = parse_manifest("PERM read_topology\nPERM network_access\nPERM insert_flow")?;
//! let policy = parse_policy("ASSERT EITHER { PERM network_access } OR { PERM insert_flow }")?;
//!
//! // 2. Reconciliation merges them (truncating insert_flow here).
//! let mut reconciler = Reconciler::new(policy);
//! reconciler.register_app("my-app", manifest);
//! let report = reconciler.reconcile("my-app").unwrap();
//!
//! // 3. The reconciled permissions are enforced by the controller.
//! let controller = ShieldedController::new(Network::new(builders::linear(2), 1024), 2);
//! // controller.register(Box::new(my_app), &report.reconciled) …
//! # let _ = report;
//! controller.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod wirebench;

pub use sdnshield_apps as apps;
pub use sdnshield_controller as controller;
pub use sdnshield_core as core;
pub use sdnshield_netsim as netsim;
pub use sdnshield_openflow as openflow;
