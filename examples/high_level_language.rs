//! High-level language adaptation (paper §VI-C): compiling a Pyretic-style
//! composed policy while tracking per-fragment ownership, then letting
//! SDNShield check every compiled rule against each contributing owner's
//! permissions — including the "partially denied" enforcement the paper
//! sketches as future work.
//!
//! Run with: `cargo run --example high_level_language`

use std::collections::BTreeMap;

use sdnshield::core::api::AppId;
use sdnshield::core::engine::PermissionEngine;
use sdnshield::core::eval::NullContext;
use sdnshield::core::hll::{check_composed, compile, permitted_rules, Pol};
use sdnshield::core::parse_manifest;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::types::{DatapathId, Ipv4, PortNo, Priority};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let monitor = AppId(1);
    let router = AppId(2);

    // The monitor contributes a tenant filter; the router contributes
    // forwarding; a second parallel branch tries to steer telnet.
    let tenant = FlowMatch {
        ip_dst: Some(sdnshield::openflow::flow_match::MaskedIpv4::prefix(
            Ipv4::new(10, 13, 0, 0),
            16,
        )),
        ..FlowMatch::default()
    };
    let policy = Pol::Filter(tenant)
        .owned_by(monitor)
        .seq(Pol::Fwd(PortNo(1)).owned_by(router))
        .par(
            Pol::Filter(FlowMatch::default().with_tp_dst(23))
                .seq(Pol::Fwd(PortNo(9)))
                .owned_by(router),
        );
    println!("composed policy: {policy}\n");

    let rules = compile(&policy)?;
    println!("compiled to {} ownership-annotated rules:", rules.len());
    for r in &rules {
        let owners: Vec<String> = r.owners.iter().map(|o| o.to_string()).collect();
        println!(
            "  owners={{{}}} {} -> {}",
            owners.join(","),
            r.flow_match,
            r.actions
        );
    }

    // Owner permissions: the router may only forward into the tenant subnet.
    let monitor_engine = PermissionEngine::compile(&parse_manifest("PERM insert_flow")?);
    let router_engine = PermissionEngine::compile(&parse_manifest(
        "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0",
    )?);
    let engines: BTreeMap<AppId, &PermissionEngine> =
        [(monitor, &monitor_engine), (router, &router_engine)].into();

    let verdicts = check_composed(
        &rules,
        DatapathId(1),
        Priority(100),
        &engines,
        router,
        &NullContext,
    );
    println!("\nper-rule verdicts:");
    for v in &verdicts {
        if v.permitted() {
            println!("  PERMITTED  {}", v.rule.flow_match);
        } else {
            for (owner, decision) in &v.denials {
                println!("  DENIED     {} — {owner}: {decision}", v.rule.flow_match);
            }
        }
    }

    let (ok, rejected) = permitted_rules(verdicts);
    println!(
        "\npartial enforcement: {} rule(s) install, {} rejected",
        ok.len(),
        rejected.len()
    );
    Ok(())
}
