//! Distributable policy templates (paper §III): applying the per-attack-class
//! templates to a grab-bag manifest and watching reconciliation cut it down
//! to least privilege.
//!
//! Run with: `cargo run --example policy_templates`

use sdnshield::core::templates::{compose, CLASS_TEMPLATES, MONITOR_ROLE_TEMPLATE};
use sdnshield::core::{parse_manifest, Reconciler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An app store submission requesting far too much.
    let manifest = parse_manifest(
        "PERM network_access\n\
         PERM send_pkt_out\n\
         PERM read_flow_table\n\
         PERM read_payload\n\
         PERM insert_flow\n\
         PERM delete_flow\n\
         PERM visible_topology\n\
         PERM pkt_in_event\n\
         PERM read_statistics",
    )?;
    println!("=== requested (over-privileged) manifest ===\n{manifest}");

    // The administrator just installs the stock templates.
    let policy = compose(CLASS_TEMPLATES)?;
    let mut reconciler = Reconciler::new(policy);
    reconciler.register_app("store-app", manifest);
    let report = reconciler.reconcile("store-app").expect("reconcile");

    println!("=== violations found by the class templates ===");
    for v in &report.violations {
        println!("  {v}");
    }
    println!("\n=== least-privilege result ===\n{}", report.reconciled);

    // Role templates need their stubs completed first.
    println!("=== monitor role template (with collector range) ===");
    let policy = compose([
        "LET CollectorRange = { IP_DST 192.168.10.0 MASK 255.255.255.0 }",
        MONITOR_ROLE_TEMPLATE,
    ])?;
    let mut reconciler = Reconciler::new(policy);
    reconciler.register_app(
        "monitor",
        parse_manifest("PERM visible_topology\nPERM read_statistics\nPERM network_access")?,
    );
    let report = reconciler.reconcile("monitor").expect("reconcile");
    println!("{}", report.reconciled);
    Ok(())
}
