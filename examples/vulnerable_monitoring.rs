//! Paper §VII, Scenario 1: the vulnerable monitoring app, end to end.
//!
//! A tenant-monitoring app with a web interface is compromised (arbitrary
//! code execution). The administrator's policy — stub completions plus a
//! mutual exclusion — confines the damage: exfiltration, packet injection
//! and rule insertion are all denied, while the app's legitimate reporting
//! keeps working.
//!
//! Run with: `cargo run --example vulnerable_monitoring`

use bytes::Bytes;
use sdnshield::apps::monitoring::{
    MonitoringApp, WebCommand, WebRequest, MONITORING_MANIFEST, MONITORING_POLICY,
};
use sdnshield::controller::ShieldedController;
use sdnshield::core::{parse_manifest, parse_policy, Reconciler};
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::flow_match::MaskedIpv4;
use sdnshield::openflow::types::{DatapathId, Ipv4, PortNo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== developer's requested manifest ===\n{MONITORING_MANIFEST}");
    println!("=== administrator's security policy ===\n{MONITORING_POLICY}");

    // Reconciliation: expand stubs, verify, repair.
    let mut reconciler = Reconciler::new(parse_policy(MONITORING_POLICY)?);
    reconciler.register_app("monitoring", parse_manifest(MONITORING_MANIFEST)?);
    let report = reconciler.reconcile("monitoring").expect("reconcile");
    println!("=== reconciliation ===");
    for v in &report.violations {
        println!("violation: {v}");
    }
    println!("final permissions:\n{}", report.reconciled);

    // Deploy on the shielded controller.
    let controller = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let (app, web) = MonitoringApp::new(MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16));
    let app_id = controller
        .register(Box::new(app), &report.reconciled)
        .expect("register");

    // The attacker gained code execution and spoofs an admin source IP.
    println!("=== attacker drives the compromised app ===");
    let attacks = [
        (
            "exfiltrate to 203.0.113.66:443",
            WebCommand::Exfiltrate {
                to: Ipv4::new(203, 0, 113, 66),
                port: 443,
            },
        ),
        (
            "inject packet at s1",
            WebCommand::InjectPacket {
                dpid: DatapathId(1),
                port: PortNo(1),
                payload: Bytes::from_static(b"\x00"),
            },
        ),
        (
            "install hijack rule at s1",
            WebCommand::AddRule {
                dpid: DatapathId(1),
                dst: Ipv4::new(10, 0, 0, 2),
                port: PortNo(1),
            },
        ),
        (
            "legitimate stats report to 10.1.0.9:4000",
            WebCommand::ReportStats {
                to: Ipv4::new(10, 1, 0, 9),
                port: 4000,
            },
        ),
    ];
    for (_, command) in &attacks {
        web.requests.send(WebRequest {
            source_ip: Ipv4::new(10, 1, 0, 200), // spoofed admin address
            command: command.clone(),
        })?;
    }
    controller.publish_topic("web", Bytes::new());
    controller.quiesce();

    for ((label, _), outcome) in attacks.iter().zip(web.outcomes.lock().iter()) {
        println!(
            "  {label}: {}",
            if outcome.succeeded {
                "SUCCEEDED"
            } else {
                "BLOCKED"
            }
        );
    }
    println!(
        "bytes exfiltrated outside the admin range: {}",
        controller
            .kernel()
            .connections_by(app_id)
            .iter()
            .filter(|c| !MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16).matches(c.dst_ip))
            .map(|c| c.sent.iter().map(Bytes::len).sum::<usize>())
            .sum::<usize>()
    );
    println!(
        "rules the attacker managed to install: {}",
        controller.kernel().flow_count(DatapathId(1))
    );
    controller.shutdown();
    Ok(())
}
