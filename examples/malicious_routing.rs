//! Paper §VII, Scenario 2: the malicious routing app, end to end.
//!
//! A shortest-path routing app carries a hidden payload. Under the
//! `insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS` grant its honest
//! routing keeps working, while exfiltration, route hijacking against a
//! firewall app's rules, and dynamic-flow tunneling are denied — and every
//! denied attempt lands in the audit log for forensics.
//!
//! Run with: `cargo run --example malicious_routing`

use sdnshield::apps::routing::{MaliciousCommand, RoutingApp, ROUTING_MANIFEST};
use sdnshield::controller::app::{App, AppCtx};
use sdnshield::controller::ShieldedController;
use sdnshield::core::{parse_manifest, AppId};
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::actions::ActionList;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::messages::FlowMod;
use sdnshield::openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield::openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

/// A minimal firewall app whose rules the malicious router will try to
/// bypass.
struct Firewall;

impl App for Firewall {
    fn name(&self) -> &str {
        "firewall"
    }
    fn on_start(&mut self, ctx: &AppCtx) {
        // Drop all telnet at s2.
        ctx.insert_flow(
            DatapathId(2),
            FlowMod::add(
                FlowMatch::default().with_tp_dst(23),
                Priority(400),
                ActionList::drop(),
            ),
        )
        .expect("firewall provisioning");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== routing app manifest (§VII scenario 2) ===\n{ROUTING_MANIFEST}");
    let controller = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    controller
        .register(Box::new(Firewall), &parse_manifest("PERM insert_flow")?)
        .expect("register firewall");

    let (router, trigger) = RoutingApp::new();
    let router_id = controller
        .register(Box::new(router), &parse_manifest(ROUTING_MANIFEST)?)
        .expect("register router");

    // Honest duty: route an HTTP flow h1 → h3.
    let http = EthernetFrame::tcp(
        EthAddr::from_u64(1),
        EthAddr::from_u64(3),
        Ipv4::new(10, 0, 0, 1),
        Ipv4::new(10, 0, 0, 3),
        5555,
        80,
        TcpFlags::default(),
        bytes::Bytes::new(),
    );
    controller.inject_host_frame(http);
    controller.quiesce();
    println!(
        "honest routing: h3 received {} frame(s)",
        controller
            .kernel()
            .host_received(EthAddr::from_u64(3))
            .len()
    );

    // The hidden payload fires.
    println!("=== hidden payload activates ===");
    trigger.commands.send(MaliciousCommand::Exfiltrate {
        to: Ipv4::new(203, 0, 113, 66),
        port: 443,
    })?;
    trigger.commands.send(MaliciousCommand::HijackRoute {
        victim_dst: Ipv4::new(10, 0, 0, 3),
        via: (DatapathId(2), PortNo(1)),
    })?;
    trigger.commands.send(MaliciousCommand::TunnelFirewall {
        firewall: DatapathId(2),
        blocked_port: 23,
        allowed_port: 80,
        out_port: PortNo(2),
    })?;
    // Another packet-in wakes the app and drains the command queue.
    let wake = EthernetFrame::tcp(
        EthAddr::from_u64(3),
        EthAddr::from_u64(1),
        Ipv4::new(10, 0, 0, 3),
        Ipv4::new(10, 0, 0, 1),
        5555,
        80,
        TcpFlags::default(),
        bytes::Bytes::new(),
    );
    controller.inject_host_frame(wake);
    controller.quiesce();

    for outcome in trigger.outcomes.lock().iter() {
        println!(
            "  {}: {}",
            outcome.attack,
            if outcome.succeeded {
                "SUCCEEDED"
            } else {
                "BLOCKED"
            }
        );
    }

    // Forensics: the audit log recorded every denied attempt.
    println!("=== forensic audit (denials by the routing app) ===");
    for record in controller.kernel().audit_records() {
        if record.app == AppId(router_id.0)
            && record.outcome == sdnshield::controller::audit::AuditOutcome::Denied
        {
            println!("  {record}");
        }
    }
    controller.shutdown();
    Ok(())
}
