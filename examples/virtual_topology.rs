//! Abstract topology (paper §IV-B, §VI-B1): a tenant app is granted
//! `VIRTUAL SINGLE_BIG_SWITCH` and sees the whole physical network as one
//! switch. Its flow rules are transparently translated onto shortest paths
//! across the physical members; its statistics requests fan out and
//! aggregate.
//!
//! Run with: `cargo run --example virtual_topology`

use sdnshield::controller::app::{App, AppCtx};
use sdnshield::controller::ShieldedController;
use sdnshield::core::parse_manifest;
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::actions::ActionList;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::messages::{FlowMod, StatsRequest};
use sdnshield::openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// The tenant app: programs its one big switch.
struct TenantApp;

impl App for TenantApp {
    fn name(&self) -> &str {
        "tenant"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let view = ctx.read_topology().expect("read topology");
        println!(
            "[tenant] I see {} switch(es); the big switch has {} external ports",
            view.switches.len(),
            view.switches[0].ports.len()
        );
        // One rule on the big switch: steer 10.0.0.3 to external port 3
        // (where host 3 attaches).
        let fm = FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
            Priority(50),
            ActionList::output(PortNo(3)),
        );
        match ctx.insert_flow(view.switches[0].dpid, fm) {
            Ok(()) => println!("[tenant] big-switch rule accepted"),
            Err(e) => println!("[tenant] big-switch rule failed: {e}"),
        }
        // Aggregate statistics over the big switch.
        match ctx.read_statistics(view.switches[0].dpid, StatsRequest::Table) {
            Ok(stats) => println!("[tenant] aggregated stats: {stats:?}"),
            Err(e) => println!("[tenant] stats failed: {e}"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Physical reality: a 3-switch line the tenant never sees.
    let controller = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    let manifest = parse_manifest(
        "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n\
         PERM insert_flow\n\
         PERM read_statistics",
    )?;
    controller
        .register(Box::new(TenantApp), &manifest)
        .expect("register");

    // The reference monitor translated the one virtual rule into physical
    // rules along shortest paths:
    println!("physical flow tables after translation:");
    for d in 1..=3u64 {
        println!(
            "  s{d}: {} rule(s)",
            controller.kernel().flow_count(DatapathId(d))
        );
    }
    controller.shutdown();
    Ok(())
}
