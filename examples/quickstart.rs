//! Quickstart: the full SDNShield pipeline in one binary.
//!
//! 1. Parse a developer-supplied permission manifest.
//! 2. Parse an administrator security policy and reconcile the two.
//! 3. Start the thread-isolated controller over a simulated network.
//! 4. Register an app under the reconciled permissions and watch the
//!    permission engine allow its duties and deny its overreach.
//!
//! Run with: `cargo run --example quickstart`

use sdnshield::controller::app::{App, AppCtx};
use sdnshield::controller::events::Event;
use sdnshield::controller::ShieldedController;
use sdnshield::core::api::EventKind;
use sdnshield::core::{parse_manifest, parse_policy, Reconciler};
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::actions::ActionList;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::messages::FlowMod;
use sdnshield::openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// A toy app: reacts to packet-ins by installing one in-scope rule and one
/// out-of-scope rule, printing what the permission engine says.
struct DemoApp;

impl App for DemoApp {
    fn name(&self) -> &str {
        "demo"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
        println!("[demo] subscribed to packet-ins");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, .. } = event else {
            return;
        };
        // Inside the granted flow space (10.13.0.0/16): allowed.
        let inside = FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 13, 0, 99)),
            Priority(100),
            ActionList::output(PortNo(1)),
        );
        match ctx.insert_flow(*dpid, inside) {
            Ok(()) => println!("[demo] rule for 10.13.0.99 on {dpid}: ALLOWED"),
            Err(e) => println!("[demo] rule for 10.13.0.99 on {dpid}: {e}"),
        }
        // Outside it: denied.
        let outside = FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(8, 8, 8, 8)),
            Priority(100),
            ActionList::output(PortNo(1)),
        );
        match ctx.insert_flow(*dpid, outside) {
            Ok(()) => println!("[demo] rule for 8.8.8.8 on {dpid}: ALLOWED (?!)"),
            Err(e) => println!("[demo] rule for 8.8.8.8 on {dpid}: DENIED ({e})"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The developer ships this manifest with the app. -------------
    let manifest = parse_manifest(
        "PERM pkt_in_event\n\
         PERM insert_flow LIMITING TenantSpace\n\
         PERM network_access\n\
         PERM send_pkt_out",
    )?;
    println!("requested manifest:\n{manifest}");

    // --- 2. The administrator's local policy. ---------------------------
    // The Class-1 template: an app must not both reach the host network and
    // inject data-plane packets. send_pkt_out gets truncated; the filtered
    // insert_flow survives.
    let policy = parse_policy(
        "LET TenantSpace = { IP_DST 10.13.0.0 MASK 255.255.0.0 }\n\
         ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }",
    )?;
    let mut reconciler = Reconciler::new(policy);
    reconciler.register_app("demo", manifest);
    let report = reconciler.reconcile("demo").expect("reconcile");
    for v in &report.violations {
        println!("policy violation: {v}");
    }
    println!("reconciled manifest:\n{}", report.reconciled);

    // --- 3 + 4. Enforce. --------------------------------------------------
    let controller = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    controller
        .register(Box::new(DemoApp), &report.reconciled)
        .expect("register");

    // Drive one packet-in through the simulated network.
    let arp = sdnshield::openflow::packet::EthernetFrame::arp_request(
        sdnshield::openflow::types::EthAddr::from_u64(1),
        Ipv4::new(10, 0, 0, 1),
        Ipv4::new(10, 0, 0, 2),
    );
    controller.inject_host_frame(arp);
    controller.quiesce();

    println!(
        "rules installed on s1: {}",
        controller.kernel().flow_count(DatapathId(1))
    );
    println!("audit trail:");
    for record in controller.kernel().audit_records() {
        println!("  {record}");
    }
    controller.shutdown();
    Ok(())
}
