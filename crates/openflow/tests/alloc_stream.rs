//! Zero-allocation guard for the steady-state southbound decode path.
//!
//! A counting global allocator wraps `System`; after warming the decoder and
//! write ring so every buffer has reached its steady capacity, a long
//! extend → decode → view → reply loop must perform **zero** heap
//! allocations. This pins the tentpole claim that per-message work on the
//! wire hot path is allocation-free (the owning `PacketIn` copy is the
//! dispatch boundary and is exercised separately).
//!
//! This must stay the ONLY `#[test]` in this integration binary: the
//! allocator wrapper is process-global, and keeping the binary
//! single-test keeps the measured window free of harness noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The gate is thread-local so only the measured thread counts — the libtest
// harness thread allocates concurrently (channel bookkeeping, output) and
// must not pollute the measurement.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use bytes::Bytes;
use sdnshield_openflow::messages::{OfBody, OfMessage, PacketIn, PacketInReason};
use sdnshield_openflow::southbound::{StreamDecoder, WriteRing};
use sdnshield_openflow::types::{BufferId, PortNo, Xid};
use sdnshield_openflow::wire::{self, msg_type};

#[test]
fn steady_state_decode_path_does_not_allocate() {
    // Pre-encode a representative frame mix outside the counted window.
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for i in 0..8u32 {
        let mut buf = Vec::new();
        wire::encode_into(
            &OfMessage::new(
                Xid(i),
                OfBody::PacketIn(PacketIn {
                    buffer_id: BufferId(i),
                    in_port: PortNo((i % 4) as u16 + 1),
                    reason: PacketInReason::NoMatch,
                    payload: Bytes::from(vec![0xAB; 60 + (i as usize * 13) % 90]),
                }),
            ),
            &mut buf,
        );
        frames.push(buf);
    }
    let mut echo = Vec::new();
    wire::encode_into(
        &OfMessage::new(Xid(99), OfBody::EchoRequest(Bytes::from_static(b"ping"))),
        &mut echo,
    );
    frames.push(echo);

    let mut dec = StreamDecoder::new();
    let mut ring = WriteRing::new(1 << 16);

    let work = |dec: &mut StreamDecoder, ring: &mut WriteRing, rounds: usize| {
        // `Sink` is a ZST; constructing it does not allocate.
        let mut sink = std::io::sink();
        let mut packet_ins = 0u64;
        let mut payload_bytes = 0u64;
        for r in 0..rounds {
            for frame in &frames {
                dec.extend(frame);
                while let Some(view) = dec.next_frame().expect("valid stream") {
                    match view.ty {
                        msg_type::PACKET_IN => {
                            let pi = view.packet_in().expect("packet-in view");
                            packet_ins += 1;
                            payload_bytes += pi.payload.len() as u64;
                        }
                        msg_type::ECHO_REQUEST => {
                            assert!(ring.push_echo_reply(view.xid, view.echo_payload()));
                        }
                        t => panic!("unexpected type {t}"),
                    }
                }
            }
            // Flush the replies so the ring cursor wraps like a live
            // connection's instead of filling up.
            if r % 16 == 15 {
                ring.flush(&mut sink).expect("sink flush");
            }
        }
        (packet_ins, payload_bytes)
    };

    // Warmup: let the decoder buffer, ring scratch, and any lazy stdlib
    // state reach steady capacity.
    let (warm_pi, _) = work(&mut dec, &mut ring, 32);
    assert_eq!(warm_pi, 32 * 8);
    ring.flush(&mut std::io::sink()).expect("sink flush");

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let (pi, bytes) = work(&mut dec, &mut ring, 512);
    COUNTING.with(|c| c.set(false));
    let counted = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(pi, 512 * 8);
    assert!(bytes > 0);
    assert_eq!(
        counted, 0,
        "steady-state decode path allocated {counted} times over {pi} messages"
    );
}
