//! Property tests for the zero-copy southbound stream codec: arbitrary
//! message sequences encoded to one byte stream, delivered under arbitrary
//! chunking (1-byte reads, mid-header splits, coalesced frames), must decode
//! back to exactly the original sequence; unknown message types are skipped
//! and counted; a torn final frame stays pending without error until its
//! bytes arrive.

use bytes::Bytes;
use proptest::prelude::*;
use sdnshield_openflow::messages::{OfBody, OfMessage, PacketIn, PacketInReason};
use sdnshield_openflow::southbound::StreamDecoder;
use sdnshield_openflow::types::{BufferId, DatapathId, PortNo, Xid};
use sdnshield_openflow::wire::{self, msg_type, HEADER_LEN, WIRE_VERSION};

/// One element of the generated stream: a real message or a frame with an
/// unknown type code that the decoder must skip.
#[derive(Debug, Clone)]
enum Item {
    Msg(OfMessage),
    Unknown { ty: u8, xid: u32, body: Vec<u8> },
}

fn arb_packet_in() -> impl Strategy<Value = OfBody> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(buf, port, action, payload)| {
            OfBody::PacketIn(PacketIn {
                buffer_id: BufferId(buf),
                in_port: PortNo(port),
                reason: if action {
                    PacketInReason::Action
                } else {
                    PacketInReason::NoMatch
                },
                payload: Bytes::from(payload),
            })
        })
}

fn arb_item() -> impl Strategy<Value = Item> {
    let msg = prop_oneof![
        Just(OfBody::Hello),
        Just(OfBody::FeaturesRequest),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|p| OfBody::EchoRequest(Bytes::from(p))),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|p| OfBody::EchoReply(Bytes::from(p))),
        (any::<u64>(), any::<u16>()).prop_map(|(d, n)| OfBody::FeaturesReply {
            datapath_id: DatapathId(d),
            ports: vec![PortNo(n)],
            table_capacity: 1024,
        }),
        arb_packet_in(),
    ];
    // Roughly one frame in five carries an unknown type code.
    (
        0..5u8,
        any::<u32>(),
        msg,
        (msg_type::BARRIER_REPLY + 1)..=255u8,
        proptest::collection::vec(any::<u8>(), 0..40),
    )
        .prop_map(|(pick, xid, body, ty, raw)| {
            if pick == 0 {
                Item::Unknown { ty, xid, body: raw }
            } else {
                Item::Msg(OfMessage::new(Xid(xid), body))
            }
        })
}

/// Encodes the stream exactly as the wire would carry it, unknown frames
/// included.
fn encode_stream(items: &[Item]) -> Vec<u8> {
    let mut out = Vec::new();
    for item in items {
        match item {
            Item::Msg(m) => {
                wire::encode_into(m, &mut out);
            }
            Item::Unknown { ty, xid, body } => {
                out.push(WIRE_VERSION);
                out.push(*ty);
                out.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
                out.extend_from_slice(&xid.to_be_bytes());
                out.extend_from_slice(body);
            }
        }
    }
    out
}

/// Splits `stream` into chunks whose sizes cycle through `sizes` (each seed
/// maps to 1..=17 bytes, so 1-byte reads and mid-header splits both occur).
fn chunks<'a>(stream: &'a [u8], sizes: &[u8]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let mut off = 0;
    let mut i = 0;
    while off < stream.len() {
        let take = if sizes.is_empty() {
            stream.len() - off
        } else {
            1 + (sizes[i % sizes.len()] as usize % 17)
        };
        let end = (off + take).min(stream.len());
        out.push(&stream[off..end]);
        off = end;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: decode(chunked(encode(items))) == items, with unknown
    /// frames skipped and counted rather than surfaced or fatal.
    #[test]
    fn stream_round_trips_under_arbitrary_chunking(
        items in proptest::collection::vec(arb_item(), 0..30),
        sizes in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let stream = encode_stream(&items);
        let mut dec = StreamDecoder::new();
        let mut got: Vec<OfMessage> = Vec::new();
        for chunk in chunks(&stream, &sizes) {
            dec.extend(chunk);
            // Decode as frames complete, interleaved with feeding — the
            // reactor's actual read loop shape.
            while let Some(frame) = dec.next_frame().expect("valid stream") {
                got.push(frame.message().expect("decodable body"));
            }
        }
        let expected: Vec<&OfMessage> = items
            .iter()
            .filter_map(|i| match i {
                Item::Msg(m) => Some(m),
                Item::Unknown { .. } => None,
            })
            .collect();
        let unknown = items.len() - expected.len();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected) {
            prop_assert_eq!(g, e);
        }
        prop_assert_eq!(dec.unknown_skipped(), unknown as u64);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A torn final frame: everything before it decodes, the tail stays
    /// buffered without error, and the frame completes once the missing
    /// bytes arrive.
    #[test]
    fn torn_final_frame_completes_when_bytes_arrive(
        items in proptest::collection::vec(arb_item(), 0..10),
        sizes in proptest::collection::vec(any::<u8>(), 0..8),
        xid in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..120),
        cut_seed in any::<u16>(),
    ) {
        let last = OfMessage::new(
            Xid(xid),
            OfBody::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(7),
                reason: PacketInReason::NoMatch,
                payload: Bytes::from(payload),
            }),
        );
        let mut stream = encode_stream(&items);
        let frame_start = stream.len();
        wire::encode_into(&last, &mut stream);
        let frame_len = stream.len() - frame_start;
        // Withhold 1..frame_len bytes of the final frame.
        let cut = 1 + (cut_seed as usize % (frame_len - 1).max(1));
        let torn_at = stream.len() - cut;

        let mut dec = StreamDecoder::new();
        let mut got = 0usize;
        for chunk in chunks(&stream[..torn_at], &sizes) {
            dec.extend(chunk);
            while let Some(frame) = dec.next_frame().expect("valid stream") {
                frame.message().expect("decodable body");
                got += 1;
            }
        }
        let complete = items
            .iter()
            .filter(|i| matches!(i, Item::Msg(_)))
            .count();
        prop_assert_eq!(got, complete);
        prop_assert!(dec.pending() > 0, "torn tail must stay buffered");

        dec.extend(&stream[torn_at..]);
        let frame = dec.next_frame().expect("valid stream").expect("completed frame");
        prop_assert_eq!(frame.message().expect("decodable body"), last);
        prop_assert_eq!(dec.pending(), 0);
    }
}
