//! Differential property test: the indexed `FlowTable` (slab + exact-match
//! hash index + priority buckets) must behave identically to a naive linear
//! reference implementation across randomized FlowMod sequences, expiry and
//! lookups — same results, same errors, same iteration order, same counters.

use bytes::Bytes;
use proptest::prelude::*;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::flow_table::{FlowEntry, FlowTable, RemovedEntry};
use sdnshield_openflow::messages::{FlowMod, FlowModCommand, FlowRemovedReason, OfError};
use sdnshield_openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield_openflow::types::{Cookie, EthAddr, Ipv4, PortNo, Priority};

/// The straightforward Vec-backed table the indexed implementation replaced:
/// a list kept sorted by descending priority (insertion-stable within a
/// priority), every command an O(n) scan. Small and obviously correct — the
/// oracle.
struct NaiveTable {
    entries: Vec<FlowEntry>,
    capacity: usize,
}

impl NaiveTable {
    fn new(capacity: usize) -> Self {
        NaiveTable {
            entries: Vec::new(),
            capacity,
        }
    }

    fn from_mod(fm: &FlowMod, now: u64) -> FlowEntry {
        FlowEntry {
            flow_match: fm.flow_match.clone(),
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            notify_when_removed: fm.notify_when_removed,
            installed_at: now,
            last_hit_at: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    fn apply(&mut self, fm: &FlowMod, now: u64) -> Result<Vec<RemovedEntry>, OfError> {
        match fm.command {
            FlowModCommand::Add => {
                if let Some(e) = self
                    .entries
                    .iter_mut()
                    .find(|e| e.flow_match == fm.flow_match && e.priority == fm.priority)
                {
                    *e = Self::from_mod(fm, now);
                    return Ok(Vec::new());
                }
                if self.entries.len() >= self.capacity {
                    return Err(OfError::TableFull);
                }
                // Keep descending priority order; new entries go at the end
                // of their priority group (insertion-stable).
                let at = self.entries.partition_point(|e| e.priority >= fm.priority);
                self.entries.insert(at, Self::from_mod(fm, now));
                Ok(Vec::new())
            }
            FlowModCommand::Modify => {
                let mut hit = false;
                for e in self
                    .entries
                    .iter_mut()
                    .filter(|e| fm.flow_match.subsumes(&e.flow_match))
                {
                    e.actions = fm.actions.clone();
                    e.cookie = fm.cookie;
                    hit = true;
                }
                if hit {
                    Ok(Vec::new())
                } else {
                    self.apply(
                        &FlowMod {
                            command: FlowModCommand::Add,
                            ..fm.clone()
                        },
                        now,
                    )
                }
            }
            FlowModCommand::ModifyStrict => {
                match self
                    .entries
                    .iter_mut()
                    .find(|e| e.flow_match == fm.flow_match && e.priority == fm.priority)
                {
                    Some(e) => {
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        Ok(Vec::new())
                    }
                    None => self.apply(
                        &FlowMod {
                            command: FlowModCommand::Add,
                            ..fm.clone()
                        },
                        now,
                    ),
                }
            }
            FlowModCommand::Delete => Ok(self.remove_where(
                |e| fm.flow_match.subsumes(&e.flow_match),
                |_| FlowRemovedReason::Delete,
            )),
            FlowModCommand::DeleteStrict => Ok(self.remove_where(
                |e| e.flow_match == fm.flow_match && e.priority == fm.priority,
                |_| FlowRemovedReason::Delete,
            )),
        }
    }

    fn remove_where(
        &mut self,
        mut pred: impl FnMut(&FlowEntry) -> bool,
        mut reason: impl FnMut(&FlowEntry) -> FlowRemovedReason,
    ) -> Vec<RemovedEntry> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if pred(&self.entries[i]) {
                let entry = self.entries.remove(i);
                let reason = reason(&entry);
                removed.push(RemovedEntry { entry, reason });
            } else {
                i += 1;
            }
        }
        removed
    }

    fn expire(&mut self, now: u64) -> Vec<RemovedEntry> {
        self.remove_where(
            |e| {
                (e.hard_timeout != 0 && now >= e.installed_at + e.hard_timeout as u64)
                    || (e.idle_timeout != 0 && now >= e.last_hit_at + e.idle_timeout as u64)
            },
            |e| {
                if e.hard_timeout != 0 && now >= e.installed_at + e.hard_timeout as u64 {
                    FlowRemovedReason::HardTimeout
                } else {
                    FlowRemovedReason::IdleTimeout
                }
            },
        )
    }

    fn lookup(
        &mut self,
        in_port: PortNo,
        frame: &EthernetFrame,
        byte_len: usize,
        now: u64,
    ) -> Option<FlowEntry> {
        let hit = self
            .entries
            .iter_mut()
            .find(|e| e.flow_match.matches_frame(in_port, frame))?;
        hit.packet_count += 1;
        hit.byte_count += byte_len as u64;
        hit.last_hit_at = now;
        Some(hit.clone())
    }
}

/// One scripted step against both tables.
#[derive(Debug, Clone)]
enum Step {
    Mod(FlowMod),
    Advance(u64),
    Expire,
    Lookup { in_port: u16, tp_dst: u16 },
}

/// A deliberately small match universe so randomized sequences actually
/// collide: identical (match, priority) pairs recur, subsumption triggers,
/// and strict/non-strict variants diverge.
fn small_match(sel: u8, tp: u16) -> FlowMatch {
    match sel % 4 {
        0 => FlowMatch::any(),
        1 => FlowMatch::default().with_tp_dst(tp),
        2 => FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, tp as u8)),
        _ => FlowMatch::default()
            .with_ip_dst(Ipv4::new(10, 0, 0, tp as u8))
            .with_tp_dst(tp),
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0u8..8,  // command selector (weighted toward mods)
        0u8..4,  // match shape
        0u16..4, // tp / ip discriminator
        0u8..3,  // priority selector
        0u16..4, // output port (action identity)
        0u8..3,  // idle timeout selector
        0u8..3,  // hard timeout selector
        1u64..4, // clock advance
    )
        .prop_map(|(cmd, shape, tp, prio, port, idle, hard, secs)| match cmd {
            6 => Step::Advance(secs),
            7 => Step::Expire,
            5 => Step::Lookup {
                in_port: tp,
                tp_dst: tp,
            },
            cmd => {
                let command = match cmd {
                    0 => FlowModCommand::Add,
                    1 => FlowModCommand::Modify,
                    2 => FlowModCommand::ModifyStrict,
                    3 => FlowModCommand::Delete,
                    _ => FlowModCommand::DeleteStrict,
                };
                let mut fm = FlowMod::add(
                    small_match(shape, tp),
                    Priority(10 * (prio as u16 + 1)),
                    ActionList::output(PortNo(port)),
                );
                fm.command = command;
                fm.cookie = Cookie::with_owner(1 + (port % 3), 0);
                fm.idle_timeout = idle as u16 * 2;
                fm.hard_timeout = hard as u16 * 3;
                fm.notify_when_removed = true;
                Step::Mod(fm)
            }
        })
}

fn probe_frame(tp_dst: u16) -> EthernetFrame {
    EthernetFrame::tcp(
        EthAddr::from_u64(0x01),
        EthAddr::from_u64(0x02),
        Ipv4::new(10, 0, 0, 1),
        Ipv4::new(10, 0, 0, tp_dst as u8),
        1000,
        tp_dst,
        TcpFlags::default(),
        Bytes::new(),
    )
}

proptest! {
    /// The indexed table and the linear oracle agree on every observable:
    /// per-step results (including errors and removal order), final
    /// iteration sequence, and counters mutated by lookups.
    #[test]
    fn indexed_table_matches_linear_reference(
        steps in proptest::collection::vec(arb_step(), 0..80),
    ) {
        let mut indexed = FlowTable::new(6);
        let mut naive = NaiveTable::new(6);
        let mut now = 0u64;
        for step in &steps {
            match step {
                Step::Mod(fm) => {
                    let a = indexed.apply(fm, now);
                    let b = naive.apply(fm, now);
                    prop_assert_eq!(&a, &b, "apply diverged on {:?}", fm);
                }
                Step::Advance(secs) => now += secs,
                Step::Expire => {
                    let a = indexed.expire(now);
                    let b = naive.expire(now);
                    prop_assert_eq!(&a, &b, "expire diverged at t={}", now);
                }
                Step::Lookup { in_port, tp_dst } => {
                    let frame = probe_frame(*tp_dst);
                    let a = indexed
                        .lookup(PortNo(*in_port), &frame, 64, now)
                        .cloned();
                    let b = naive.lookup(PortNo(*in_port), &frame, 64, now);
                    prop_assert_eq!(&a, &b, "lookup diverged on tp_dst={}", tp_dst);
                }
            }
            // Full-state equivalence after every step: same entries in the
            // same match order.
            let a: Vec<&FlowEntry> = indexed.iter().collect();
            prop_assert_eq!(a.len(), naive.entries.len());
            for (x, y) in indexed.iter().zip(naive.entries.iter()) {
                prop_assert_eq!(x, y);
            }
            prop_assert_eq!(indexed.len(), naive.entries.len());
        }
    }
}
