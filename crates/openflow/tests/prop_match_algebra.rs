//! Property-based tests for the flow-match subsumption algebra and the wire
//! codec — the invariants SDNShield's permission comparison relies on.

use bytes::Bytes;
use proptest::prelude::*;
use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{
    FlowMod, FlowModCommand, OfBody, OfMessage, PacketIn, PacketInReason,
};
use sdnshield_openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield_openflow::types::{BufferId, Cookie, EthAddr, Ipv4, PortNo, Priority, Xid};
use sdnshield_openflow::wire;

fn arb_masked_ipv4() -> impl Strategy<Value = MaskedIpv4> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| MaskedIpv4::prefix(Ipv4(addr), len))
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(0u16..16u16),
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
        proptest::option::of(prop_oneof![Just(0x0800u16), Just(0x0806u16)]),
        proptest::option::of(arb_masked_ipv4()),
        proptest::option::of(arb_masked_ipv4()),
        proptest::option::of(prop_oneof![Just(6u8), Just(17u8)]),
        proptest::option::of(0u16..1024),
        proptest::option::of(0u16..1024),
    )
        .prop_map(
            |(in_port, eth_src, eth_dst, eth_type, ip_src, ip_dst, ip_proto, tp_src, tp_dst)| {
                FlowMatch {
                    in_port: in_port.map(PortNo),
                    eth_src: eth_src.map(EthAddr::from_u64),
                    eth_dst: eth_dst.map(EthAddr::from_u64),
                    eth_type,
                    vlan_id: None,
                    vlan_pcp: None,
                    ip_src,
                    ip_dst,
                    ip_proto,
                    ip_tos: None,
                    tp_src,
                    tp_dst,
                }
            },
        )
}

fn arb_frame() -> impl Strategy<Value = (PortNo, EthernetFrame)> {
    (
        0u16..16,
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        0u16..1024,
        0u16..1024,
    )
        .prop_map(|(port, smac, dmac, sip, dip, sport, dport)| {
            (
                PortNo(port),
                EthernetFrame::tcp(
                    EthAddr::from_u64(smac),
                    EthAddr::from_u64(dmac),
                    Ipv4(sip),
                    Ipv4(dip),
                    sport,
                    dport,
                    TcpFlags::default(),
                    Bytes::new(),
                ),
            )
        })
}

proptest! {
    /// Subsumption is reflexive.
    #[test]
    fn subsumes_reflexive(m in arb_match()) {
        prop_assert!(m.subsumes(&m));
    }

    /// Subsumption is transitive.
    #[test]
    fn subsumes_transitive(a in arb_match(), b in arb_match(), c in arb_match()) {
        if a.subsumes(&b) && b.subsumes(&c) {
            prop_assert!(a.subsumes(&c));
        }
    }

    /// The wildcard match subsumes everything.
    #[test]
    fn any_subsumes_all(m in arb_match()) {
        prop_assert!(FlowMatch::any().subsumes(&m));
    }

    /// Semantic soundness: if `a` subsumes `b` and a packet matches `b`,
    /// it must match `a` too.
    #[test]
    fn subsumption_sound_on_packets(a in arb_match(), b in arb_match(), f in arb_frame()) {
        let (port, frame) = f;
        if a.subsumes(&b) && b.matches_frame(port, &frame) {
            prop_assert!(a.matches_frame(port, &frame));
        }
    }

    /// Overlap is symmetric and implied by subsumption.
    #[test]
    fn overlap_symmetric(a in arb_match(), b in arb_match()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if a.subsumes(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    /// A packet matched by both matches is a witness of overlap.
    #[test]
    fn overlap_sound_on_packets(a in arb_match(), b in arb_match(), f in arb_frame()) {
        let (port, frame) = f;
        if a.matches_frame(port, &frame) && b.matches_frame(port, &frame) {
            prop_assert!(a.overlaps(&b));
        }
    }

    /// Intersection is the greatest lower bound: both operands subsume it,
    /// and a packet matching both operands matches the intersection.
    #[test]
    fn intersect_is_glb(a in arb_match(), b in arb_match(), f in arb_frame()) {
        let (port, frame) = f;
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.subsumes(&i), "a={a} i={i}");
                prop_assert!(b.subsumes(&i), "b={b} i={i}");
                prop_assert_eq!(
                    i.matches_frame(port, &frame),
                    a.matches_frame(port, &frame) && b.matches_frame(port, &frame)
                );
            }
            None => {
                // Disjoint: no packet may match both.
                prop_assert!(!(a.matches_frame(port, &frame) && b.matches_frame(port, &frame)));
            }
        }
    }

    /// Masked-set inclusion agrees with pointwise membership.
    #[test]
    fn masked_inclusion_sound(a in arb_masked_ipv4(), b in arb_masked_ipv4(), ip in any::<u32>()) {
        if a.includes(&b) && b.matches(Ipv4(ip)) {
            prop_assert!(a.matches(Ipv4(ip)));
        }
    }

    /// Wire codec round-trips arbitrary flow-mods.
    #[test]
    fn wire_roundtrip_flow_mod(
        m in arb_match(),
        prio in any::<u16>(),
        cookie in any::<u64>(),
        out_port in 0u16..64,
        idle in any::<u16>(),
        cmd in 0u8..5,
    ) {
        let command = match cmd {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            _ => FlowModCommand::DeleteStrict,
        };
        let fm = FlowMod {
            command,
            flow_match: m,
            priority: Priority(prio),
            actions: ActionList(vec![Action::Output(PortNo(out_port))]),
            cookie: Cookie(cookie),
            idle_timeout: idle,
            hard_timeout: 0,
            notify_when_removed: true,
        };
        let msg = OfMessage::new(Xid(1), OfBody::FlowMod(fm));
        prop_assert_eq!(wire::decode(wire::encode(&msg)).unwrap(), msg);
    }

    /// Wire codec round-trips packet-ins with arbitrary payloads.
    #[test]
    fn wire_roundtrip_packet_in(payload in proptest::collection::vec(any::<u8>(), 0..256), port in any::<u16>()) {
        let msg = OfMessage::new(Xid(9), OfBody::PacketIn(PacketIn {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo(port),
            reason: PacketInReason::NoMatch,
            payload: Bytes::from(payload),
        }));
        prop_assert_eq!(wire::decode(wire::encode(&msg)).unwrap(), msg);
    }

    /// Packet serialization round-trips TCP frames.
    #[test]
    fn packet_roundtrip(f in arb_frame()) {
        let (_, frame) = f;
        prop_assert_eq!(EthernetFrame::from_bytes(frame.to_bytes()).unwrap(), frame);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn wire_decode_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = wire::decode(Bytes::from(junk));
    }

    /// Packet parsing of arbitrary garbage never panics.
    #[test]
    fn packet_parse_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = EthernetFrame::from_bytes(Bytes::from(junk));
    }
}
