//! Snapshot-grade binary encoding of protocol values.
//!
//! The controller's durability layer (its command journal and kernel
//! snapshots) needs to persist OpenFlow values — matches, actions, flow-mods,
//! whole flow-table entries — and read them back bit-exactly. This module
//! exposes the same self-consistent codec the [`crate::wire`] frame encoder
//! uses internally, but as composable `put_*`/`get_*` pairs over raw buffers
//! instead of framed control-channel messages, so callers can embed protocol
//! values inside their own record formats.
//!
//! Round-trip fidelity (`get(put(v)) == v`) is the contract, shared with the
//! wire codec and enforced by the tests below.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::actions::ActionList;
use crate::flow_match::FlowMatch;
use crate::flow_table::FlowEntry;
use crate::messages::{FlowMod, FlowModCommand, PacketOut, PortStats, StatsRequest};
use crate::types::{BufferId, Cookie, PortNo, Priority};
use crate::wire::{self, WireError};

/// Appends a length-prefixed UTF-8 string (u16 length).
pub fn put_string(s: &str, out: &mut BytesMut) {
    wire::put_string(s, out);
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// [`WireError`] on truncation or invalid UTF-8.
pub fn get_string(b: &mut Bytes) -> Result<String, WireError> {
    wire::get_string(b)
}

/// Appends a length-prefixed byte blob (u32 length).
pub fn put_bytes(data: &[u8], out: &mut BytesMut) {
    out.put_u32(data.len() as u32);
    out.put_slice(data);
}

/// Reads a length-prefixed byte blob.
///
/// # Errors
///
/// [`WireError`] on truncation.
pub fn get_bytes(b: &mut Bytes) -> Result<Bytes, WireError> {
    wire::get_bytes(b)
}

/// Appends a boolean as one byte.
pub fn put_bool(v: bool, out: &mut BytesMut) {
    out.put_u8(v as u8);
}

/// Reads a one-byte boolean.
///
/// # Errors
///
/// [`WireError`] on truncation.
pub fn get_bool(b: &mut Bytes) -> Result<bool, WireError> {
    wire::need(b, 1)?;
    Ok(b.get_u8() != 0)
}

/// Appends a flow match (presence bitmap + present fields).
pub fn put_flow_match(m: &FlowMatch, out: &mut BytesMut) {
    wire::encode_match(m, out);
}

/// Reads a flow match.
///
/// # Errors
///
/// [`WireError`] on truncation.
pub fn get_flow_match(b: &mut Bytes) -> Result<FlowMatch, WireError> {
    wire::decode_match(b)
}

/// Appends an action list (u16 count + tagged actions).
pub fn put_actions(actions: &ActionList, out: &mut BytesMut) {
    wire::encode_actions(actions, out);
}

/// Reads an action list.
///
/// # Errors
///
/// [`WireError`] on truncation or unknown action tags.
pub fn get_actions(b: &mut Bytes) -> Result<ActionList, WireError> {
    wire::decode_actions(b)
}

fn put_flow_mod_command(c: FlowModCommand, out: &mut BytesMut) {
    out.put_u8(match c {
        FlowModCommand::Add => 0,
        FlowModCommand::Modify => 1,
        FlowModCommand::ModifyStrict => 2,
        FlowModCommand::Delete => 3,
        FlowModCommand::DeleteStrict => 4,
    });
}

fn get_flow_mod_command(b: &mut Bytes) -> Result<FlowModCommand, WireError> {
    wire::need(b, 1)?;
    Ok(match b.get_u8() {
        0 => FlowModCommand::Add,
        1 => FlowModCommand::Modify,
        2 => FlowModCommand::ModifyStrict,
        3 => FlowModCommand::Delete,
        4 => FlowModCommand::DeleteStrict,
        _ => return Err(WireError::new("bad flow-mod command")),
    })
}

/// Appends a flow-mod (same field order as the wire codec's FLOW_MOD body).
pub fn put_flow_mod(fm: &FlowMod, out: &mut BytesMut) {
    put_flow_mod_command(fm.command, out);
    put_flow_match(&fm.flow_match, out);
    out.put_u16(fm.priority.0);
    put_actions(&fm.actions, out);
    out.put_u64(fm.cookie.0);
    out.put_u16(fm.idle_timeout);
    out.put_u16(fm.hard_timeout);
    put_bool(fm.notify_when_removed, out);
}

/// Reads a flow-mod.
///
/// # Errors
///
/// [`WireError`] on truncation or bad tags.
pub fn get_flow_mod(b: &mut Bytes) -> Result<FlowMod, WireError> {
    let command = get_flow_mod_command(b)?;
    let flow_match = get_flow_match(b)?;
    wire::need(b, 2)?;
    let priority = Priority(b.get_u16());
    let actions = get_actions(b)?;
    wire::need(b, 12)?;
    let cookie = Cookie(b.get_u64());
    let idle_timeout = b.get_u16();
    let hard_timeout = b.get_u16();
    let notify_when_removed = get_bool(b)?;
    Ok(FlowMod {
        command,
        flow_match,
        priority,
        actions,
        cookie,
        idle_timeout,
        hard_timeout,
        notify_when_removed,
    })
}

/// Appends a packet-out.
pub fn put_packet_out(po: &PacketOut, out: &mut BytesMut) {
    out.put_u32(po.buffer_id.0);
    out.put_u16(po.in_port.0);
    put_actions(&po.actions, out);
    put_bytes(&po.payload, out);
}

/// Reads a packet-out.
///
/// # Errors
///
/// [`WireError`] on truncation or bad tags.
pub fn get_packet_out(b: &mut Bytes) -> Result<PacketOut, WireError> {
    wire::need(b, 6)?;
    let buffer_id = BufferId(b.get_u32());
    let in_port = PortNo(b.get_u16());
    let actions = get_actions(b)?;
    let payload = get_bytes(b)?;
    Ok(PacketOut {
        buffer_id,
        in_port,
        actions,
        payload,
    })
}

/// Appends a stats request.
pub fn put_stats_request(req: &StatsRequest, out: &mut BytesMut) {
    match req {
        StatsRequest::Flow(m) => {
            out.put_u8(0);
            put_flow_match(m, out);
        }
        StatsRequest::Aggregate(m) => {
            out.put_u8(1);
            put_flow_match(m, out);
        }
        StatsRequest::Port(p) => {
            out.put_u8(2);
            out.put_u16(p.0);
        }
        StatsRequest::Table => out.put_u8(3),
    }
}

/// Reads a stats request.
///
/// # Errors
///
/// [`WireError`] on truncation or unknown kinds.
pub fn get_stats_request(b: &mut Bytes) -> Result<StatsRequest, WireError> {
    wire::need(b, 1)?;
    Ok(match b.get_u8() {
        0 => StatsRequest::Flow(get_flow_match(b)?),
        1 => StatsRequest::Aggregate(get_flow_match(b)?),
        2 => {
            wire::need(b, 2)?;
            StatsRequest::Port(PortNo(b.get_u16()))
        }
        3 => StatsRequest::Table,
        _ => return Err(WireError::new("bad stats-request kind")),
    })
}

/// Appends a full flow-table entry, counters and timestamps included — the
/// restore-exact form a flow-table snapshot needs (unlike `FlowStats`, which
/// is a read-API projection).
pub fn put_flow_entry(e: &FlowEntry, out: &mut BytesMut) {
    put_flow_match(&e.flow_match, out);
    out.put_u16(e.priority.0);
    put_actions(&e.actions, out);
    out.put_u64(e.cookie.0);
    out.put_u16(e.idle_timeout);
    out.put_u16(e.hard_timeout);
    put_bool(e.notify_when_removed, out);
    out.put_u64(e.installed_at);
    out.put_u64(e.last_hit_at);
    out.put_u64(e.packet_count);
    out.put_u64(e.byte_count);
}

/// Reads a full flow-table entry.
///
/// # Errors
///
/// [`WireError`] on truncation or bad tags.
pub fn get_flow_entry(b: &mut Bytes) -> Result<FlowEntry, WireError> {
    let flow_match = get_flow_match(b)?;
    wire::need(b, 2)?;
    let priority = Priority(b.get_u16());
    let actions = get_actions(b)?;
    wire::need(b, 45)?;
    Ok(FlowEntry {
        flow_match,
        priority,
        actions,
        cookie: Cookie(b.get_u64()),
        idle_timeout: b.get_u16(),
        hard_timeout: b.get_u16(),
        notify_when_removed: b.get_u8() != 0,
        installed_at: b.get_u64(),
        last_hit_at: b.get_u64(),
        packet_count: b.get_u64(),
        byte_count: b.get_u64(),
    })
}

/// Appends per-port counters.
pub fn put_port_stats(p: &PortStats, out: &mut BytesMut) {
    out.put_u16(p.port_no.0);
    out.put_u64(p.rx_packets);
    out.put_u64(p.tx_packets);
    out.put_u64(p.rx_bytes);
    out.put_u64(p.tx_bytes);
    out.put_u64(p.rx_dropped);
    out.put_u64(p.tx_dropped);
}

/// Reads per-port counters.
///
/// # Errors
///
/// [`WireError`] on truncation.
pub fn get_port_stats(b: &mut Bytes) -> Result<PortStats, WireError> {
    wire::need(b, 50)?;
    Ok(PortStats {
        port_no: PortNo(b.get_u16()),
        rx_packets: b.get_u64(),
        tx_packets: b.get_u64(),
        rx_bytes: b.get_u64(),
        tx_bytes: b.get_u64(),
        rx_dropped: b.get_u64(),
        tx_dropped: b.get_u64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::types::{EthAddr, Ipv4};

    #[test]
    fn flow_mod_roundtrip() {
        let fm = FlowMod::add(
            FlowMatch::default()
                .with_in_port(PortNo(4))
                .with_eth_src(EthAddr::from_u64(0xa))
                .with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16)
                .with_tp_dst(80),
            Priority(777),
            ActionList(vec![
                Action::SetIpDst(Ipv4::new(1, 2, 3, 4)),
                Action::Output(PortNo::FLOOD),
            ]),
        )
        .with_cookie(Cookie::with_owner(12, 99))
        .with_idle_timeout(30)
        .with_hard_timeout(300);
        let mut out = BytesMut::new();
        put_flow_mod(&fm, &mut out);
        let mut b = out.freeze();
        assert_eq!(get_flow_mod(&mut b).unwrap(), fm);
        assert!(b.is_empty());
    }

    #[test]
    fn flow_entry_roundtrip_preserves_counters() {
        let entry = FlowEntry {
            flow_match: FlowMatch::default().with_tp_dst(443),
            priority: Priority(9),
            actions: ActionList::output(PortNo(2)),
            cookie: Cookie::with_owner(3, 7),
            idle_timeout: 10,
            hard_timeout: 60,
            notify_when_removed: true,
            installed_at: 5,
            last_hit_at: 17,
            packet_count: 42,
            byte_count: 4200,
        };
        let mut out = BytesMut::new();
        put_flow_entry(&entry, &mut out);
        let mut b = out.freeze();
        assert_eq!(get_flow_entry(&mut b).unwrap(), entry);
        assert!(b.is_empty());
    }

    #[test]
    fn packet_out_and_stats_request_roundtrip() {
        let po = PacketOut {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo::NONE,
            actions: ActionList::output(PortNo(9)),
            payload: Bytes::from_static(b"payload"),
        };
        let mut out = BytesMut::new();
        put_packet_out(&po, &mut out);
        assert_eq!(get_packet_out(&mut out.freeze()).unwrap(), po);

        for req in [
            StatsRequest::Flow(FlowMatch::default().with_tp_dst(80)),
            StatsRequest::Aggregate(FlowMatch::any()),
            StatsRequest::Port(PortNo(3)),
            StatsRequest::Table,
        ] {
            let mut out = BytesMut::new();
            put_stats_request(&req, &mut out);
            assert_eq!(get_stats_request(&mut out.freeze()).unwrap(), req);
        }
    }

    #[test]
    fn primitives_roundtrip() {
        let mut out = BytesMut::new();
        put_string("hello", &mut out);
        put_bytes(b"blob", &mut out);
        put_bool(true, &mut out);
        put_bool(false, &mut out);
        let mut b = out.freeze();
        assert_eq!(get_string(&mut b).unwrap(), "hello");
        assert_eq!(get_bytes(&mut b).unwrap().as_ref(), b"blob");
        assert!(get_bool(&mut b).unwrap());
        assert!(!get_bool(&mut b).unwrap());
        assert!(b.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut b = Bytes::from_static(b"\x00\x05he");
        assert!(get_string(&mut b).is_err());
        let mut b = Bytes::from_static(b"\x00");
        assert!(get_flow_mod(&mut b).is_err());
    }
}
