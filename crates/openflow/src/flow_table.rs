//! The switch-side flow table: priority-ordered rule storage with OpenFlow
//! flow-mod semantics, lookup, timeouts and counters.
//!
//! # Storage layout
//!
//! Entries live in a slab (`slots`) and are reachable two ways:
//!
//! * an **exact-match index** keyed by `(flow_match, priority)` — the
//!   identity OpenFlow uses for Add-replace, `ModifyStrict` and
//!   `DeleteStrict` — making those commands O(1) instead of an O(n) scan;
//! * **priority buckets** (descending priority, insertion order within a
//!   bucket) that give `lookup` and `iter` the match order OpenFlow
//!   requires without re-sorting on every insert.
//!
//! Non-strict `Modify`/`Delete` match by subsumption over arbitrary entry
//! sets and remain O(n) by nature, as does timeout expiry.

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::actions::ActionList;
use crate::flow_match::FlowMatch;
use crate::messages::{
    AggregateStats, FlowMod, FlowModCommand, FlowRemovedReason, FlowStats, OfError, TableStats,
};
use crate::packet::EthernetFrame;
use crate::types::{Cookie, PortNo, Priority};

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// The match.
    pub flow_match: FlowMatch,
    /// The priority (higher wins).
    pub priority: Priority,
    /// Actions applied to matched packets.
    pub actions: ActionList,
    /// Opaque cookie (carries SDNShield app ownership).
    pub cookie: Cookie,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Whether removal should be notified.
    pub notify_when_removed: bool,
    /// Install time (virtual seconds).
    pub installed_at: u64,
    /// Last packet hit time (virtual seconds).
    pub last_hit_at: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

impl FlowEntry {
    fn from_mod(fm: &FlowMod, now: u64) -> Self {
        FlowEntry {
            flow_match: fm.flow_match.clone(),
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            notify_when_removed: fm.notify_when_removed,
            installed_at: now,
            last_hit_at: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// Seconds the entry has been installed as of `now`.
    pub fn duration_secs(&self, now: u64) -> u32 {
        now.saturating_sub(self.installed_at) as u32
    }

    fn to_stats(&self, now: u64) -> FlowStats {
        FlowStats {
            flow_match: self.flow_match.clone(),
            priority: self.priority,
            cookie: self.cookie,
            actions: self.actions.clone(),
            packet_count: self.packet_count,
            byte_count: self.byte_count,
            duration_secs: self.duration_secs(now),
        }
    }
}

/// A removed entry together with the reason, for flow-removed notifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedEntry {
    /// The entry at the moment of removal.
    pub entry: FlowEntry,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
}

/// The exact-match identity of an entry.
type ExactKey = (FlowMatch, Priority);

/// A priority-ordered flow table with OpenFlow 1.0 flow-mod semantics.
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::flow_table::FlowTable;
/// use sdnshield_openflow::flow_match::FlowMatch;
/// use sdnshield_openflow::messages::FlowMod;
/// use sdnshield_openflow::actions::ActionList;
/// use sdnshield_openflow::types::{PortNo, Priority};
///
/// let mut table = FlowTable::new(1024);
/// let fm = FlowMod::add(FlowMatch::any(), Priority(1), ActionList::output(PortNo(2)));
/// table.apply(&fm, 0)?;
/// assert_eq!(table.len(), 1);
/// # Ok::<(), sdnshield_openflow::messages::OfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable {
    /// Slab storage; `None` marks a free slot (recycled via `free`).
    ///
    /// Entries are individually `Arc`ed so [`FlowTable::snapshot`] can
    /// publish an immutable view with pointer clones instead of deep
    /// copies; in-place mutation goes through [`Arc::make_mut`], which
    /// only copies an entry still shared with a live snapshot.
    slots: Vec<Option<Arc<FlowEntry>>>,
    /// Recycled slot ids.
    free: Vec<usize>,
    /// `(match, priority)` → slot, for O(1) exact-identity commands.
    index: HashMap<ExactKey, usize>,
    /// Descending priority → slot ids in insertion order. The concatenation
    /// of the buckets is the table's match/iteration order.
    buckets: BTreeMap<Reverse<Priority>, Vec<usize>>,
    len: usize,
    capacity: usize,
    lookup_count: u64,
    matched_count: u64,
}

impl FlowTable {
    /// Creates a table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        FlowTable {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            buckets: BTreeMap::new(),
            len: 0,
            capacity,
            lookup_count: 0,
            matched_count: 0,
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over installed entries in priority order (highest first;
    /// insertion order within a priority).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> + '_ {
        self.buckets
            .values()
            .flatten()
            .map(|&i| self.slots[i].as_deref().expect("bucketed slot occupied"))
    }

    /// Slot ids in match order whose entries satisfy `pred`.
    fn collect_matching(&self, mut pred: impl FnMut(&FlowEntry) -> bool) -> Vec<usize> {
        self.buckets
            .values()
            .flatten()
            .copied()
            .filter(|&i| self.slots[i].as_deref().is_some_and(&mut pred))
            .collect()
    }

    /// Removes the given slots (with per-slot reasons), returning the
    /// entries in the order given.
    fn remove_slots(&mut self, ids: &[(usize, FlowRemovedReason)]) -> Vec<RemovedEntry> {
        if ids.is_empty() {
            return Vec::new();
        }
        let mut removed = Vec::with_capacity(ids.len());
        for &(i, reason) in ids {
            let entry = self.slots[i].take().expect("removing occupied slot");
            self.index
                .remove(&(entry.flow_match.clone(), entry.priority));
            self.free.push(i);
            self.len -= 1;
            // Unshared entries move out for free; an entry still pinned by
            // a snapshot is cloned.
            let entry = Arc::try_unwrap(entry).unwrap_or_else(|shared| (*shared).clone());
            removed.push(RemovedEntry { entry, reason });
        }
        let gone: std::collections::HashSet<usize> = ids.iter().map(|&(i, _)| i).collect();
        self.buckets.retain(|_, v| {
            v.retain(|i| !gone.contains(i));
            !v.is_empty()
        });
        removed
    }

    fn remove_where<F: FnMut(&FlowEntry) -> bool>(
        &mut self,
        pred: F,
        reason: FlowRemovedReason,
    ) -> Vec<RemovedEntry> {
        let ids: Vec<(usize, FlowRemovedReason)> = self
            .collect_matching(pred)
            .into_iter()
            .map(|i| (i, reason))
            .collect();
        self.remove_slots(&ids)
    }

    /// Inserts an entry into a fresh slot, indexing it.
    fn insert_entry(&mut self, entry: FlowEntry) {
        let key = (entry.flow_match.clone(), entry.priority);
        let priority = entry.priority;
        let entry = Arc::new(entry);
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(entry);
                i
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.buckets
            .entry(Reverse(priority))
            .or_default()
            .push(slot);
        self.len += 1;
    }

    /// Applies a flow-mod at virtual time `now`, returning entries removed by
    /// delete commands.
    ///
    /// # Errors
    ///
    /// Returns [`OfError::TableFull`] when an add would exceed capacity.
    pub fn apply(&mut self, fm: &FlowMod, now: u64) -> Result<Vec<RemovedEntry>, OfError> {
        match fm.command {
            FlowModCommand::Add => {
                // OpenFlow replaces an identical (match, priority) entry in
                // place: one index probe, no scan, bucket position retained.
                if let Some(&slot) = self.index.get(&(fm.flow_match.clone(), fm.priority)) {
                    self.slots[slot] = Some(Arc::new(FlowEntry::from_mod(fm, now)));
                    return Ok(Vec::new());
                }
                if self.len >= self.capacity {
                    return Err(OfError::TableFull);
                }
                self.insert_entry(FlowEntry::from_mod(fm, now));
                Ok(Vec::new())
            }
            FlowModCommand::Modify => {
                let targets = self.collect_matching(|e| fm.flow_match.subsumes(&e.flow_match));
                if targets.is_empty() {
                    // Per OF 1.0, modify with no match behaves like add.
                    return self.apply(
                        &FlowMod {
                            command: FlowModCommand::Add,
                            ..fm.clone()
                        },
                        now,
                    );
                }
                for i in targets {
                    let e = Arc::make_mut(self.slots[i].as_mut().expect("matched slot occupied"));
                    e.actions = fm.actions.clone();
                    e.cookie = fm.cookie;
                }
                Ok(Vec::new())
            }
            FlowModCommand::ModifyStrict => {
                match self.index.get(&(fm.flow_match.clone(), fm.priority)) {
                    Some(&slot) => {
                        let e = Arc::make_mut(
                            self.slots[slot].as_mut().expect("indexed slot occupied"),
                        );
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        Ok(Vec::new())
                    }
                    None => self.apply(
                        &FlowMod {
                            command: FlowModCommand::Add,
                            ..fm.clone()
                        },
                        now,
                    ),
                }
            }
            FlowModCommand::Delete => Ok(self.remove_where(
                |e| fm.flow_match.subsumes(&e.flow_match),
                FlowRemovedReason::Delete,
            )),
            FlowModCommand::DeleteStrict => {
                let ids: Vec<(usize, FlowRemovedReason)> = self
                    .index
                    .get(&(fm.flow_match.clone(), fm.priority))
                    .map(|&slot| (slot, FlowRemovedReason::Delete))
                    .into_iter()
                    .collect();
                Ok(self.remove_slots(&ids))
            }
        }
    }

    /// Removes every entry whose cookie carries the given owner id. Used to
    /// reclaim a crashed app's rules without knowing its matches.
    pub fn remove_owned_by(&mut self, owner: u16) -> Vec<RemovedEntry> {
        self.remove_where(|e| e.cookie.owner() == owner, FlowRemovedReason::Delete)
    }

    /// Looks up the highest-priority entry matching the frame and updates its
    /// counters. Returns a borrow of the matched entry — callers that need
    /// to retain it across further table mutation clone explicitly.
    pub fn lookup(
        &mut self,
        in_port: PortNo,
        frame: &EthernetFrame,
        byte_len: usize,
        now: u64,
    ) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let slot = self.buckets.values().flatten().copied().find(|&i| {
            self.slots[i]
                .as_deref()
                .is_some_and(|e| e.flow_match.matches_frame(in_port, frame))
        })?;
        self.matched_count += 1;
        let hit = Arc::make_mut(self.slots[slot].as_mut().expect("matched slot occupied"));
        hit.packet_count += 1;
        hit.byte_count += byte_len as u64;
        hit.last_hit_at = now;
        Some(&*hit)
    }

    /// Expires entries whose idle or hard timeout has passed at `now`,
    /// returning them with the appropriate reason.
    pub fn expire(&mut self, now: u64) -> Vec<RemovedEntry> {
        let due: Vec<(usize, FlowRemovedReason)> = self
            .buckets
            .values()
            .flatten()
            .copied()
            .filter_map(|i| {
                let e = self.slots[i].as_deref()?;
                let hard = e.hard_timeout != 0 && now >= e.installed_at + e.hard_timeout as u64;
                let idle = e.idle_timeout != 0 && now >= e.last_hit_at + e.idle_timeout as u64;
                if hard {
                    Some((i, FlowRemovedReason::HardTimeout))
                } else if idle {
                    Some((i, FlowRemovedReason::IdleTimeout))
                } else {
                    None
                }
            })
            .collect();
        self.remove_slots(&due)
    }

    /// Per-flow stats for entries subsumed by `query`.
    pub fn flow_stats(&self, query: &FlowMatch, now: u64) -> Vec<FlowStats> {
        self.iter()
            .filter(|e| query.subsumes(&e.flow_match))
            .map(|e| e.to_stats(now))
            .collect()
    }

    /// Aggregate stats over entries subsumed by `query`.
    pub fn aggregate_stats(&self, query: &FlowMatch) -> AggregateStats {
        let mut agg = AggregateStats::default();
        for e in self.iter().filter(|e| query.subsumes(&e.flow_match)) {
            agg.packet_count += e.packet_count;
            agg.byte_count += e.byte_count;
            agg.flow_count += 1;
        }
        agg
    }

    /// Table-level counters.
    pub fn table_stats(&self) -> TableStats {
        TableStats {
            active_count: self.len as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
            max_entries: self.capacity as u32,
        }
    }

    /// Count of entries owned by the given cookie owner id.
    pub fn count_owned_by(&self, owner: u16) -> usize {
        self.iter().filter(|e| e.cookie.owner() == owner).count()
    }

    /// Publishes an immutable point-in-time view of the table: entries in
    /// [`FlowTable::iter`] order plus the table-level counters. Costs one
    /// `Arc` clone per entry — no deep copies — so a writer can republish
    /// after every mutation batch and readers answer stats queries without
    /// ever taking the table's lock.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            entries: self
                .buckets
                .values()
                .flatten()
                .map(|&i| self.slots[i].clone().expect("bucketed slot occupied"))
                .collect(),
            capacity: self.capacity,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
        }
    }

    /// Rebuilds a table from a snapshot: entries in [`FlowTable::iter`]
    /// order plus the table-level counters. Inserting in the given order
    /// reconstructs the per-priority insertion order exactly, so the
    /// restored table iterates (and therefore matches ties) identically to
    /// the one snapshotted. Entries beyond `capacity` are discarded — a
    /// well-formed snapshot never carries more than its own capacity.
    pub fn restore(
        capacity: usize,
        entries: Vec<FlowEntry>,
        lookup_count: u64,
        matched_count: u64,
    ) -> Self {
        let mut table = FlowTable::new(capacity);
        for entry in entries.into_iter().take(capacity) {
            table.insert_entry(entry);
        }
        table.lookup_count = lookup_count;
        table.matched_count = matched_count;
        table
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow_table[{}/{} entries]", self.len(), self.capacity)
    }
}

/// An immutable point-in-time view of a [`FlowTable`].
///
/// Holds `Arc` clones of the entries (match order preserved), so building
/// and cloning a snapshot never deep-copies matches or action lists. All
/// read-side queries — [`flow_stats`](TableSnapshot::flow_stats),
/// [`aggregate_stats`](TableSnapshot::aggregate_stats),
/// [`table_stats`](TableSnapshot::table_stats),
/// [`count_owned_by`](TableSnapshot::count_owned_by) — answer exactly as
/// the source table would have at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct TableSnapshot {
    /// Entries in [`FlowTable::iter`] order.
    entries: Vec<Arc<FlowEntry>>,
    capacity: usize,
    lookup_count: u64,
    matched_count: u64,
}

impl TableSnapshot {
    /// An empty view of a table with the given capacity.
    pub fn empty(capacity: usize) -> TableSnapshot {
        TableSnapshot {
            capacity,
            ..TableSnapshot::default()
        }
    }

    /// Number of entries at snapshot time.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity of the snapshotted table.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates entries in the source table's match order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> + '_ {
        self.entries.iter().map(Arc::as_ref)
    }

    /// Per-flow stats for entries subsumed by `query` (see
    /// [`FlowTable::flow_stats`]).
    pub fn flow_stats(&self, query: &FlowMatch, now: u64) -> Vec<FlowStats> {
        self.iter()
            .filter(|e| query.subsumes(&e.flow_match))
            .map(|e| e.to_stats(now))
            .collect()
    }

    /// Aggregate stats over entries subsumed by `query` (see
    /// [`FlowTable::aggregate_stats`]).
    pub fn aggregate_stats(&self, query: &FlowMatch) -> AggregateStats {
        let mut agg = AggregateStats::default();
        for e in self.iter().filter(|e| query.subsumes(&e.flow_match)) {
            agg.packet_count += e.packet_count;
            agg.byte_count += e.byte_count;
            agg.flow_count += 1;
        }
        agg
    }

    /// Table-level counters at snapshot time.
    pub fn table_stats(&self) -> TableStats {
        TableStats {
            active_count: self.entries.len() as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
            max_entries: self.capacity as u32,
        }
    }

    /// Count of entries owned by the given cookie owner id.
    pub fn count_owned_by(&self, owner: u16) -> usize {
        self.iter().filter(|e| e.cookie.owner() == owner).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;
    use crate::types::{EthAddr, Ipv4};
    use bytes::Bytes;

    fn frame_to(dst: Ipv4, port: u16) -> EthernetFrame {
        EthernetFrame::tcp(
            EthAddr::from_u64(1),
            EthAddr::from_u64(2),
            Ipv4::new(1, 1, 1, 1),
            dst,
            50000,
            port,
            TcpFlags::default(),
            Bytes::new(),
        )
    }

    fn add(m: FlowMatch, prio: u16, out: u16) -> FlowMod {
        FlowMod::add(m, Priority(prio), ActionList::output(PortNo(out)))
    }

    #[test]
    fn add_and_lookup_by_priority() {
        let mut t = FlowTable::new(16);
        t.apply(&add(FlowMatch::any(), 1, 1), 0).unwrap();
        t.apply(
            &add(
                FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8),
                100,
                2,
            ),
            0,
        )
        .unwrap();
        let hit = t
            .lookup(PortNo(1), &frame_to(Ipv4::new(10, 1, 2, 3), 80), 64, 1)
            .unwrap();
        assert_eq!(hit.actions, ActionList::output(PortNo(2)));
        let miss_to_low = t
            .lookup(PortNo(1), &frame_to(Ipv4::new(192, 168, 0, 1), 80), 64, 1)
            .unwrap();
        assert_eq!(miss_to_low.actions, ActionList::output(PortNo(1)));
    }

    #[test]
    fn add_replaces_identical_entry() {
        let mut t = FlowTable::new(16);
        let m = FlowMatch::default().with_tp_dst(80);
        t.apply(&add(m.clone(), 5, 1), 0).unwrap();
        t.apply(&add(m.clone(), 5, 9), 0).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.iter().next().unwrap().actions,
            ActionList::output(PortNo(9))
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut t = FlowTable::new(2);
        t.apply(&add(FlowMatch::default().with_tp_dst(1), 1, 1), 0)
            .unwrap();
        t.apply(&add(FlowMatch::default().with_tp_dst(2), 1, 1), 0)
            .unwrap();
        let err = t
            .apply(&add(FlowMatch::default().with_tp_dst(3), 1, 1), 0)
            .unwrap_err();
        assert_eq!(err, OfError::TableFull);
    }

    #[test]
    fn capacity_reusable_after_delete() {
        let mut t = FlowTable::new(2);
        t.apply(&add(FlowMatch::default().with_tp_dst(1), 1, 1), 0)
            .unwrap();
        t.apply(&add(FlowMatch::default().with_tp_dst(2), 1, 1), 0)
            .unwrap();
        let removed = t
            .apply(&FlowMod::delete(FlowMatch::default().with_tp_dst(1)), 1)
            .unwrap();
        assert_eq!(removed.len(), 1);
        // The freed slot is reusable.
        t.apply(&add(FlowMatch::default().with_tp_dst(3), 1, 1), 1)
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_by_subsumption() {
        let mut t = FlowTable::new(16);
        t.apply(
            &add(
                FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16),
                5,
                1,
            ),
            0,
        )
        .unwrap();
        t.apply(
            &add(
                FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 16),
                5,
                1,
            ),
            0,
        )
        .unwrap();
        let removed = t
            .apply(
                &FlowMod::delete(
                    FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16),
                ),
                1,
            )
            .unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        // Deleting with the all-wildcard match clears the table.
        let removed = t.apply(&FlowMod::delete(FlowMatch::any()), 2).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_strict_requires_exact_priority() {
        let mut t = FlowTable::new(16);
        let m = FlowMatch::default().with_tp_dst(80);
        t.apply(&add(m.clone(), 5, 1), 0).unwrap();
        let mut del = FlowMod::delete(m.clone());
        del.command = FlowModCommand::DeleteStrict;
        del.priority = Priority(6);
        assert!(t.apply(&del, 1).unwrap().is_empty());
        del.priority = Priority(5);
        assert_eq!(t.apply(&del, 1).unwrap().len(), 1);
    }

    #[test]
    fn modify_rewrites_actions_preserving_counters() {
        let mut t = FlowTable::new(16);
        let m = FlowMatch::default().with_tp_dst(80);
        t.apply(&add(m.clone(), 5, 1), 0).unwrap();
        t.lookup(PortNo(1), &frame_to(Ipv4::new(9, 9, 9, 9), 80), 100, 1);
        let mut modify = add(m.clone(), 5, 7);
        modify.command = FlowModCommand::Modify;
        t.apply(&modify, 2).unwrap();
        let e = t.iter().next().unwrap();
        assert_eq!(e.actions, ActionList::output(PortNo(7)));
        assert_eq!(e.packet_count, 1, "modify must keep counters");
    }

    #[test]
    fn modify_strict_rewrites_only_exact_identity() {
        let mut t = FlowTable::new(16);
        let m = FlowMatch::default().with_tp_dst(80);
        t.apply(&add(m.clone(), 5, 1), 0).unwrap();
        t.apply(&add(m.clone(), 6, 2), 0).unwrap();
        let mut modify = add(m.clone(), 5, 9);
        modify.command = FlowModCommand::ModifyStrict;
        t.apply(&modify, 1).unwrap();
        let actions: Vec<_> = t.iter().map(|e| e.actions.clone()).collect();
        assert_eq!(
            actions,
            vec![ActionList::output(PortNo(2)), ActionList::output(PortNo(9))],
            "only the priority-5 entry rewritten"
        );
    }

    #[test]
    fn modify_without_match_adds() {
        let mut t = FlowTable::new(16);
        let mut modify = add(FlowMatch::default().with_tp_dst(443), 5, 7);
        modify.command = FlowModCommand::Modify;
        t.apply(&modify, 0).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn idle_and_hard_timeouts() {
        let mut t = FlowTable::new(16);
        let idle = add(FlowMatch::default().with_tp_dst(1), 5, 1).with_idle_timeout(10);
        let hard = add(FlowMatch::default().with_tp_dst(2), 5, 1).with_hard_timeout(20);
        t.apply(&idle, 0).unwrap();
        t.apply(&hard, 0).unwrap();
        assert!(t.expire(5).is_empty());
        // Keep the idle entry alive with traffic.
        t.lookup(PortNo(1), &frame_to(Ipv4::new(9, 9, 9, 9), 1), 64, 9);
        let removed = t.expire(15);
        assert!(removed.is_empty(), "idle refreshed at t=9, hard not due");
        let removed = t.expire(20);
        assert_eq!(removed.len(), 2);
        let reasons: Vec<_> = removed.iter().map(|r| r.reason).collect();
        assert!(reasons.contains(&FlowRemovedReason::IdleTimeout));
        assert!(reasons.contains(&FlowRemovedReason::HardTimeout));
    }

    #[test]
    fn stats_queries() {
        let mut t = FlowTable::new(16);
        t.apply(
            &add(
                FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16),
                5,
                1,
            ),
            0,
        )
        .unwrap();
        t.apply(&add(FlowMatch::default().with_tp_dst(22), 5, 1), 0)
            .unwrap();
        t.lookup(PortNo(1), &frame_to(Ipv4::new(10, 13, 1, 1), 80), 150, 1);
        let all = t.flow_stats(&FlowMatch::any(), 2);
        assert_eq!(all.len(), 2);
        let sub = t.flow_stats(
            &FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8),
            2,
        );
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].packet_count, 1);
        assert_eq!(sub[0].byte_count, 150);
        let agg = t.aggregate_stats(&FlowMatch::any());
        assert_eq!(agg.flow_count, 2);
        assert_eq!(agg.byte_count, 150);
        let ts = t.table_stats();
        assert_eq!(ts.active_count, 2);
        assert_eq!(ts.lookup_count, 1);
        assert_eq!(ts.matched_count, 1);
    }

    #[test]
    fn ownership_counting() {
        let mut t = FlowTable::new(16);
        for (i, owner) in [(1u16, 7u16), (2, 7), (3, 8)] {
            let fm = add(FlowMatch::default().with_tp_dst(i), 5, 1)
                .with_cookie(Cookie::with_owner(owner, 0));
            t.apply(&fm, 0).unwrap();
        }
        assert_eq!(t.count_owned_by(7), 2);
        assert_eq!(t.count_owned_by(8), 1);
        assert_eq!(t.count_owned_by(9), 0);
    }

    #[test]
    fn iteration_order_stable_within_priority() {
        let mut t = FlowTable::new(16);
        for port in [10u16, 20, 30] {
            t.apply(&add(FlowMatch::default().with_tp_dst(port), 5, port), 0)
                .unwrap();
        }
        t.apply(&add(FlowMatch::default().with_tp_dst(99), 9, 99), 0)
            .unwrap();
        let order: Vec<u16> = t.iter().map(|e| e.flow_match.tp_dst.unwrap()).collect();
        assert_eq!(order, vec![99, 10, 20, 30]);
        // Deleting the middle one preserves the rest of the order.
        let mut del = FlowMod::delete(FlowMatch::default().with_tp_dst(20));
        del.command = FlowModCommand::DeleteStrict;
        del.priority = Priority(5);
        t.apply(&del, 1).unwrap();
        let order: Vec<u16> = t.iter().map(|e| e.flow_match.tp_dst.unwrap()).collect();
        assert_eq!(order, vec![99, 10, 30]);
    }
}
