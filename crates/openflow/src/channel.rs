//! A framed control channel: the byte-stream layer between a switch and the
//! controller, carrying [`wire`]-encoded messages.
//!
//! The simulator normally moves structured messages; this codec exists for
//! the substrate's completeness (a real deployment would speak it over TCP)
//! and is exercised by tests to guarantee that a message stream survives
//! arbitrary fragmentation — frames arriving byte-by-byte decode the same
//! as frames arriving in one burst.

use bytes::{Buf, Bytes, BytesMut};

use crate::messages::OfMessage;
use crate::wire::{self, WireError};

/// Incremental decoder for a stream of wire frames.
///
/// Feed arbitrary chunks with [`FrameDecoder::feed`]; complete messages pop
/// out of [`FrameDecoder::next_message`].
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::channel::FrameDecoder;
/// use sdnshield_openflow::messages::{OfBody, OfMessage};
/// use sdnshield_openflow::types::Xid;
/// use sdnshield_openflow::wire;
///
/// let msg = OfMessage::new(Xid(7), OfBody::Hello);
/// let bytes = wire::encode(&msg);
///
/// let mut decoder = FrameDecoder::new();
/// // Deliver one byte at a time — still decodes.
/// for b in bytes.iter() {
///     decoder.feed(&[*b]);
/// }
/// assert_eq!(decoder.next_message()?, Some(msg));
/// assert_eq!(decoder.next_message()?, None);
/// # Ok::<(), sdnshield_openflow::wire::WireError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buffer: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buffer.extend_from_slice(chunk);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Pops the next complete message, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the stream is corrupt; the stream is then
    /// unrecoverable (framing is length-prefixed, so a bad header poisons
    /// everything after it) and the caller should drop the channel.
    pub fn next_message(&mut self) -> Result<Option<OfMessage>, WireError> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        // Header: version(1) type(1) length(2 BE).
        let len = u16::from_be_bytes([self.buffer[2], self.buffer[3]]) as usize;
        if len < 8 {
            return Err(wire::decode(Bytes::new()).unwrap_err());
        }
        if self.buffer.len() < len {
            return Ok(None);
        }
        let frame = self.buffer.split_to(len).freeze();
        wire::decode(frame).map(Some)
    }

    /// Drains every complete message currently buffered.
    ///
    /// # Errors
    ///
    /// As [`FrameDecoder::next_message`].
    pub fn drain(&mut self) -> Result<Vec<OfMessage>, WireError> {
        let mut out = Vec::new();
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(out)
    }
}

/// Encodes a batch of messages into one contiguous stream buffer.
pub fn encode_stream(messages: &[OfMessage]) -> Bytes {
    let mut buf = BytesMut::new();
    for m in messages {
        buf.extend_from_slice(&wire::encode(m));
    }
    buf.freeze()
}

/// Splits a stream buffer back into messages (one-shot convenience over
/// [`FrameDecoder`]).
///
/// # Errors
///
/// [`WireError`] on corrupt framing or trailing garbage.
pub fn decode_stream(mut stream: Bytes) -> Result<Vec<OfMessage>, WireError> {
    let mut decoder = FrameDecoder::new();
    decoder.feed(&stream.copy_to_bytes(stream.len()));
    let out = decoder.drain()?;
    if decoder.buffered() != 0 {
        // Truncated trailing frame.
        return Err(wire::decode(Bytes::new()).unwrap_err());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionList;
    use crate::flow_match::FlowMatch;
    use crate::messages::{FlowMod, OfBody};
    use crate::types::{PortNo, Priority, Xid};

    fn sample_messages() -> Vec<OfMessage> {
        vec![
            OfMessage::new(Xid(1), OfBody::Hello),
            OfMessage::new(
                Xid(2),
                OfBody::FlowMod(FlowMod::add(
                    FlowMatch::default().with_tp_dst(80),
                    Priority(5),
                    ActionList::output(PortNo(3)),
                )),
            ),
            OfMessage::new(Xid(3), OfBody::BarrierRequest),
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs);
        assert_eq!(decode_stream(stream).unwrap(), msgs);
    }

    #[test]
    fn fragmentation_independent() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs);
        for chunk_size in [1usize, 2, 3, 7, 16, 64] {
            let mut decoder = FrameDecoder::new();
            let mut decoded = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                decoder.feed(chunk);
                decoded.extend(decoder.drain().unwrap());
            }
            assert_eq!(decoded, msgs, "chunk size {chunk_size}");
            assert_eq!(decoder.buffered(), 0);
        }
    }

    #[test]
    fn incomplete_frame_waits() {
        let msgs = sample_messages();
        let stream = encode_stream(&msgs[..1]);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&stream[..stream.len() - 1]);
        assert_eq!(decoder.next_message().unwrap(), None);
        decoder.feed(&stream[stream.len() - 1..]);
        assert_eq!(decoder.next_message().unwrap(), Some(msgs[0].clone()));
    }

    #[test]
    fn corrupt_length_poisons_stream() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&[0x01, 0x00, 0x00, 0x03]); // length 3 < header size
        assert!(decoder.next_message().is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut stream = encode_stream(&sample_messages()).to_vec();
        stream.extend_from_slice(&[0x01, 0x00]); // half a header
        assert!(decode_stream(Bytes::from(stream)).is_err());
    }
}
