//! OpenFlow actions applied to matched packets.

use std::fmt;

use crate::types::{EthAddr, Ipv4, PortNo};

/// A single OpenFlow 1.0-style action.
///
/// An empty action list means *drop*; [`Action::is_forwarding`] and friends
/// classify actions the way SDNShield's action filters need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward the packet out a port (possibly a reserved port such as
    /// [`PortNo::FLOOD`] or [`PortNo::CONTROLLER`]).
    Output(PortNo),
    /// Rewrite the Ethernet source address.
    SetEthSrc(EthAddr),
    /// Rewrite the Ethernet destination address.
    SetEthDst(EthAddr),
    /// Rewrite the IPv4 source address.
    SetIpSrc(Ipv4),
    /// Rewrite the IPv4 destination address.
    SetIpDst(Ipv4),
    /// Rewrite the transport-layer source port.
    SetTpSrc(u16),
    /// Rewrite the transport-layer destination port.
    SetTpDst(u16),
    /// Set the VLAN id (pushes a tag if absent).
    SetVlan(u16),
    /// Strip the VLAN tag.
    StripVlan,
    /// Enqueue on a port's QoS queue.
    Enqueue {
        /// Output port.
        port: PortNo,
        /// Queue id on that port.
        queue_id: u32,
    },
}

impl Action {
    /// Does this action forward the packet somewhere?
    pub fn is_forwarding(&self) -> bool {
        matches!(self, Action::Output(_) | Action::Enqueue { .. })
    }

    /// Does this action rewrite a header field?
    ///
    /// Header rewrites are what dynamic-flow tunneling (attack Class 4)
    /// abuses, so SDNShield's `MODIFY` action filter keys off this.
    pub fn is_modifying(&self) -> bool {
        matches!(
            self,
            Action::SetEthSrc(_)
                | Action::SetEthDst(_)
                | Action::SetIpSrc(_)
                | Action::SetIpDst(_)
                | Action::SetTpSrc(_)
                | Action::SetTpDst(_)
                | Action::SetVlan(_)
                | Action::StripVlan
        )
    }

    /// The field name this action modifies, if any.
    pub fn modified_field(&self) -> Option<&'static str> {
        match self {
            Action::SetEthSrc(_) => Some("eth_src"),
            Action::SetEthDst(_) => Some("eth_dst"),
            Action::SetIpSrc(_) => Some("ip_src"),
            Action::SetIpDst(_) => Some("ip_dst"),
            Action::SetTpSrc(_) => Some("tp_src"),
            Action::SetTpDst(_) => Some("tp_dst"),
            Action::SetVlan(_) | Action::StripVlan => Some("vlan"),
            _ => None,
        }
    }

    /// The output port, when the action forwards.
    pub fn output_port(&self) -> Option<PortNo> {
        match self {
            Action::Output(p) => Some(*p),
            Action::Enqueue { port, .. } => Some(*port),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output({p})"),
            Action::SetEthSrc(a) => write!(f, "set_eth_src({a})"),
            Action::SetEthDst(a) => write!(f, "set_eth_dst({a})"),
            Action::SetIpSrc(a) => write!(f, "set_ip_src({a})"),
            Action::SetIpDst(a) => write!(f, "set_ip_dst({a})"),
            Action::SetTpSrc(p) => write!(f, "set_tp_src({p})"),
            Action::SetTpDst(p) => write!(f, "set_tp_dst({p})"),
            Action::SetVlan(v) => write!(f, "set_vlan({v})"),
            Action::StripVlan => write!(f, "strip_vlan"),
            Action::Enqueue { port, queue_id } => write!(f, "enqueue({port},q{queue_id})"),
        }
    }
}

/// An ordered list of actions; empty means drop.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ActionList(pub Vec<Action>);

impl ActionList {
    /// The empty (drop) action list.
    pub fn drop() -> Self {
        ActionList(Vec::new())
    }

    /// A single-output forwarding list.
    pub fn output(port: PortNo) -> Self {
        ActionList(vec![Action::Output(port)])
    }

    /// Does the list drop the packet (no forwarding action at all)?
    pub fn is_drop(&self) -> bool {
        !self.0.iter().any(Action::is_forwarding)
    }

    /// Does the list contain any header-modifying action?
    pub fn modifies_headers(&self) -> bool {
        self.0.iter().any(Action::is_modifying)
    }

    /// All ports the list outputs to.
    pub fn output_ports(&self) -> impl Iterator<Item = PortNo> + '_ {
        self.0.iter().filter_map(Action::output_port)
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.0.iter()
    }
}

impl FromIterator<Action> for ActionList {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        ActionList(iter.into_iter().collect())
    }
}

impl Extend<Action> for ActionList {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.0.extend(iter)
    }
}

impl IntoIterator for ActionList {
    type Item = Action;
    type IntoIter = std::vec::IntoIter<Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a ActionList {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for ActionList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "drop");
        }
        let mut sep = "";
        for a in &self.0 {
            write!(f, "{sep}{a}")?;
            sep = ",";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list_is_drop() {
        assert!(ActionList::drop().is_drop());
        assert!(!ActionList::output(PortNo(1)).is_drop());
        // A list with only header rewrites still drops.
        let l: ActionList = [Action::SetVlan(5)].into_iter().collect();
        assert!(l.is_drop());
        assert!(l.modifies_headers());
    }

    #[test]
    fn classification() {
        assert!(Action::Output(PortNo::FLOOD).is_forwarding());
        assert!(!Action::Output(PortNo(1)).is_modifying());
        assert!(Action::SetIpDst(Ipv4::new(1, 2, 3, 4)).is_modifying());
        assert_eq!(
            Action::SetIpDst(Ipv4::new(1, 2, 3, 4)).modified_field(),
            Some("ip_dst")
        );
        assert_eq!(Action::StripVlan.modified_field(), Some("vlan"));
        assert_eq!(Action::Output(PortNo(2)).modified_field(), None);
    }

    #[test]
    fn output_ports_iteration() {
        let l: ActionList = [
            Action::SetVlan(9),
            Action::Output(PortNo(1)),
            Action::Enqueue {
                port: PortNo(2),
                queue_id: 0,
            },
        ]
        .into_iter()
        .collect();
        let ports: Vec<_> = l.output_ports().collect();
        assert_eq!(ports, vec![PortNo(1), PortNo(2)]);
    }

    #[test]
    fn display() {
        let l = ActionList::output(PortNo(3));
        assert_eq!(l.to_string(), "output(port:3)");
        assert_eq!(ActionList::drop().to_string(), "drop");
    }
}
