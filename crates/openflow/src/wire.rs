//! Binary wire encoding of control-channel messages.
//!
//! The framing follows the OpenFlow spirit — a fixed header
//! `(version, type, length, xid)` followed by a type-specific body — but is a
//! simplified self-consistent codec rather than a byte-exact OpenFlow 1.0
//! implementation: the simulator is both producer and consumer. Round-trip
//! fidelity (`decode(encode(m)) == m`) is the contract, enforced by unit and
//! property tests.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

use crate::actions::{Action, ActionList};
use crate::flow_match::{FlowMatch, MaskedIpv4};
use crate::messages::*;
use crate::types::*;

/// Protocol version byte stamped on every frame.
pub const WIRE_VERSION: u8 = 0x01;

/// Error returned when decoding a wire frame fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    reason: &'static str,
}

impl WireError {
    pub(crate) fn new(reason: &'static str) -> Self {
        WireError { reason }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire frame: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

/// Message-type codes as they appear in the frame header's second byte.
/// Public so stream-level consumers (the southbound reactor, external load
/// generators) can classify hot-path frames without a full body decode.
#[allow(missing_docs)]
pub mod msg_type {
    pub const HELLO: u8 = 0;
    pub const ECHO_REQUEST: u8 = 1;
    pub const ECHO_REPLY: u8 = 2;
    pub const FEATURES_REQUEST: u8 = 3;
    pub const FEATURES_REPLY: u8 = 4;
    pub const PACKET_IN: u8 = 5;
    pub const PACKET_OUT: u8 = 6;
    pub const FLOW_MOD: u8 = 7;
    pub const FLOW_REMOVED: u8 = 8;
    pub const PORT_STATUS: u8 = 9;
    pub const STATS_REQUEST: u8 = 10;
    pub const STATS_REPLY: u8 = 11;
    pub const ERROR: u8 = 12;
    pub const BARRIER_REQUEST: u8 = 13;
    pub const BARRIER_REPLY: u8 = 14;
}

/// Fixed frame header size: version(1) type(1) length(2) xid(4).
pub const HEADER_LEN: usize = 8;

/// Is `ty` a message-type code this codec understands? Unknown codes are
/// skippable over a stream (the length header self-delimits the frame), so
/// stream decoders use this to hop over frames from newer peers instead of
/// desyncing.
pub fn is_known_type(ty: u8) -> bool {
    ty <= msg_type::BARRIER_REPLY
}

/// Encodes a message into a self-delimiting wire frame.
pub fn encode(msg: &OfMessage) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    let ty = encode_body(&msg.body, &mut body);
    let mut frame = BytesMut::with_capacity(body.len() + HEADER_LEN);
    frame.put_u8(WIRE_VERSION);
    frame.put_u8(ty);
    frame.put_u16((body.len() + HEADER_LEN) as u16);
    frame.put_u32(msg.xid.0);
    frame.put_slice(&body);
    frame.freeze()
}

/// Appends a message's wire frame to `out` without any intermediate
/// allocation — the header is written as a placeholder, the body encoded
/// directly into `out`, and the type/length fields backpatched. The hot
/// egress path reuses one scratch `Vec` across frames, so steady-state
/// encoding performs zero per-message heap allocations once the buffer has
/// grown to its working size.
///
/// Returns the number of bytes appended.
///
/// # Panics
///
/// Panics when the encoded frame exceeds the `u16` length field (bodies
/// are bounded well below that by construction).
pub fn encode_into(msg: &OfMessage, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[WIRE_VERSION, 0, 0, 0]);
    out.extend_from_slice(&msg.xid.0.to_be_bytes());
    let ty = encode_body(&msg.body, out);
    let frame_len = out.len() - start;
    assert!(frame_len <= u16::MAX as usize, "frame exceeds length field");
    out[start + 1] = ty;
    out[start + 2..start + 4].copy_from_slice(&(frame_len as u16).to_be_bytes());
    frame_len
}

/// Decodes a single wire frame.
///
/// # Errors
///
/// Returns [`WireError`] on version mismatch, bad type codes, or truncation.
pub fn decode(mut bytes: Bytes) -> Result<OfMessage, WireError> {
    if bytes.len() < 8 {
        return Err(WireError::new("truncated header"));
    }
    let version = bytes.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::new("unsupported version"));
    }
    let ty = bytes.get_u8();
    let len = bytes.get_u16() as usize;
    let xid = Xid(bytes.get_u32());
    if len != bytes.len() + 8 {
        return Err(WireError::new("length field mismatch"));
    }
    let body = decode_body(ty, &mut bytes)?;
    Ok(OfMessage { xid, body })
}

pub(crate) fn encode_body(body: &OfBody, out: &mut impl BufMut) -> u8 {
    match body {
        OfBody::Hello => msg_type::HELLO,
        OfBody::EchoRequest(payload) => {
            out.put_slice(payload);
            msg_type::ECHO_REQUEST
        }
        OfBody::EchoReply(payload) => {
            out.put_slice(payload);
            msg_type::ECHO_REPLY
        }
        OfBody::FeaturesRequest => msg_type::FEATURES_REQUEST,
        OfBody::FeaturesReply {
            datapath_id,
            ports,
            table_capacity,
        } => {
            out.put_u64(datapath_id.0);
            out.put_u32(*table_capacity);
            out.put_u16(ports.len() as u16);
            for p in ports {
                out.put_u16(p.0);
            }
            msg_type::FEATURES_REPLY
        }
        OfBody::PacketIn(pi) => {
            out.put_u32(pi.buffer_id.0);
            out.put_u16(pi.in_port.0);
            out.put_u8(match pi.reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            out.put_u32(pi.payload.len() as u32);
            out.put_slice(&pi.payload);
            msg_type::PACKET_IN
        }
        OfBody::PacketOut(po) => {
            out.put_u32(po.buffer_id.0);
            out.put_u16(po.in_port.0);
            encode_actions(&po.actions, out);
            out.put_u32(po.payload.len() as u32);
            out.put_slice(&po.payload);
            msg_type::PACKET_OUT
        }
        OfBody::FlowMod(fm) => {
            out.put_u8(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::ModifyStrict => 2,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            encode_match(&fm.flow_match, out);
            out.put_u16(fm.priority.0);
            encode_actions(&fm.actions, out);
            out.put_u64(fm.cookie.0);
            out.put_u16(fm.idle_timeout);
            out.put_u16(fm.hard_timeout);
            out.put_u8(fm.notify_when_removed as u8);
            msg_type::FLOW_MOD
        }
        OfBody::FlowRemoved(fr) => {
            encode_match(&fr.flow_match, out);
            out.put_u16(fr.priority.0);
            out.put_u64(fr.cookie.0);
            out.put_u8(match fr.reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            out.put_u64(fr.packet_count);
            out.put_u64(fr.byte_count);
            out.put_u32(fr.duration_secs);
            msg_type::FLOW_REMOVED
        }
        OfBody::PortStatus { change, port_no } => {
            out.put_u8(match change {
                PortChange::Add => 0,
                PortChange::Delete => 1,
                PortChange::Modify => 2,
            });
            out.put_u16(port_no.0);
            msg_type::PORT_STATUS
        }
        OfBody::StatsRequest(req) => {
            match req {
                StatsRequest::Flow(m) => {
                    out.put_u8(0);
                    encode_match(m, out);
                }
                StatsRequest::Aggregate(m) => {
                    out.put_u8(1);
                    encode_match(m, out);
                }
                StatsRequest::Port(p) => {
                    out.put_u8(2);
                    out.put_u16(p.0);
                }
                StatsRequest::Table => out.put_u8(3),
            }
            msg_type::STATS_REQUEST
        }
        OfBody::StatsReply(rep) => {
            match rep {
                StatsReply::Flow(entries) => {
                    out.put_u8(0);
                    out.put_u16(entries.len() as u16);
                    for e in entries {
                        encode_match(&e.flow_match, out);
                        out.put_u16(e.priority.0);
                        out.put_u64(e.cookie.0);
                        encode_actions(&e.actions, out);
                        out.put_u64(e.packet_count);
                        out.put_u64(e.byte_count);
                        out.put_u32(e.duration_secs);
                    }
                }
                StatsReply::Aggregate(a) => {
                    out.put_u8(1);
                    out.put_u64(a.packet_count);
                    out.put_u64(a.byte_count);
                    out.put_u32(a.flow_count);
                }
                StatsReply::Port(ports) => {
                    out.put_u8(2);
                    out.put_u16(ports.len() as u16);
                    for p in ports {
                        out.put_u16(p.port_no.0);
                        out.put_u64(p.rx_packets);
                        out.put_u64(p.tx_packets);
                        out.put_u64(p.rx_bytes);
                        out.put_u64(p.tx_bytes);
                        out.put_u64(p.rx_dropped);
                        out.put_u64(p.tx_dropped);
                    }
                }
                StatsReply::Table(t) => {
                    out.put_u8(3);
                    out.put_u32(t.active_count);
                    out.put_u64(t.lookup_count);
                    out.put_u64(t.matched_count);
                    out.put_u32(t.max_entries);
                }
            }
            msg_type::STATS_REPLY
        }
        OfBody::Error(err) => {
            match err {
                OfError::TableFull => {
                    out.put_u8(0);
                }
                OfError::Overlap => {
                    out.put_u8(1);
                }
                OfError::BadRequest(m) => {
                    out.put_u8(2);
                    put_string(m, out);
                }
                OfError::EPerm(m) => {
                    out.put_u8(3);
                    put_string(m, out);
                }
            }
            msg_type::ERROR
        }
        OfBody::BarrierRequest => msg_type::BARRIER_REQUEST,
        OfBody::BarrierReply => msg_type::BARRIER_REPLY,
    }
}

pub(crate) fn decode_body(ty: u8, b: &mut Bytes) -> Result<OfBody, WireError> {
    Ok(match ty {
        msg_type::HELLO => OfBody::Hello,
        // Echo bodies are the raw opaque payload: everything after the
        // header, echoed back verbatim by the peer.
        msg_type::ECHO_REQUEST => {
            let n = b.len();
            OfBody::EchoRequest(b.split_to(n))
        }
        msg_type::ECHO_REPLY => {
            let n = b.len();
            OfBody::EchoReply(b.split_to(n))
        }
        msg_type::FEATURES_REQUEST => OfBody::FeaturesRequest,
        msg_type::FEATURES_REPLY => {
            need(b, 14)?;
            let datapath_id = DatapathId(b.get_u64());
            let table_capacity = b.get_u32();
            let n = b.get_u16() as usize;
            need(b, n * 2)?;
            let ports = (0..n).map(|_| PortNo(b.get_u16())).collect();
            OfBody::FeaturesReply {
                datapath_id,
                ports,
                table_capacity,
            }
        }
        msg_type::PACKET_IN => {
            need(b, 11)?;
            let buffer_id = BufferId(b.get_u32());
            let in_port = PortNo(b.get_u16());
            let reason = match b.get_u8() {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                _ => return Err(WireError::new("bad packet-in reason")),
            };
            let payload = get_bytes(b)?;
            OfBody::PacketIn(PacketIn {
                buffer_id,
                in_port,
                reason,
                payload,
            })
        }
        msg_type::PACKET_OUT => {
            need(b, 6)?;
            let buffer_id = BufferId(b.get_u32());
            let in_port = PortNo(b.get_u16());
            let actions = decode_actions(b)?;
            let payload = get_bytes(b)?;
            OfBody::PacketOut(PacketOut {
                buffer_id,
                in_port,
                actions,
                payload,
            })
        }
        msg_type::FLOW_MOD => {
            need(b, 1)?;
            let command = match b.get_u8() {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                _ => return Err(WireError::new("bad flow-mod command")),
            };
            let flow_match = decode_match(b)?;
            need(b, 2)?;
            let priority = Priority(b.get_u16());
            let actions = decode_actions(b)?;
            need(b, 13)?;
            let cookie = Cookie(b.get_u64());
            let idle_timeout = b.get_u16();
            let hard_timeout = b.get_u16();
            let notify_when_removed = b.get_u8() != 0;
            OfBody::FlowMod(FlowMod {
                command,
                flow_match,
                priority,
                actions,
                cookie,
                idle_timeout,
                hard_timeout,
                notify_when_removed,
            })
        }
        msg_type::FLOW_REMOVED => {
            let flow_match = decode_match(b)?;
            need(b, 31)?;
            let priority = Priority(b.get_u16());
            let cookie = Cookie(b.get_u64());
            let reason = match b.get_u8() {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                2 => FlowRemovedReason::Delete,
                _ => return Err(WireError::new("bad flow-removed reason")),
            };
            let packet_count = b.get_u64();
            let byte_count = b.get_u64();
            let duration_secs = b.get_u32();
            OfBody::FlowRemoved(FlowRemoved {
                flow_match,
                priority,
                cookie,
                reason,
                packet_count,
                byte_count,
                duration_secs,
            })
        }
        msg_type::PORT_STATUS => {
            need(b, 3)?;
            let change = match b.get_u8() {
                0 => PortChange::Add,
                1 => PortChange::Delete,
                2 => PortChange::Modify,
                _ => return Err(WireError::new("bad port-status change")),
            };
            let port_no = PortNo(b.get_u16());
            OfBody::PortStatus { change, port_no }
        }
        msg_type::STATS_REQUEST => {
            need(b, 1)?;
            match b.get_u8() {
                0 => OfBody::StatsRequest(StatsRequest::Flow(decode_match(b)?)),
                1 => OfBody::StatsRequest(StatsRequest::Aggregate(decode_match(b)?)),
                2 => {
                    need(b, 2)?;
                    OfBody::StatsRequest(StatsRequest::Port(PortNo(b.get_u16())))
                }
                3 => OfBody::StatsRequest(StatsRequest::Table),
                _ => return Err(WireError::new("bad stats-request kind")),
            }
        }
        msg_type::STATS_REPLY => {
            need(b, 1)?;
            match b.get_u8() {
                0 => {
                    need(b, 2)?;
                    let n = b.get_u16() as usize;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        let flow_match = decode_match(b)?;
                        need(b, 10)?;
                        let priority = Priority(b.get_u16());
                        let cookie = Cookie(b.get_u64());
                        let actions = decode_actions(b)?;
                        need(b, 20)?;
                        entries.push(FlowStats {
                            flow_match,
                            priority,
                            cookie,
                            actions,
                            packet_count: b.get_u64(),
                            byte_count: b.get_u64(),
                            duration_secs: b.get_u32(),
                        });
                    }
                    OfBody::StatsReply(StatsReply::Flow(entries))
                }
                1 => {
                    need(b, 20)?;
                    OfBody::StatsReply(StatsReply::Aggregate(AggregateStats {
                        packet_count: b.get_u64(),
                        byte_count: b.get_u64(),
                        flow_count: b.get_u32(),
                    }))
                }
                2 => {
                    need(b, 2)?;
                    let n = b.get_u16() as usize;
                    need(b, n * 50)?;
                    let ports = (0..n)
                        .map(|_| PortStats {
                            port_no: PortNo(b.get_u16()),
                            rx_packets: b.get_u64(),
                            tx_packets: b.get_u64(),
                            rx_bytes: b.get_u64(),
                            tx_bytes: b.get_u64(),
                            rx_dropped: b.get_u64(),
                            tx_dropped: b.get_u64(),
                        })
                        .collect();
                    OfBody::StatsReply(StatsReply::Port(ports))
                }
                3 => {
                    need(b, 24)?;
                    OfBody::StatsReply(StatsReply::Table(TableStats {
                        active_count: b.get_u32(),
                        lookup_count: b.get_u64(),
                        matched_count: b.get_u64(),
                        max_entries: b.get_u32(),
                    }))
                }
                _ => return Err(WireError::new("bad stats-reply kind")),
            }
        }
        msg_type::ERROR => {
            need(b, 1)?;
            match b.get_u8() {
                0 => OfBody::Error(OfError::TableFull),
                1 => OfBody::Error(OfError::Overlap),
                2 => OfBody::Error(OfError::BadRequest(get_string(b)?)),
                3 => OfBody::Error(OfError::EPerm(get_string(b)?)),
                _ => return Err(WireError::new("bad error kind")),
            }
        }
        msg_type::BARRIER_REQUEST => OfBody::BarrierRequest,
        msg_type::BARRIER_REPLY => OfBody::BarrierReply,
        _ => return Err(WireError::new("unknown message type")),
    })
}

pub(crate) fn need(b: &Bytes, n: usize) -> Result<(), WireError> {
    if b.len() < n {
        Err(WireError::new("truncated body"))
    } else {
        Ok(())
    }
}

pub(crate) fn put_string(s: &str, out: &mut impl BufMut) {
    out.put_u16(s.len() as u16);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_string(b: &mut Bytes) -> Result<String, WireError> {
    need(b, 2)?;
    let n = b.get_u16() as usize;
    need(b, n)?;
    let raw = b.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::new("invalid utf-8 string"))
}

pub(crate) fn get_bytes(b: &mut Bytes) -> Result<Bytes, WireError> {
    need(b, 4)?;
    let n = b.get_u32() as usize;
    need(b, n)?;
    Ok(b.split_to(n))
}

// Field-presence bitmap layout for match encoding.
mod match_bits {
    pub const IN_PORT: u16 = 1 << 0;
    pub const ETH_SRC: u16 = 1 << 1;
    pub const ETH_DST: u16 = 1 << 2;
    pub const ETH_TYPE: u16 = 1 << 3;
    pub const VLAN_ID: u16 = 1 << 4;
    pub const VLAN_PCP: u16 = 1 << 5;
    pub const IP_SRC: u16 = 1 << 6;
    pub const IP_DST: u16 = 1 << 7;
    pub const IP_PROTO: u16 = 1 << 8;
    pub const IP_TOS: u16 = 1 << 9;
    pub const TP_SRC: u16 = 1 << 10;
    pub const TP_DST: u16 = 1 << 11;
}

pub(crate) fn encode_match(m: &FlowMatch, out: &mut impl BufMut) {
    use match_bits::*;
    let mut bits = 0u16;
    if m.in_port.is_some() {
        bits |= IN_PORT;
    }
    if m.eth_src.is_some() {
        bits |= ETH_SRC;
    }
    if m.eth_dst.is_some() {
        bits |= ETH_DST;
    }
    if m.eth_type.is_some() {
        bits |= ETH_TYPE;
    }
    if m.vlan_id.is_some() {
        bits |= VLAN_ID;
    }
    if m.vlan_pcp.is_some() {
        bits |= VLAN_PCP;
    }
    if m.ip_src.is_some() {
        bits |= IP_SRC;
    }
    if m.ip_dst.is_some() {
        bits |= IP_DST;
    }
    if m.ip_proto.is_some() {
        bits |= IP_PROTO;
    }
    if m.ip_tos.is_some() {
        bits |= IP_TOS;
    }
    if m.tp_src.is_some() {
        bits |= TP_SRC;
    }
    if m.tp_dst.is_some() {
        bits |= TP_DST;
    }
    out.put_u16(bits);
    if let Some(v) = m.in_port {
        out.put_u16(v.0);
    }
    if let Some(v) = m.eth_src {
        out.put_slice(&v.0);
    }
    if let Some(v) = m.eth_dst {
        out.put_slice(&v.0);
    }
    if let Some(v) = m.eth_type {
        out.put_u16(v);
    }
    if let Some(v) = m.vlan_id {
        out.put_u16(v);
    }
    if let Some(v) = m.vlan_pcp {
        out.put_u8(v);
    }
    if let Some(v) = m.ip_src {
        out.put_u32(v.addr.0);
        out.put_u32(v.mask.0);
    }
    if let Some(v) = m.ip_dst {
        out.put_u32(v.addr.0);
        out.put_u32(v.mask.0);
    }
    if let Some(v) = m.ip_proto {
        out.put_u8(v);
    }
    if let Some(v) = m.ip_tos {
        out.put_u8(v);
    }
    if let Some(v) = m.tp_src {
        out.put_u16(v);
    }
    if let Some(v) = m.tp_dst {
        out.put_u16(v);
    }
}

pub(crate) fn decode_match(b: &mut Bytes) -> Result<FlowMatch, WireError> {
    use match_bits::*;
    need(b, 2)?;
    let bits = b.get_u16();
    let mut m = FlowMatch::default();
    if bits & IN_PORT != 0 {
        need(b, 2)?;
        m.in_port = Some(PortNo(b.get_u16()));
    }
    if bits & ETH_SRC != 0 {
        need(b, 6)?;
        let mut a = [0u8; 6];
        b.copy_to_slice(&mut a);
        m.eth_src = Some(EthAddr(a));
    }
    if bits & ETH_DST != 0 {
        need(b, 6)?;
        let mut a = [0u8; 6];
        b.copy_to_slice(&mut a);
        m.eth_dst = Some(EthAddr(a));
    }
    if bits & ETH_TYPE != 0 {
        need(b, 2)?;
        m.eth_type = Some(b.get_u16());
    }
    if bits & VLAN_ID != 0 {
        need(b, 2)?;
        m.vlan_id = Some(b.get_u16());
    }
    if bits & VLAN_PCP != 0 {
        need(b, 1)?;
        m.vlan_pcp = Some(b.get_u8());
    }
    if bits & IP_SRC != 0 {
        need(b, 8)?;
        let addr = Ipv4(b.get_u32());
        let mask = Ipv4(b.get_u32());
        m.ip_src = Some(MaskedIpv4::new(addr, mask));
    }
    if bits & IP_DST != 0 {
        need(b, 8)?;
        let addr = Ipv4(b.get_u32());
        let mask = Ipv4(b.get_u32());
        m.ip_dst = Some(MaskedIpv4::new(addr, mask));
    }
    if bits & IP_PROTO != 0 {
        need(b, 1)?;
        m.ip_proto = Some(b.get_u8());
    }
    if bits & IP_TOS != 0 {
        need(b, 1)?;
        m.ip_tos = Some(b.get_u8());
    }
    if bits & TP_SRC != 0 {
        need(b, 2)?;
        m.tp_src = Some(b.get_u16());
    }
    if bits & TP_DST != 0 {
        need(b, 2)?;
        m.tp_dst = Some(b.get_u16());
    }
    Ok(m)
}

pub(crate) fn encode_actions(actions: &ActionList, out: &mut impl BufMut) {
    out.put_u16(actions.0.len() as u16);
    for a in actions {
        match a {
            Action::Output(p) => {
                out.put_u8(0);
                out.put_u16(p.0);
            }
            Action::SetEthSrc(a) => {
                out.put_u8(1);
                out.put_slice(&a.0);
            }
            Action::SetEthDst(a) => {
                out.put_u8(2);
                out.put_slice(&a.0);
            }
            Action::SetIpSrc(ip) => {
                out.put_u8(3);
                out.put_u32(ip.0);
            }
            Action::SetIpDst(ip) => {
                out.put_u8(4);
                out.put_u32(ip.0);
            }
            Action::SetTpSrc(p) => {
                out.put_u8(5);
                out.put_u16(*p);
            }
            Action::SetTpDst(p) => {
                out.put_u8(6);
                out.put_u16(*p);
            }
            Action::SetVlan(v) => {
                out.put_u8(7);
                out.put_u16(*v);
            }
            Action::StripVlan => {
                out.put_u8(8);
            }
            Action::Enqueue { port, queue_id } => {
                out.put_u8(9);
                out.put_u16(port.0);
                out.put_u32(*queue_id);
            }
        }
    }
}

pub(crate) fn decode_actions(b: &mut Bytes) -> Result<ActionList, WireError> {
    need(b, 2)?;
    let n = b.get_u16() as usize;
    let mut list = Vec::with_capacity(n);
    for _ in 0..n {
        need(b, 1)?;
        let a = match b.get_u8() {
            0 => {
                need(b, 2)?;
                Action::Output(PortNo(b.get_u16()))
            }
            1 => {
                need(b, 6)?;
                let mut a = [0u8; 6];
                b.copy_to_slice(&mut a);
                Action::SetEthSrc(EthAddr(a))
            }
            2 => {
                need(b, 6)?;
                let mut a = [0u8; 6];
                b.copy_to_slice(&mut a);
                Action::SetEthDst(EthAddr(a))
            }
            3 => {
                need(b, 4)?;
                Action::SetIpSrc(Ipv4(b.get_u32()))
            }
            4 => {
                need(b, 4)?;
                Action::SetIpDst(Ipv4(b.get_u32()))
            }
            5 => {
                need(b, 2)?;
                Action::SetTpSrc(b.get_u16())
            }
            6 => {
                need(b, 2)?;
                Action::SetTpDst(b.get_u16())
            }
            7 => {
                need(b, 2)?;
                Action::SetVlan(b.get_u16())
            }
            8 => Action::StripVlan,
            9 => {
                need(b, 6)?;
                Action::Enqueue {
                    port: PortNo(b.get_u16()),
                    queue_id: b.get_u32(),
                }
            }
            _ => return Err(WireError::new("unknown action type")),
        };
        list.push(a);
    }
    Ok(ActionList(list))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(body: OfBody) {
        let msg = OfMessage::new(Xid(77), body);
        let bytes = encode(&msg);
        let decoded = decode(bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn simple_bodies_roundtrip() {
        for body in [
            OfBody::Hello,
            OfBody::EchoRequest(Bytes::new()),
            OfBody::EchoReply(Bytes::from_static(b"liveness \x00 payload")),
            OfBody::FeaturesRequest,
            OfBody::BarrierRequest,
            OfBody::BarrierReply,
        ] {
            roundtrip(body);
        }
    }

    #[test]
    fn features_reply_roundtrip() {
        roundtrip(OfBody::FeaturesReply {
            datapath_id: DatapathId(9),
            ports: vec![PortNo(1), PortNo(2), PortNo(3)],
            table_capacity: 4096,
        });
    }

    #[test]
    fn flow_mod_roundtrip() {
        let fm = FlowMod::add(
            FlowMatch::default()
                .with_in_port(PortNo(4))
                .with_eth_src(EthAddr::from_u64(0xa))
                .with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16)
                .with_tp_dst(80),
            Priority(777),
            ActionList(vec![
                Action::SetIpDst(Ipv4::new(1, 2, 3, 4)),
                Action::Output(PortNo::FLOOD),
                Action::Enqueue {
                    port: PortNo(5),
                    queue_id: 3,
                },
            ]),
        )
        .with_cookie(Cookie::with_owner(12, 99))
        .with_idle_timeout(30)
        .with_hard_timeout(300);
        roundtrip(OfBody::FlowMod(fm));
    }

    #[test]
    fn packet_in_out_roundtrip() {
        roundtrip(OfBody::PacketIn(PacketIn {
            buffer_id: BufferId(55),
            in_port: PortNo(2),
            reason: PacketInReason::NoMatch,
            payload: Bytes::from_static(b"\x01\x02\x03\x04"),
        }));
        roundtrip(OfBody::PacketOut(PacketOut {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo::NONE,
            actions: ActionList::output(PortNo(9)),
            payload: Bytes::from_static(b"payload"),
        }));
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip(OfBody::StatsRequest(StatsRequest::Flow(
            FlowMatch::default().with_tp_dst(443),
        )));
        roundtrip(OfBody::StatsRequest(StatsRequest::Table));
        roundtrip(OfBody::StatsReply(StatsReply::Aggregate(AggregateStats {
            packet_count: 10,
            byte_count: 1000,
            flow_count: 3,
        })));
        roundtrip(OfBody::StatsReply(StatsReply::Port(vec![PortStats {
            port_no: PortNo(1),
            rx_packets: 1,
            tx_packets: 2,
            rx_bytes: 3,
            tx_bytes: 4,
            rx_dropped: 5,
            tx_dropped: 6,
        }])));
        roundtrip(OfBody::StatsReply(StatsReply::Flow(vec![FlowStats {
            flow_match: FlowMatch::default().with_ip_src(Ipv4::new(9, 9, 9, 9)),
            priority: Priority(5),
            cookie: Cookie(42),
            actions: ActionList::drop(),
            packet_count: 7,
            byte_count: 700,
            duration_secs: 60,
        }])));
        roundtrip(OfBody::StatsReply(StatsReply::Table(TableStats {
            active_count: 5,
            lookup_count: 100,
            matched_count: 90,
            max_entries: 1024,
        })));
    }

    #[test]
    fn errors_roundtrip() {
        roundtrip(OfBody::Error(OfError::TableFull));
        roundtrip(OfBody::Error(OfError::EPerm("insert_flow denied".into())));
        roundtrip(OfBody::Error(OfError::BadRequest("nope".into())));
    }

    #[test]
    fn flow_removed_roundtrip() {
        roundtrip(OfBody::FlowRemoved(FlowRemoved {
            flow_match: FlowMatch::default().with_tp_dst(22),
            priority: Priority(9),
            cookie: Cookie(77),
            reason: FlowRemovedReason::IdleTimeout,
            packet_count: 3,
            byte_count: 333,
            duration_secs: 12,
        }));
        roundtrip(OfBody::PortStatus {
            change: PortChange::Modify,
            port_no: PortNo(3),
        });
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(Bytes::from_static(b"")).is_err());
        assert!(decode(Bytes::from_static(b"\x02\x00\x00\x08\x00\x00\x00\x01")).is_err());
        // Bad length field.
        assert!(decode(Bytes::from_static(b"\x01\x00\x00\x09\x00\x00\x00\x01")).is_err());
        // Unknown type.
        assert!(decode(Bytes::from_static(b"\x01\x63\x00\x08\x00\x00\x00\x01")).is_err());
    }

    #[test]
    fn xid_preserved() {
        let msg = OfMessage::new(Xid(0xdead_beef), OfBody::Hello);
        assert_eq!(decode(encode(&msg)).unwrap().xid, Xid(0xdead_beef));
    }
}
