//! The OpenFlow 1.0-style 12-tuple flow match, with the subsumption algebra
//! SDNShield's predicate and wildcard filters are built on.
//!
//! A [`FlowMatch`] describes a set of packets. Besides testing a packet
//! against a match, the control plane needs *relations between matches*:
//! whether one match is narrower than another ([`FlowMatch::subsumes`]) and
//! whether two matches can both apply to some packet
//! ([`FlowMatch::overlaps`]). Those relations are what let the permission
//! engine decide if a rule an app wants to install stays inside the flow
//! space it was granted.

use std::fmt;

use crate::packet::{EthPayload, EthernetFrame, IpPayload};
use crate::types::{eth_type, EthAddr, Ipv4, PortNo};

/// A match field on an exact-match attribute (no partial masks).
///
/// `None` means wildcard — the field matches anything.
type Exact<T> = Option<T>;

/// An IPv4 address plus mask, describing a masked value set.
///
/// Only bits set in `mask` are compared. A `mask` of all-ones is an exact
/// match; all-zeroes matches everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskedIpv4 {
    /// The address bits (bits outside the mask are ignored but normalized to
    /// zero by [`MaskedIpv4::new`]).
    pub addr: Ipv4,
    /// The comparison mask.
    pub mask: Ipv4,
}

impl MaskedIpv4 {
    /// Creates a masked address, normalizing `addr` so bits outside the mask
    /// are zero (making `==` structural equality meaningful).
    pub fn new(addr: Ipv4, mask: Ipv4) -> Self {
        MaskedIpv4 {
            addr: addr.masked(mask),
            mask,
        }
    }

    /// An exact (all-ones mask) match for `addr`.
    pub fn exact(addr: Ipv4) -> Self {
        Self::new(addr, Ipv4(u32::MAX))
    }

    /// A CIDR prefix match.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn prefix(addr: Ipv4, len: u8) -> Self {
        Self::new(addr, Ipv4::prefix_mask(len))
    }

    /// Does `ip` fall in this masked set?
    pub fn matches(&self, ip: Ipv4) -> bool {
        ip.masked(self.mask) == self.addr
    }

    /// Is every address matched by `other` also matched by `self`?
    ///
    /// True iff `self.mask` is a subset of `other.mask` (self is coarser or
    /// equal) and the two agree on `self`'s masked bits.
    pub fn includes(&self, other: &MaskedIpv4) -> bool {
        // self's constrained bits must all be constrained by other too…
        (self.mask.0 & other.mask.0) == self.mask.0
            // …and agree in value on those bits.
            && other.addr.masked(self.mask) == self.addr
    }

    /// Can some address satisfy both masked sets?
    pub fn overlaps(&self, other: &MaskedIpv4) -> bool {
        let common = self.mask.0 & other.mask.0;
        (self.addr.0 & common) == (other.addr.0 & common)
    }
}

impl fmt::Display for MaskedIpv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask.0 == u32::MAX {
            write!(f, "{}", self.addr)
        } else {
            write!(f, "{} mask {}", self.addr, self.mask)
        }
    }
}

/// An OpenFlow 1.0-style flow match over the classic 12-tuple.
///
/// Every field is optional; `None` wildcards the field. The default value
/// matches all packets.
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::flow_match::FlowMatch;
/// use sdnshield_openflow::types::Ipv4;
///
/// let all = FlowMatch::default();
/// let web = FlowMatch::default()
///     .with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16)
///     .with_tcp_dst(80);
/// assert!(all.subsumes(&web));
/// assert!(!web.subsumes(&all));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FlowMatch {
    /// Ingress switch port.
    pub in_port: Exact<PortNo>,
    /// Ethernet source address.
    pub eth_src: Exact<EthAddr>,
    /// Ethernet destination address.
    pub eth_dst: Exact<EthAddr>,
    /// EtherType.
    pub eth_type: Exact<u16>,
    /// VLAN id.
    pub vlan_id: Exact<u16>,
    /// VLAN priority.
    pub vlan_pcp: Exact<u8>,
    /// IPv4 source, masked.
    pub ip_src: Option<MaskedIpv4>,
    /// IPv4 destination, masked.
    pub ip_dst: Option<MaskedIpv4>,
    /// IP protocol number.
    pub ip_proto: Exact<u8>,
    /// IP ToS / DSCP byte.
    pub ip_tos: Exact<u8>,
    /// TCP/UDP source port.
    pub tp_src: Exact<u16>,
    /// TCP/UDP destination port.
    pub tp_dst: Exact<u16>,
}

impl FlowMatch {
    /// A match with every field wildcarded (matches all packets).
    pub fn any() -> Self {
        Self::default()
    }

    /// Returns `true` if every field is wildcarded.
    pub fn is_wildcard_all(&self) -> bool {
        *self == Self::default()
    }

    /// Builder-style setter for the ingress port.
    pub fn with_in_port(mut self, port: PortNo) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Builder-style setter for the Ethernet source.
    pub fn with_eth_src(mut self, addr: EthAddr) -> Self {
        self.eth_src = Some(addr);
        self
    }

    /// Builder-style setter for the Ethernet destination.
    pub fn with_eth_dst(mut self, addr: EthAddr) -> Self {
        self.eth_dst = Some(addr);
        self
    }

    /// Builder-style setter for the EtherType.
    pub fn with_eth_type(mut self, ety: u16) -> Self {
        self.eth_type = Some(ety);
        self
    }

    /// Builder-style setter for an exact IPv4 source.
    pub fn with_ip_src(mut self, ip: Ipv4) -> Self {
        self.ip_src = Some(MaskedIpv4::exact(ip));
        self.eth_type.get_or_insert(eth_type::IPV4);
        self
    }

    /// Builder-style setter for a masked IPv4 source prefix.
    pub fn with_ip_src_prefix(mut self, ip: Ipv4, len: u8) -> Self {
        self.ip_src = Some(MaskedIpv4::prefix(ip, len));
        self.eth_type.get_or_insert(eth_type::IPV4);
        self
    }

    /// Builder-style setter for an exact IPv4 destination.
    pub fn with_ip_dst(mut self, ip: Ipv4) -> Self {
        self.ip_dst = Some(MaskedIpv4::exact(ip));
        self.eth_type.get_or_insert(eth_type::IPV4);
        self
    }

    /// Builder-style setter for a masked IPv4 destination prefix.
    pub fn with_ip_dst_prefix(mut self, ip: Ipv4, len: u8) -> Self {
        self.ip_dst = Some(MaskedIpv4::prefix(ip, len));
        self.eth_type.get_or_insert(eth_type::IPV4);
        self
    }

    /// Builder-style setter for the IP protocol.
    pub fn with_ip_proto(mut self, proto: u8) -> Self {
        self.ip_proto = Some(proto);
        self.eth_type.get_or_insert(eth_type::IPV4);
        self
    }

    /// Builder-style setter for the TCP/UDP source port.
    pub fn with_tp_src(mut self, port: u16) -> Self {
        self.tp_src = Some(port);
        self
    }

    /// Builder-style setter for the TCP/UDP destination port.
    pub fn with_tp_dst(mut self, port: u16) -> Self {
        self.tp_dst = Some(port);
        self
    }

    /// Alias of [`FlowMatch::with_tp_dst`] reading better for TCP services.
    pub fn with_tcp_dst(self, port: u16) -> Self {
        self.with_tp_dst(port)
    }

    /// Tests a packet (with its ingress port) against the match.
    pub fn matches_frame(&self, in_port: PortNo, frame: &EthernetFrame) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(src) = self.eth_src {
            if src != frame.src {
                return false;
            }
        }
        if let Some(dst) = self.eth_dst {
            if dst != frame.dst {
                return false;
            }
        }
        if let Some(ety) = self.eth_type {
            if ety != frame.payload.eth_type() {
                return false;
            }
        }
        if let Some(vid) = self.vlan_id {
            match frame.vlan {
                Some(tag) if tag.vid == vid => {}
                _ => return false,
            }
        }
        if let Some(pcp) = self.vlan_pcp {
            match frame.vlan {
                Some(tag) if tag.pcp == pcp => {}
                _ => return false,
            }
        }
        let ip = match &frame.payload {
            EthPayload::Ipv4(ip) => Some(ip),
            _ => None,
        };
        if let Some(m) = self.ip_src {
            match ip {
                Some(ip) if m.matches(ip.src) => {}
                _ => return false,
            }
        }
        if let Some(m) = self.ip_dst {
            match ip {
                Some(ip) if m.matches(ip.dst) => {}
                _ => return false,
            }
        }
        if let Some(proto) = self.ip_proto {
            match ip {
                Some(ip) if ip.payload.proto() == proto => {}
                _ => return false,
            }
        }
        if let Some(tos) = self.ip_tos {
            match ip {
                Some(ip) if ip.tos == tos => {}
                _ => return false,
            }
        }
        if self.tp_src.is_some() || self.tp_dst.is_some() {
            let (src_port, dst_port) = match ip.map(|ip| &ip.payload) {
                Some(IpPayload::Tcp(t)) => (t.src_port, t.dst_port),
                Some(IpPayload::Udp(u)) => (u.src_port, u.dst_port),
                _ => return false,
            };
            if let Some(p) = self.tp_src {
                if p != src_port {
                    return false;
                }
            }
            if let Some(p) = self.tp_dst {
                if p != dst_port {
                    return false;
                }
            }
        }
        true
    }

    /// Is every packet matched by `other` also matched by `self`?
    ///
    /// This is the inclusion relation the permission engine's predicate
    /// filters use: a granted flow space `self` permits a requested rule
    /// `other` iff `self.subsumes(other)`.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn exact_subsumes<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => x == y,
            }
        }
        fn masked_subsumes(a: &Option<MaskedIpv4>, b: &Option<MaskedIpv4>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => x.includes(y),
            }
        }
        exact_subsumes(&self.in_port, &other.in_port)
            && exact_subsumes(&self.eth_src, &other.eth_src)
            && exact_subsumes(&self.eth_dst, &other.eth_dst)
            && exact_subsumes(&self.eth_type, &other.eth_type)
            && exact_subsumes(&self.vlan_id, &other.vlan_id)
            && exact_subsumes(&self.vlan_pcp, &other.vlan_pcp)
            && masked_subsumes(&self.ip_src, &other.ip_src)
            && masked_subsumes(&self.ip_dst, &other.ip_dst)
            && exact_subsumes(&self.ip_proto, &other.ip_proto)
            && exact_subsumes(&self.ip_tos, &other.ip_tos)
            && exact_subsumes(&self.tp_src, &other.tp_src)
            && exact_subsumes(&self.tp_dst, &other.tp_dst)
    }

    /// Can some packet be matched by both `self` and `other`?
    pub fn overlaps(&self, other: &FlowMatch) -> bool {
        fn exact_overlaps<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            }
        }
        fn masked_overlaps(a: &Option<MaskedIpv4>, b: &Option<MaskedIpv4>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x.overlaps(y),
                _ => true,
            }
        }
        exact_overlaps(&self.in_port, &other.in_port)
            && exact_overlaps(&self.eth_src, &other.eth_src)
            && exact_overlaps(&self.eth_dst, &other.eth_dst)
            && exact_overlaps(&self.eth_type, &other.eth_type)
            && exact_overlaps(&self.vlan_id, &other.vlan_id)
            && exact_overlaps(&self.vlan_pcp, &other.vlan_pcp)
            && masked_overlaps(&self.ip_src, &other.ip_src)
            && masked_overlaps(&self.ip_dst, &other.ip_dst)
            && exact_overlaps(&self.ip_proto, &other.ip_proto)
            && exact_overlaps(&self.ip_tos, &other.ip_tos)
            && exact_overlaps(&self.tp_src, &other.tp_src)
            && exact_overlaps(&self.tp_dst, &other.tp_dst)
    }

    /// The intersection of two matches, or `None` when they cannot both
    /// match any packet.
    pub fn intersect(&self, other: &FlowMatch) -> Option<FlowMatch> {
        fn exact_meet<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> Result<Option<T>, ()> {
            match (a, b) {
                (None, x) | (x, None) => Ok(x),
                (Some(x), Some(y)) if x == y => Ok(Some(x)),
                _ => Err(()),
            }
        }
        fn masked_meet(
            a: Option<MaskedIpv4>,
            b: Option<MaskedIpv4>,
        ) -> Result<Option<MaskedIpv4>, ()> {
            match (a, b) {
                (None, x) | (x, None) => Ok(x),
                (Some(x), Some(y)) => {
                    if !x.overlaps(&y) {
                        return Err(());
                    }
                    let mask = Ipv4(x.mask.0 | y.mask.0);
                    let addr = Ipv4((x.addr.0 & x.mask.0) | (y.addr.0 & y.mask.0));
                    Ok(Some(MaskedIpv4::new(addr, mask)))
                }
            }
        }
        let m = FlowMatch {
            in_port: exact_meet(self.in_port, other.in_port).ok()?,
            eth_src: exact_meet(self.eth_src, other.eth_src).ok()?,
            eth_dst: exact_meet(self.eth_dst, other.eth_dst).ok()?,
            eth_type: exact_meet(self.eth_type, other.eth_type).ok()?,
            vlan_id: exact_meet(self.vlan_id, other.vlan_id).ok()?,
            vlan_pcp: exact_meet(self.vlan_pcp, other.vlan_pcp).ok()?,
            ip_src: masked_meet(self.ip_src, other.ip_src).ok()?,
            ip_dst: masked_meet(self.ip_dst, other.ip_dst).ok()?,
            ip_proto: exact_meet(self.ip_proto, other.ip_proto).ok()?,
            ip_tos: exact_meet(self.ip_tos, other.ip_tos).ok()?,
            tp_src: exact_meet(self.tp_src, other.tp_src).ok()?,
            tp_dst: exact_meet(self.tp_dst, other.tp_dst).ok()?,
        };
        Some(m)
    }

    /// Number of non-wildcarded fields — a crude specificity measure used by
    /// workload generators.
    pub fn specified_fields(&self) -> usize {
        self.in_port.is_some() as usize
            + self.eth_src.is_some() as usize
            + self.eth_dst.is_some() as usize
            + self.eth_type.is_some() as usize
            + self.vlan_id.is_some() as usize
            + self.vlan_pcp.is_some() as usize
            + self.ip_src.is_some() as usize
            + self.ip_dst.is_some() as usize
            + self.ip_proto.is_some() as usize
            + self.ip_tos.is_some() as usize
            + self.tp_src.is_some() as usize
            + self.tp_dst.is_some() as usize
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard_all() {
            return write!(f, "match{{*}}");
        }
        write!(f, "match{{")?;
        let mut sep = "";
        macro_rules! field {
            ($name:literal, $val:expr) => {
                if let Some(v) = $val {
                    write!(f, "{sep}{}={}", $name, v)?;
                    sep = ",";
                }
            };
        }
        field!("in_port", self.in_port);
        field!("eth_src", self.eth_src);
        field!("eth_dst", self.eth_dst);
        if let Some(v) = self.eth_type {
            write!(f, "{sep}eth_type={v:#06x}")?;
            sep = ",";
        }
        field!("vlan_id", self.vlan_id);
        field!("vlan_pcp", self.vlan_pcp);
        field!("ip_src", self.ip_src);
        field!("ip_dst", self.ip_dst);
        field!("ip_proto", self.ip_proto);
        field!("ip_tos", self.ip_tos);
        field!("tp_src", self.tp_src);
        field!("tp_dst", self.tp_dst);
        let _ = sep;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;
    use bytes::Bytes;

    fn mac(n: u64) -> EthAddr {
        EthAddr::from_u64(n)
    }

    fn tcp_frame(src_ip: Ipv4, dst_ip: Ipv4, dst_port: u16) -> EthernetFrame {
        EthernetFrame::tcp(
            mac(1),
            mac(2),
            src_ip,
            dst_ip,
            40000,
            dst_port,
            TcpFlags::default(),
            Bytes::new(),
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        let m = FlowMatch::any();
        let f = tcp_frame(Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2), 80);
        assert!(m.matches_frame(PortNo(1), &f));
        let arp = EthernetFrame::arp_request(mac(1), Ipv4::new(1, 1, 1, 1), Ipv4::new(1, 1, 1, 2));
        assert!(m.matches_frame(PortNo(7), &arp));
    }

    #[test]
    fn prefix_match_on_ip_dst() {
        let m = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let inside = tcp_frame(Ipv4::new(1, 1, 1, 1), Ipv4::new(10, 13, 200, 5), 80);
        let outside = tcp_frame(Ipv4::new(1, 1, 1, 1), Ipv4::new(10, 14, 0, 5), 80);
        assert!(m.matches_frame(PortNo(1), &inside));
        assert!(!m.matches_frame(PortNo(1), &outside));
    }

    #[test]
    fn ip_fields_require_ipv4_payload() {
        let m = FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 1));
        let arp =
            EthernetFrame::arp_request(mac(1), Ipv4::new(10, 0, 0, 9), Ipv4::new(10, 0, 0, 1));
        assert!(!m.matches_frame(PortNo(1), &arp));
    }

    #[test]
    fn tp_fields_require_tcp_or_udp() {
        let m = FlowMatch::default().with_tp_dst(80);
        let frame = EthernetFrame {
            src: mac(1),
            dst: mac(2),
            vlan: None,
            payload: crate::packet::EthPayload::Ipv4(crate::packet::Ipv4Packet {
                src: Ipv4::new(1, 1, 1, 1),
                dst: Ipv4::new(2, 2, 2, 2),
                ttl: 64,
                tos: 0,
                payload: crate::packet::IpPayload::Icmp(crate::packet::IcmpMessage {
                    icmp_type: 8,
                    code: 0,
                    data: Bytes::new(),
                }),
            }),
        };
        assert!(!m.matches_frame(PortNo(1), &frame));
    }

    #[test]
    fn subsumption_basic() {
        let coarse = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8);
        let fine = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        assert!(coarse.subsumes(&fine));
        assert!(!fine.subsumes(&coarse));
        assert!(coarse.subsumes(&coarse));
        assert!(FlowMatch::any().subsumes(&coarse));
    }

    #[test]
    fn subsumption_requires_all_fields() {
        let a = FlowMatch::default()
            .with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8)
            .with_tp_dst(80);
        let b = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        // `a` constrains tp_dst which `b` leaves open, so `a` cannot subsume.
        assert!(!a.subsumes(&b));
        assert!(!b.subsumes(&a)); // different subnet widths; b is coarser on tp
        let b80 = b.clone().with_tp_dst(80);
        assert!(a.subsumes(&b80));
    }

    #[test]
    fn overlap_of_disjoint_prefixes_is_false() {
        let a = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let b = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 16);
        assert!(!a.overlaps(&b));
        let c = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 7, 0), 24);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn overlap_on_different_dimensions_is_true() {
        let a = FlowMatch::default().with_tp_dst(80);
        let b = FlowMatch::default().with_ip_src_prefix(Ipv4::new(10, 0, 0, 0), 8);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn intersect_combines_fields() {
        let a = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let b = FlowMatch::default().with_tp_dst(443);
        let i = a.intersect(&b).unwrap();
        assert!(a.subsumes(&i));
        assert!(b.subsumes(&i));
        assert_eq!(i.tp_dst, Some(443));
        assert_eq!(
            i.ip_dst,
            Some(MaskedIpv4::prefix(Ipv4::new(10, 13, 0, 0), 16))
        );
    }

    #[test]
    fn intersect_of_disjoint_is_none() {
        let a = FlowMatch::default().with_tp_dst(80);
        let b = FlowMatch::default().with_tp_dst(443);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_of_nested_prefixes_keeps_finer() {
        let a = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8);
        let b = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let i = a.intersect(&b).unwrap();
        assert_eq!(
            i.ip_dst,
            Some(MaskedIpv4::prefix(Ipv4::new(10, 13, 0, 0), 16))
        );
    }

    #[test]
    fn masked_ipv4_inclusion() {
        let wide = MaskedIpv4::prefix(Ipv4::new(10, 0, 0, 0), 8);
        let narrow = MaskedIpv4::prefix(Ipv4::new(10, 13, 0, 0), 16);
        let exact = MaskedIpv4::exact(Ipv4::new(10, 13, 0, 7));
        assert!(wide.includes(&narrow));
        assert!(narrow.includes(&exact));
        assert!(wide.includes(&exact));
        assert!(!narrow.includes(&wide));
        assert!(!exact.includes(&narrow));
    }

    #[test]
    fn masked_ipv4_noncontiguous_mask() {
        // The paper allows arbitrary bit masks, e.g. wildcarding the upper 24
        // bits to shuffle on the lower 8 (load balancing example, §IV).
        let low8 = MaskedIpv4::new(Ipv4::new(0, 0, 0, 5), Ipv4::new(0, 0, 0, 255));
        assert!(low8.matches(Ipv4::new(99, 88, 77, 5)));
        assert!(!low8.matches(Ipv4::new(99, 88, 77, 6)));
        let exact = MaskedIpv4::exact(Ipv4::new(1, 2, 3, 5));
        assert!(low8.includes(&exact));
    }

    #[test]
    fn display_formats() {
        let m = FlowMatch::default()
            .with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16)
            .with_tp_dst(80);
        let s = m.to_string();
        assert!(s.contains("ip_dst=10.13.0.0 mask 255.255.0.0"), "{s}");
        assert!(s.contains("tp_dst=80"), "{s}");
        assert_eq!(FlowMatch::any().to_string(), "match{*}");
    }

    #[test]
    fn specified_fields_counts() {
        assert_eq!(FlowMatch::any().specified_fields(), 0);
        let m = FlowMatch::default()
            .with_ip_dst(Ipv4::new(1, 2, 3, 4))
            .with_tp_dst(80);
        // with_ip_dst also pins eth_type.
        assert_eq!(m.specified_fields(), 3);
    }
}
