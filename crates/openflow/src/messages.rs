//! OpenFlow control-channel messages (1.0-style subset).

use bytes::Bytes;
use std::fmt;

use crate::actions::ActionList;
use crate::flow_match::FlowMatch;
use crate::types::{BufferId, Cookie, DatapathId, PortNo, Priority, Xid};

/// Why a packet-in was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketInReason {
    /// No matching flow entry.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// Why a flow entry was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowRemovedReason {
    /// Idle timeout expired.
    IdleTimeout,
    /// Hard timeout expired.
    HardTimeout,
    /// Deleted by a flow-mod.
    Delete,
}

/// Flow-mod commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Add a new entry.
    Add,
    /// Modify actions of matching entries (add if none).
    Modify,
    /// Modify strictly (match + priority equal).
    ModifyStrict,
    /// Delete matching entries (subsumption match).
    Delete,
    /// Delete strictly (match + priority equal).
    DeleteStrict,
}

/// A flow-mod message body: the unit of rule programming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMod {
    /// Command to apply.
    pub command: FlowModCommand,
    /// The flow space the rule matches.
    pub flow_match: FlowMatch,
    /// Entry priority.
    pub priority: Priority,
    /// Actions applied to matching packets.
    pub actions: ActionList,
    /// Opaque cookie (SDNShield encodes ownership here).
    pub cookie: Cookie,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Ask for a flow-removed notification on expiry.
    pub notify_when_removed: bool,
}

impl FlowMod {
    /// A flow-mod adding a rule with the given match, priority and actions.
    pub fn add(flow_match: FlowMatch, priority: Priority, actions: ActionList) -> Self {
        FlowMod {
            command: FlowModCommand::Add,
            flow_match,
            priority,
            actions,
            cookie: Cookie::default(),
            idle_timeout: 0,
            hard_timeout: 0,
            notify_when_removed: false,
        }
    }

    /// A flow-mod deleting all rules subsumed by `flow_match`.
    pub fn delete(flow_match: FlowMatch) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            flow_match,
            priority: Priority::MIN,
            actions: ActionList::drop(),
            cookie: Cookie::default(),
            idle_timeout: 0,
            hard_timeout: 0,
            notify_when_removed: false,
        }
    }

    /// Builder-style cookie setter.
    pub fn with_cookie(mut self, cookie: Cookie) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder-style idle-timeout setter.
    pub fn with_idle_timeout(mut self, secs: u16) -> Self {
        self.idle_timeout = secs;
        self
    }

    /// Builder-style hard-timeout setter.
    pub fn with_hard_timeout(mut self, secs: u16) -> Self {
        self.hard_timeout = secs;
        self
    }
}

impl fmt::Display for FlowMod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow_mod[{:?} {} {} -> {}]",
            self.command, self.flow_match, self.priority, self.actions
        )
    }
}

/// A packet-in event body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    /// Buffer id on the switch, if buffered.
    pub buffer_id: BufferId,
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// The (possibly truncated) packet bytes.
    pub payload: Bytes,
}

/// A packet-out command body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketOut {
    /// Buffered packet to release, or [`BufferId::NO_BUFFER`] with payload.
    pub buffer_id: BufferId,
    /// Nominal ingress port (for IN_PORT output semantics).
    pub in_port: PortNo,
    /// Actions to apply (typically a single output).
    pub actions: ActionList,
    /// Raw packet when not buffered.
    pub payload: Bytes,
}

/// A flow-removed notification body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRemoved {
    /// Match of the removed entry.
    pub flow_match: FlowMatch,
    /// Priority of the removed entry.
    pub priority: Priority,
    /// Cookie of the removed entry.
    pub cookie: Cookie,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// Packets matched over the entry's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the entry's lifetime.
    pub byte_count: u64,
    /// Seconds the entry was installed.
    pub duration_secs: u32,
}

/// What a stats request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsRequest {
    /// Per-flow stats for entries subsumed by the match.
    Flow(FlowMatch),
    /// Aggregate stats over entries subsumed by the match.
    Aggregate(FlowMatch),
    /// Per-port counters ([`PortNo::NONE`] = all ports).
    Port(PortNo),
    /// Table-level counters.
    Table,
}

/// Per-flow statistics entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStats {
    /// The entry's match.
    pub flow_match: FlowMatch,
    /// The entry's priority.
    pub priority: Priority,
    /// The entry's cookie.
    pub cookie: Cookie,
    /// The entry's actions.
    pub actions: ActionList,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Seconds installed.
    pub duration_secs: u32,
}

/// Per-port statistics entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// The port.
    pub port_no: PortNo,
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Receive drops.
    pub rx_dropped: u64,
    /// Transmit drops.
    pub tx_dropped: u64,
}

/// Table-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Entries currently installed.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets that hit an entry.
    pub matched_count: u64,
    /// Maximum entries supported.
    pub max_entries: u32,
}

/// Aggregate statistics over a flow-space query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateStats {
    /// Total packets across matching entries.
    pub packet_count: u64,
    /// Total bytes across matching entries.
    pub byte_count: u64,
    /// Number of matching entries.
    pub flow_count: u32,
}

/// A stats reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsReply {
    /// Per-flow entries.
    Flow(Vec<FlowStats>),
    /// Aggregate over matching entries.
    Aggregate(AggregateStats),
    /// Per-port counters.
    Port(Vec<PortStats>),
    /// Table counters.
    Table(TableStats),
}

/// OpenFlow error types (subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfError {
    /// Flow-mod failed: table full.
    TableFull,
    /// Flow-mod failed: overlapping entry.
    Overlap,
    /// Bad request (malformed/unsupported).
    BadRequest(String),
    /// Permission denied at the switch.
    EPerm(String),
}

impl fmt::Display for OfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfError::TableFull => write!(f, "flow table full"),
            OfError::Overlap => write!(f, "overlapping flow entry"),
            OfError::BadRequest(m) => write!(f, "bad request: {m}"),
            OfError::EPerm(m) => write!(f, "permission denied: {m}"),
        }
    }
}

impl std::error::Error for OfError {}

/// Port state change notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortChange {
    /// Port added.
    Add,
    /// Port removed.
    Delete,
    /// Port attributes changed (e.g. link up/down).
    Modify,
}

/// A full OpenFlow message: header (xid) plus typed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfMessage {
    /// Transaction id correlating requests/replies.
    pub xid: Xid,
    /// Message body.
    pub body: OfBody,
}

/// OpenFlow message bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfBody {
    /// Version negotiation.
    Hello,
    /// Liveness probe. The opaque payload (possibly empty) must be echoed
    /// back verbatim, along with the request's xid, in the matching
    /// [`OfBody::EchoReply`] — the round-trip is how each side proves the
    /// peer is still draining its control channel.
    EchoRequest(Bytes),
    /// Liveness reply carrying the probe's payload verbatim.
    EchoReply(Bytes),
    /// Ask the switch for its features.
    FeaturesRequest,
    /// Switch features: datapath id and ports.
    FeaturesReply {
        /// The switch's datapath id.
        datapath_id: DatapathId,
        /// Physical ports on the switch.
        ports: Vec<PortNo>,
        /// Flow-table capacity.
        table_capacity: u32,
    },
    /// Packet punted to the controller.
    PacketIn(PacketIn),
    /// Packet injected by the controller.
    PacketOut(PacketOut),
    /// Flow table programming.
    FlowMod(FlowMod),
    /// Flow entry expired or deleted.
    FlowRemoved(FlowRemoved),
    /// Port status change.
    PortStatus {
        /// What changed.
        change: PortChange,
        /// The affected port.
        port_no: PortNo,
    },
    /// Statistics request.
    StatsRequest(StatsRequest),
    /// Statistics reply.
    StatsReply(StatsReply),
    /// Error notification.
    Error(OfError),
    /// Barrier: flush preceding messages.
    BarrierRequest,
    /// Barrier acknowledged.
    BarrierReply,
}

impl OfMessage {
    /// Wraps a body with a transaction id.
    pub fn new(xid: Xid, body: OfBody) -> Self {
        OfMessage { xid, body }
    }

    /// Short human-readable name of the message kind.
    pub fn kind(&self) -> &'static str {
        match &self.body {
            OfBody::Hello => "hello",
            OfBody::EchoRequest(_) => "echo_request",
            OfBody::EchoReply(_) => "echo_reply",
            OfBody::FeaturesRequest => "features_request",
            OfBody::FeaturesReply { .. } => "features_reply",
            OfBody::PacketIn(_) => "packet_in",
            OfBody::PacketOut(_) => "packet_out",
            OfBody::FlowMod(_) => "flow_mod",
            OfBody::FlowRemoved(_) => "flow_removed",
            OfBody::PortStatus { .. } => "port_status",
            OfBody::StatsRequest(_) => "stats_request",
            OfBody::StatsReply(_) => "stats_reply",
            OfBody::Error(_) => "error",
            OfBody::BarrierRequest => "barrier_request",
            OfBody::BarrierReply => "barrier_reply",
        }
    }
}

impl fmt::Display for OfMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "of[{} {}]", self.xid, self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ipv4;

    #[test]
    fn flow_mod_builders() {
        let fm = FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 1)),
            Priority(100),
            ActionList::output(PortNo(2)),
        )
        .with_cookie(Cookie::with_owner(3, 7))
        .with_idle_timeout(30);
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.cookie.owner(), 3);
        assert_eq!(fm.idle_timeout, 30);
        assert_eq!(fm.hard_timeout, 0);
    }

    #[test]
    fn delete_flow_mod_defaults() {
        let fm = FlowMod::delete(FlowMatch::any());
        assert_eq!(fm.command, FlowModCommand::Delete);
        assert!(fm.actions.is_drop());
    }

    #[test]
    fn message_kinds() {
        let m = OfMessage::new(Xid(1), OfBody::Hello);
        assert_eq!(m.kind(), "hello");
        assert_eq!(m.to_string(), "of[xid:1 hello]");
        let m = OfMessage::new(Xid(2), OfBody::FlowMod(FlowMod::delete(FlowMatch::any())));
        assert_eq!(m.kind(), "flow_mod");
    }

    #[test]
    fn of_error_display() {
        assert_eq!(OfError::TableFull.to_string(), "flow table full");
        assert_eq!(
            OfError::EPerm("insert_flow".into()).to_string(),
            "permission denied: insert_flow"
        );
    }
}
