//! Data-plane packet model: Ethernet, ARP, IPv4, TCP, UDP, ICMP.
//!
//! The simulator moves structured packets rather than raw frames wherever it
//! can, but every packet can be serialized to bytes (and parsed back) so the
//! packet-in payload path — which SDNShield's `read_payload` permission
//! guards — carries realistic octets.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

use crate::types::{eth_type, ip_proto, EthAddr, Ipv4};

/// Error returned when a packet fails to parse from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePacketError {
    /// Human-readable description of the first problem encountered.
    reason: &'static str,
}

impl ParsePacketError {
    fn new(reason: &'static str) -> Self {
        ParsePacketError { reason }
    }
}

impl fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed packet: {}", self.reason)
    }
}

impl std::error::Error for ParsePacketError {}

/// An Ethernet frame with a typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Source MAC address.
    pub src: EthAddr,
    /// Destination MAC address.
    pub dst: EthAddr,
    /// Optional 802.1Q VLAN id (12 bits) and PCP (3 bits).
    pub vlan: Option<VlanTag>,
    /// The payload.
    pub payload: EthPayload,
}

/// An 802.1Q VLAN tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VlanTag {
    /// VLAN identifier, 0..=4095.
    pub vid: u16,
    /// Priority code point, 0..=7.
    pub pcp: u8,
}

/// Payload variants carried by an [`EthernetFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EthPayload {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
    /// An unparsed payload with explicit EtherType.
    Other {
        /// EtherType of the unknown payload.
        eth_type: u16,
        /// Raw payload bytes.
        data: Bytes,
    },
}

impl EthPayload {
    /// The EtherType value describing this payload.
    pub fn eth_type(&self) -> u16 {
        match self {
            EthPayload::Arp(_) => eth_type::ARP,
            EthPayload::Ipv4(_) => eth_type::IPV4,
            EthPayload::Other { eth_type, .. } => *eth_type,
        }
    }
}

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet (IPv4 over Ethernet flavor only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: EthAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4,
    /// Target hardware address (zero in requests).
    pub target_mac: EthAddr,
    /// Target protocol address.
    pub target_ip: Ipv4,
}

/// An IPv4 packet with a typed transport payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Time to live.
    pub ttl: u8,
    /// Differentiated services / ToS byte.
    pub tos: u8,
    /// Transport payload.
    pub payload: IpPayload,
}

/// Transport payloads carried by an [`Ipv4Packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpPayload {
    /// TCP segment.
    Tcp(TcpSegment),
    /// UDP datagram.
    Udp(UdpDatagram),
    /// ICMP message.
    Icmp(IcmpMessage),
    /// Unparsed payload with explicit protocol number.
    Other {
        /// IP protocol number.
        proto: u8,
        /// Raw payload bytes.
        data: Bytes,
    },
}

impl IpPayload {
    /// The IP protocol number describing this payload.
    pub fn proto(&self) -> u8 {
        match self {
            IpPayload::Tcp(_) => ip_proto::TCP,
            IpPayload::Udp(_) => ip_proto::UDP,
            IpPayload::Icmp(_) => ip_proto::ICMP,
            IpPayload::Other { proto, .. } => *proto,
        }
    }
}

/// TCP control flags, as individual booleans for readability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    /// Packs the flags into the low bits of a byte (RFC 793 layout).
    pub fn to_byte(self) -> u8 {
        (self.fin as u8)
            | ((self.syn as u8) << 1)
            | ((self.rst as u8) << 2)
            | ((self.psh as u8) << 3)
            | ((self.ack as u8) << 4)
    }

    /// Unpacks flags from a byte (RFC 793 layout).
    pub fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Application payload.
    pub data: Bytes,
}

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub data: Bytes,
}

/// An ICMP message (echo request/reply subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// ICMP type (8 = echo request, 0 = echo reply).
    pub icmp_type: u8,
    /// ICMP code.
    pub code: u8,
    /// Message body.
    pub data: Bytes,
}

impl EthernetFrame {
    /// Serializes the frame to wire bytes.
    ///
    /// Checksums are written as zero: the simulator never verifies them, and
    /// real controllers treat packet-in payloads as opaque anyway.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        if let Some(tag) = self.vlan {
            buf.put_u16(eth_type::VLAN);
            buf.put_u16(((tag.pcp as u16) << 13) | (tag.vid & 0x0fff));
        }
        buf.put_u16(self.payload.eth_type());
        match &self.payload {
            EthPayload::Arp(arp) => encode_arp(arp, &mut buf),
            EthPayload::Ipv4(ip) => encode_ipv4(ip, &mut buf),
            EthPayload::Other { data, .. } => buf.put_slice(data),
        }
        buf.freeze()
    }

    /// Parses a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError`] when the bytes are shorter than the
    /// headers they claim or contain an inconsistent length field.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, ParsePacketError> {
        if bytes.len() < 14 {
            return Err(ParsePacketError::new("truncated ethernet header"));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        bytes.copy_to_slice(&mut dst);
        bytes.copy_to_slice(&mut src);
        let mut ety = bytes.get_u16();
        let vlan = if ety == eth_type::VLAN {
            if bytes.len() < 4 {
                return Err(ParsePacketError::new("truncated vlan tag"));
            }
            let tci = bytes.get_u16();
            ety = bytes.get_u16();
            Some(VlanTag {
                vid: tci & 0x0fff,
                pcp: (tci >> 13) as u8,
            })
        } else {
            None
        };
        let payload = match ety {
            eth_type::ARP => EthPayload::Arp(decode_arp(&mut bytes)?),
            eth_type::IPV4 => EthPayload::Ipv4(decode_ipv4(&mut bytes)?),
            other => EthPayload::Other {
                eth_type: other,
                data: bytes,
            },
        };
        Ok(EthernetFrame {
            src: EthAddr(src),
            dst: EthAddr(dst),
            vlan,
            payload,
        })
    }

    /// Convenience constructor for an ARP request frame.
    pub fn arp_request(sender_mac: EthAddr, sender_ip: Ipv4, target_ip: Ipv4) -> Self {
        EthernetFrame {
            src: sender_mac,
            dst: EthAddr::BROADCAST,
            vlan: None,
            payload: EthPayload::Arp(ArpPacket {
                op: ArpOp::Request,
                sender_mac,
                sender_ip,
                target_mac: EthAddr::ZERO,
                target_ip,
            }),
        }
    }

    /// Convenience constructor for a unicast TCP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: EthAddr,
        dst_mac: EthAddr,
        src_ip: Ipv4,
        dst_ip: Ipv4,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        data: Bytes,
    ) -> Self {
        EthernetFrame {
            src: src_mac,
            dst: dst_mac,
            vlan: None,
            payload: EthPayload::Ipv4(Ipv4Packet {
                src: src_ip,
                dst: dst_ip,
                ttl: 64,
                tos: 0,
                payload: IpPayload::Tcp(TcpSegment {
                    src_port,
                    dst_port,
                    seq: 0,
                    ack: 0,
                    flags,
                    data,
                }),
            }),
        }
    }

    /// Convenience constructor for a unicast UDP frame.
    pub fn udp(
        src_mac: EthAddr,
        dst_mac: EthAddr,
        src_ip: Ipv4,
        dst_ip: Ipv4,
        src_port: u16,
        dst_port: u16,
        data: Bytes,
    ) -> Self {
        EthernetFrame {
            src: src_mac,
            dst: dst_mac,
            vlan: None,
            payload: EthPayload::Ipv4(Ipv4Packet {
                src: src_ip,
                dst: dst_ip,
                ttl: 64,
                tos: 0,
                payload: IpPayload::Udp(UdpDatagram {
                    src_port,
                    dst_port,
                    data,
                }),
            }),
        }
    }
}

fn encode_arp(arp: &ArpPacket, buf: &mut BytesMut) {
    buf.put_u16(1); // hardware type: ethernet
    buf.put_u16(eth_type::IPV4);
    buf.put_u8(6);
    buf.put_u8(4);
    buf.put_u16(match arp.op {
        ArpOp::Request => 1,
        ArpOp::Reply => 2,
    });
    buf.put_slice(&arp.sender_mac.0);
    buf.put_u32(arp.sender_ip.0);
    buf.put_slice(&arp.target_mac.0);
    buf.put_u32(arp.target_ip.0);
}

fn decode_arp(bytes: &mut Bytes) -> Result<ArpPacket, ParsePacketError> {
    if bytes.len() < 28 {
        return Err(ParsePacketError::new("truncated arp packet"));
    }
    let _htype = bytes.get_u16();
    let _ptype = bytes.get_u16();
    let _hlen = bytes.get_u8();
    let _plen = bytes.get_u8();
    let op = match bytes.get_u16() {
        1 => ArpOp::Request,
        2 => ArpOp::Reply,
        _ => return Err(ParsePacketError::new("unknown arp opcode")),
    };
    let mut smac = [0u8; 6];
    bytes.copy_to_slice(&mut smac);
    let sip = Ipv4(bytes.get_u32());
    let mut tmac = [0u8; 6];
    bytes.copy_to_slice(&mut tmac);
    let tip = Ipv4(bytes.get_u32());
    Ok(ArpPacket {
        op,
        sender_mac: EthAddr(smac),
        sender_ip: sip,
        target_mac: EthAddr(tmac),
        target_ip: tip,
    })
}

fn encode_ipv4(ip: &Ipv4Packet, buf: &mut BytesMut) {
    let mut body = BytesMut::with_capacity(32);
    match &ip.payload {
        IpPayload::Tcp(tcp) => {
            body.put_u16(tcp.src_port);
            body.put_u16(tcp.dst_port);
            body.put_u32(tcp.seq);
            body.put_u32(tcp.ack);
            body.put_u8(5 << 4); // data offset, no options
            body.put_u8(tcp.flags.to_byte());
            body.put_u16(0xffff); // window
            body.put_u16(0); // checksum (unverified)
            body.put_u16(0); // urgent
            body.put_slice(&tcp.data);
        }
        IpPayload::Udp(udp) => {
            body.put_u16(udp.src_port);
            body.put_u16(udp.dst_port);
            body.put_u16((8 + udp.data.len()) as u16);
            body.put_u16(0); // checksum (unverified)
            body.put_slice(&udp.data);
        }
        IpPayload::Icmp(icmp) => {
            body.put_u8(icmp.icmp_type);
            body.put_u8(icmp.code);
            body.put_u16(0); // checksum (unverified)
            body.put_slice(&icmp.data);
        }
        IpPayload::Other { data, .. } => body.put_slice(data),
    }
    let total_len = 20 + body.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(ip.tos);
    buf.put_u16(total_len as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0); // flags/fragment
    buf.put_u8(ip.ttl);
    buf.put_u8(ip.payload.proto());
    buf.put_u16(0); // header checksum (unverified)
    buf.put_u32(ip.src.0);
    buf.put_u32(ip.dst.0);
    buf.put_slice(&body);
}

fn decode_ipv4(bytes: &mut Bytes) -> Result<Ipv4Packet, ParsePacketError> {
    if bytes.len() < 20 {
        return Err(ParsePacketError::new("truncated ipv4 header"));
    }
    let ver_ihl = bytes.get_u8();
    if ver_ihl >> 4 != 4 {
        return Err(ParsePacketError::new("not an ipv4 packet"));
    }
    let ihl = (ver_ihl & 0x0f) as usize * 4;
    let tos = bytes.get_u8();
    let total_len = bytes.get_u16() as usize;
    let _id = bytes.get_u16();
    let _frag = bytes.get_u16();
    let ttl = bytes.get_u8();
    let proto = bytes.get_u8();
    let _csum = bytes.get_u16();
    let src = Ipv4(bytes.get_u32());
    let dst = Ipv4(bytes.get_u32());
    if ihl > 20 {
        let opts = ihl - 20;
        if bytes.len() < opts {
            return Err(ParsePacketError::new("truncated ipv4 options"));
        }
        bytes.advance(opts);
    }
    let body_len = total_len
        .checked_sub(ihl)
        .ok_or(ParsePacketError::new("ipv4 length shorter than header"))?;
    if bytes.len() < body_len {
        return Err(ParsePacketError::new("truncated ipv4 body"));
    }
    let mut body = bytes.split_to(body_len);
    let payload = match proto {
        ip_proto::TCP => {
            if body.len() < 20 {
                return Err(ParsePacketError::new("truncated tcp header"));
            }
            let src_port = body.get_u16();
            let dst_port = body.get_u16();
            let seq = body.get_u32();
            let ack = body.get_u32();
            let off = (body.get_u8() >> 4) as usize * 4;
            let flags = TcpFlags::from_byte(body.get_u8());
            let _win = body.get_u16();
            let _csum = body.get_u16();
            let _urg = body.get_u16();
            if off > 20 {
                let opts = off - 20;
                if body.len() < opts {
                    return Err(ParsePacketError::new("truncated tcp options"));
                }
                body.advance(opts);
            }
            IpPayload::Tcp(TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                data: body,
            })
        }
        ip_proto::UDP => {
            if body.len() < 8 {
                return Err(ParsePacketError::new("truncated udp header"));
            }
            let src_port = body.get_u16();
            let dst_port = body.get_u16();
            let _len = body.get_u16();
            let _csum = body.get_u16();
            IpPayload::Udp(UdpDatagram {
                src_port,
                dst_port,
                data: body,
            })
        }
        ip_proto::ICMP => {
            if body.len() < 4 {
                return Err(ParsePacketError::new("truncated icmp header"));
            }
            let icmp_type = body.get_u8();
            let code = body.get_u8();
            let _csum = body.get_u16();
            IpPayload::Icmp(IcmpMessage {
                icmp_type,
                code,
                data: body,
            })
        }
        other => IpPayload::Other {
            proto: other,
            data: body,
        },
    };
    Ok(Ipv4Packet {
        src,
        dst,
        ttl,
        tos,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u64) -> EthAddr {
        EthAddr::from_u64(n)
    }

    #[test]
    fn arp_roundtrip() {
        let frame =
            EthernetFrame::arp_request(mac(1), Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
        let bytes = frame.to_bytes();
        let parsed = EthernetFrame::from_bytes(bytes).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn tcp_roundtrip_with_payload() {
        let frame = EthernetFrame::tcp(
            mac(1),
            mac(2),
            Ipv4::new(192, 168, 0, 1),
            Ipv4::new(192, 168, 0, 2),
            43210,
            80,
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            Bytes::from_static(b"GET / HTTP/1.0\r\n\r\n"),
        );
        let parsed = EthernetFrame::from_bytes(frame.to_bytes()).unwrap();
        assert_eq!(parsed, frame);
        match parsed.payload {
            EthPayload::Ipv4(ip) => match ip.payload {
                IpPayload::Tcp(tcp) => {
                    assert!(tcp.flags.syn);
                    assert_eq!(&tcp.data[..], b"GET / HTTP/1.0\r\n\r\n");
                }
                other => panic!("expected tcp, got {other:?}"),
            },
            other => panic!("expected ipv4, got {other:?}"),
        }
    }

    #[test]
    fn udp_roundtrip() {
        let frame = EthernetFrame::udp(
            mac(3),
            mac(4),
            Ipv4::new(10, 1, 1, 1),
            Ipv4::new(10, 1, 1, 2),
            5353,
            53,
            Bytes::from_static(b"query"),
        );
        assert_eq!(EthernetFrame::from_bytes(frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn vlan_tag_roundtrip() {
        let mut frame = EthernetFrame::udp(
            mac(3),
            mac(4),
            Ipv4::new(10, 1, 1, 1),
            Ipv4::new(10, 1, 1, 2),
            1000,
            2000,
            Bytes::new(),
        );
        frame.vlan = Some(VlanTag { vid: 100, pcp: 5 });
        assert_eq!(EthernetFrame::from_bytes(frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn icmp_roundtrip() {
        let frame = EthernetFrame {
            src: mac(9),
            dst: mac(10),
            vlan: None,
            payload: EthPayload::Ipv4(Ipv4Packet {
                src: Ipv4::new(1, 2, 3, 4),
                dst: Ipv4::new(5, 6, 7, 8),
                ttl: 32,
                tos: 0,
                payload: IpPayload::Icmp(IcmpMessage {
                    icmp_type: 8,
                    code: 0,
                    data: Bytes::from_static(b"ping"),
                }),
            }),
        };
        assert_eq!(EthernetFrame::from_bytes(frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn unknown_ethertype_passthrough() {
        let frame = EthernetFrame {
            src: mac(1),
            dst: mac(2),
            vlan: None,
            payload: EthPayload::Other {
                eth_type: 0x88cc, // LLDP
                data: Bytes::from_static(b"\x01\x02\x03"),
            },
        };
        assert_eq!(EthernetFrame::from_bytes(frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn truncated_frames_rejected() {
        assert!(EthernetFrame::from_bytes(Bytes::from_static(b"short")).is_err());
        // Valid ethernet header claiming ARP but with a truncated body.
        let mut buf = BytesMut::new();
        buf.put_slice(&[0u8; 12]);
        buf.put_u16(eth_type::ARP);
        buf.put_slice(&[0u8; 4]);
        assert!(EthernetFrame::from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn tcp_flags_byte_roundtrip() {
        for b in 0..32u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn bad_ip_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0u8; 12]);
        buf.put_u16(eth_type::IPV4);
        buf.put_u8(0x45);
        buf.put_u8(0);
        buf.put_u16(10); // total length shorter than the 20-byte header
        buf.put_slice(&[0u8; 16]);
        assert!(EthernetFrame::from_bytes(buf.freeze()).is_err());
    }
}
