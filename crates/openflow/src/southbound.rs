//! Stream-level zero-copy codec for the southbound TCP wire path.
//!
//! [`wire`] handles single self-contained frames; a TCP connection delivers
//! an arbitrary byte stream — frames split mid-header, coalesced, or torn at
//! the end of a read. This module layers the stream machinery on top:
//!
//! * [`StreamDecoder`] — a reusable read buffer with head/tail cursors that
//!   yields borrowed [`FrameView`]s. Steady-state decoding performs **zero
//!   per-message heap allocations**: bytes land in the buffer once (from the
//!   socket read), views borrow from it, and compaction reuses the same
//!   storage. Unknown message types are skipped via the length header and
//!   counted instead of desyncing the connection.
//! * [`PacketInView`] / [`FrameView::echo_payload`] — allocation-free body
//!   parsers for the two hot-path inbound message types.
//! * [`WriteRing`] — a bounded byte ring for queued replies, flushed with
//!   vectored writes (at most two `IoSlice`s covering the wrap). When a frame
//!   does not fit, it is shed and counted — the same counted-drop discipline
//!   the audit ring uses — rather than blocking the reactor.
//!
//! The encode path ([`WriteRing::push_body`]) reuses one scratch `Vec`
//! across frames, so it too is allocation-free once warm.

use std::io::{self, IoSlice, Read, Write};

use bytes::Bytes;

use crate::messages::{OfBody, OfMessage, PacketIn, PacketInReason};
use crate::types::{BufferId, PortNo, Xid};
use crate::wire::{self, msg_type, WireError, HEADER_LEN, WIRE_VERSION};

/// Default size of the socket read chunk the decoder reserves space for.
pub const READ_CHUNK: usize = 16 * 1024;

/// A decoded frame borrowing its body from the decoder's buffer.
///
/// The header fields are parsed eagerly (they are fixed-offset integer
/// reads); the body stays raw until the caller asks for a typed view. Hot
/// paths match on [`FrameView::ty`] and use the allocation-free view
/// parsers; cold paths (handshake, diagnostics) call [`FrameView::message`]
/// for a fully decoded owned message.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    /// Message-type code from the frame header (see [`wire::msg_type`]).
    pub ty: u8,
    /// Transaction id from the frame header.
    pub xid: Xid,
    /// Raw body bytes: everything after the 8-byte header.
    pub body: &'a [u8],
}

impl FrameView<'_> {
    /// Fully decodes the frame into an owned [`OfMessage`]. Allocates; meant
    /// for the handshake and other cold paths.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the body is malformed or has trailing
    /// bytes.
    pub fn message(&self) -> Result<OfMessage, WireError> {
        let mut b = Bytes::copy_from_slice(self.body);
        let body = wire::decode_body(self.ty, &mut b)?;
        if !b.is_empty() {
            return Err(WireError::new("trailing bytes in body"));
        }
        Ok(OfMessage {
            xid: self.xid,
            body,
        })
    }

    /// The opaque echo payload, valid for ECHO_REQUEST/ECHO_REPLY frames
    /// (their body is exactly the payload, echoed back verbatim).
    pub fn echo_payload(&self) -> &[u8] {
        self.body
    }

    /// Parses a PACKET_IN body without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when `ty` is not PACKET_IN or the body is
    /// malformed.
    pub fn packet_in(&self) -> Result<PacketInView<'_>, WireError> {
        if self.ty != msg_type::PACKET_IN {
            return Err(WireError::new("not a packet-in frame"));
        }
        PacketInView::parse(self.body)
    }
}

/// Borrowed view of a PACKET_IN body: header fields by value, payload as a
/// slice into the decoder buffer. Mirrors [`PacketIn`] without owning the
/// payload.
#[derive(Debug, Clone, Copy)]
pub struct PacketInView<'a> {
    /// Buffer id on the switch, if buffered.
    pub buffer_id: BufferId,
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// The packet bytes, borrowed from the stream buffer.
    pub payload: &'a [u8],
}

impl<'a> PacketInView<'a> {
    fn parse(b: &'a [u8]) -> Result<Self, WireError> {
        if b.len() < 11 {
            return Err(WireError::new("truncated body"));
        }
        let buffer_id = BufferId(u32::from_be_bytes([b[0], b[1], b[2], b[3]]));
        let in_port = PortNo(u16::from_be_bytes([b[4], b[5]]));
        let reason = match b[6] {
            0 => PacketInReason::NoMatch,
            1 => PacketInReason::Action,
            _ => return Err(WireError::new("bad packet-in reason")),
        };
        let n = u32::from_be_bytes([b[7], b[8], b[9], b[10]]) as usize;
        if b.len() - 11 != n {
            return Err(WireError::new("packet-in payload length mismatch"));
        }
        Ok(PacketInView {
            buffer_id,
            in_port,
            reason,
            payload: &b[11..],
        })
    }

    /// Copies the view into an owned [`PacketIn`] (one payload allocation) —
    /// the handoff point from the wire to the mediation pipeline, which
    /// needs `'static` data.
    pub fn to_packet_in(&self) -> PacketIn {
        PacketIn {
            buffer_id: self.buffer_id,
            in_port: self.in_port,
            reason: self.reason,
            payload: Bytes::copy_from_slice(self.payload),
        }
    }
}

/// Incremental frame decoder over a byte stream.
///
/// Bytes are appended via [`StreamDecoder::read_from`] (socket) or
/// [`StreamDecoder::extend`] (tests); complete frames are drained with
/// [`StreamDecoder::next_frame`]. The buffer compacts in place and only
/// grows when a single frame exceeds the current capacity, so a warm
/// decoder allocates nothing.
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
    frames_decoded: u64,
    unknown_skipped: u64,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// A decoder with the default read-chunk capacity.
    pub fn new() -> Self {
        Self::with_capacity(READ_CHUNK)
    }

    /// A decoder whose buffer starts at `capacity` bytes (it still grows if
    /// a single frame needs more).
    pub fn with_capacity(capacity: usize) -> Self {
        StreamDecoder {
            buf: vec![0; capacity.max(HEADER_LEN)],
            head: 0,
            tail: 0,
            frames_decoded: 0,
            unknown_skipped: 0,
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.tail - self.head
    }

    /// Total complete frames yielded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Frames with an unknown type code that were skipped via their length
    /// header instead of killing the connection.
    pub fn unknown_skipped(&self) -> u64 {
        self.unknown_skipped
    }

    /// Makes room for at least `min` writable bytes at the tail: first by
    /// compacting pending data to the front (reusing the same storage),
    /// growing only when the pending data plus `min` exceed capacity.
    fn make_room(&mut self, min: usize) {
        if self.head == self.tail {
            self.head = 0;
            self.tail = 0;
        }
        if self.buf.len() - self.tail >= min {
            return;
        }
        if self.head > 0 {
            self.buf.copy_within(self.head..self.tail, 0);
            self.tail -= self.head;
            self.head = 0;
        }
        if self.buf.len() - self.tail < min {
            self.buf.resize((self.tail + min).next_power_of_two(), 0);
        }
    }

    /// Appends raw bytes (test/replay entry point).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.make_room(bytes.len());
        self.buf[self.tail..self.tail + bytes.len()].copy_from_slice(bytes);
        self.tail += bytes.len();
    }

    /// Reads once from `r` into the buffer. Returns the byte count (0 means
    /// EOF). `WouldBlock` and friends surface as errors for the caller's
    /// readiness loop to interpret.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `read` error.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.make_room(READ_CHUNK);
        let n = r.read(&mut self.buf[self.tail..])?;
        self.tail += n;
        Ok(n)
    }

    /// Yields the next complete frame, or `Ok(None)` if the buffered bytes
    /// end mid-frame (read more and retry). Frames with an unknown type code
    /// are skipped and counted, transparently to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on an unrecoverable stream corruption: wrong
    /// version byte or a length field smaller than the header (the stream
    /// cannot be resynchronized; the connection should be dropped).
    pub fn next_frame(&mut self) -> Result<Option<FrameView<'_>>, WireError> {
        loop {
            if self.tail - self.head < HEADER_LEN {
                return Ok(None);
            }
            let h = self.head;
            let b = &self.buf[h..self.tail];
            if b[0] != WIRE_VERSION {
                return Err(WireError::new("unsupported version"));
            }
            let ty = b[1];
            let len = u16::from_be_bytes([b[2], b[3]]) as usize;
            if len < HEADER_LEN {
                return Err(WireError::new("length field too small"));
            }
            if b.len() < len {
                return Ok(None);
            }
            self.head += len;
            if self.head == self.tail {
                self.head = 0;
                self.tail = 0;
            }
            if !wire::is_known_type(ty) {
                self.unknown_skipped += 1;
                continue;
            }
            self.frames_decoded += 1;
            let xid = Xid(u32::from_be_bytes([b[4], b[5], b[6], b[7]]));
            // `h` indexes the frame even after the head/tail reset above:
            // the reset never moves bytes, only marks them consumed.
            return Ok(Some(FrameView {
                ty,
                xid,
                body: &self.buf[h + HEADER_LEN..h + len],
            }));
        }
    }
}

/// Bounded egress byte ring with vectored flush and counted shed.
///
/// Frames are encoded into a reusable scratch `Vec` and copied into the
/// ring; a frame that does not fit in the remaining space is dropped whole
/// and counted ([`WriteRing::shed`]) — backpressure never blocks the
/// reactor, and partial frames never reach the wire. [`WriteRing::flush`]
/// writes the pending bytes with at most two `IoSlice`s (the wrap split).
#[derive(Debug)]
pub struct WriteRing {
    buf: Box<[u8]>,
    head: usize,
    len: usize,
    scratch: Vec<u8>,
    shed: u64,
    enqueued: u64,
    flushed_bytes: u64,
}

impl WriteRing {
    /// A ring holding at most `capacity` queued bytes.
    pub fn new(capacity: usize) -> Self {
        WriteRing {
            buf: vec![0; capacity.max(HEADER_LEN)].into_boxed_slice(),
            head: 0,
            len: 0,
            scratch: Vec::with_capacity(256),
            shed: 0,
            enqueued: 0,
            flushed_bytes: 0,
        }
    }

    /// Bytes queued and not yet written.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// True when nothing is queued (the readiness loop deregisters write
    /// interest on this).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Frames dropped because the ring was full.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Frames successfully queued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total bytes handed to the socket across all flushes.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// Queues a full message. Returns `false` (and counts a shed) when the
    /// ring lacks space for the whole frame.
    pub fn push(&mut self, msg: &OfMessage) -> bool {
        self.scratch.clear();
        wire::encode_into(msg, &mut self.scratch);
        self.commit_scratch()
    }

    /// Queues a message given its parts, avoiding an `OfMessage` move for
    /// callers holding a body by reference.
    pub fn push_body(&mut self, xid: Xid, body: &OfBody) -> bool {
        self.scratch.clear();
        self.begin_frame(0, xid);
        let ty = wire::encode_body(body, &mut self.scratch);
        self.finish_frame(ty);
        self.commit_scratch()
    }

    /// Queues an ECHO_REPLY mirroring the sender's `xid` and payload
    /// verbatim — the hot liveness path, no `Bytes` construction.
    pub fn push_echo_reply(&mut self, xid: Xid, payload: &[u8]) -> bool {
        self.scratch.clear();
        self.begin_frame(msg_type::ECHO_REPLY, xid);
        self.scratch.extend_from_slice(payload);
        self.finish_frame(msg_type::ECHO_REPLY);
        self.commit_scratch()
    }

    /// Queues a pre-encoded frame verbatim (e.g. a template from a load
    /// generator).
    pub fn push_raw(&mut self, frame: &[u8]) -> bool {
        self.scratch.clear();
        self.scratch.extend_from_slice(frame);
        self.commit_scratch()
    }

    fn begin_frame(&mut self, ty: u8, xid: Xid) {
        self.scratch.extend_from_slice(&[WIRE_VERSION, ty, 0, 0]);
        self.scratch.extend_from_slice(&xid.0.to_be_bytes());
    }

    fn finish_frame(&mut self, ty: u8) {
        let frame_len = self.scratch.len();
        assert!(frame_len <= u16::MAX as usize, "frame exceeds length field");
        self.scratch[1] = ty;
        self.scratch[2..4].copy_from_slice(&(frame_len as u16).to_be_bytes());
    }

    fn commit_scratch(&mut self) -> bool {
        let n = self.scratch.len();
        let cap = self.buf.len();
        if n > cap - self.len {
            self.shed += 1;
            return false;
        }
        let pos = (self.head + self.len) % cap;
        let first = (cap - pos).min(n);
        self.buf[pos..pos + first].copy_from_slice(&self.scratch[..first]);
        if first < n {
            self.buf[..n - first].copy_from_slice(&self.scratch[first..]);
        }
        self.len += n;
        self.enqueued += 1;
        true
    }

    /// Writes pending bytes to `w` with one vectored call (at most two
    /// slices). Returns bytes written; the caller's readiness loop handles
    /// `WouldBlock`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<usize> {
        if self.len == 0 {
            return Ok(0);
        }
        let cap = self.buf.len();
        let first = (cap - self.head).min(self.len);
        let n = if first < self.len {
            let (lo, hi) = self.buf.split_at(self.head);
            w.write_vectored(&[
                IoSlice::new(&hi[..first]),
                IoSlice::new(&lo[..self.len - first]),
            ])?
        } else {
            w.write(&self.buf[self.head..self.head + first])?
        };
        self.head = (self.head + n) % cap;
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
        }
        self.flushed_bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::PacketOut;
    use crate::ActionList;

    fn frame(msg: &OfMessage) -> Vec<u8> {
        let mut v = Vec::new();
        wire::encode_into(msg, &mut v);
        v
    }

    fn packet_in_msg(xid: u32, payload: &'static [u8]) -> OfMessage {
        OfMessage::new(
            Xid(xid),
            OfBody::PacketIn(PacketIn {
                buffer_id: BufferId(xid),
                in_port: PortNo(3),
                reason: PacketInReason::NoMatch,
                payload: Bytes::from_static(payload),
            }),
        )
    }

    #[test]
    fn decodes_across_arbitrary_chunks() {
        let msgs = vec![
            OfMessage::new(Xid(1), OfBody::Hello),
            packet_in_msg(2, b"\xaa\xbb\xcc"),
            OfMessage::new(Xid(3), OfBody::EchoRequest(Bytes::from_static(b"ping"))),
        ];
        let stream: Vec<u8> = msgs.iter().flat_map(frame).collect();
        // Feed one byte at a time — worst-case splits at every boundary.
        let mut dec = StreamDecoder::with_capacity(16);
        let mut out = Vec::new();
        for byte in stream {
            dec.extend(&[byte]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f.message().unwrap());
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.frames_decoded(), 3);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn coalesced_frames_decode_in_one_pass() {
        let msgs: Vec<_> = (0..10).map(|i| packet_in_msg(i, b"xyz")).collect();
        let stream: Vec<u8> = msgs.iter().flat_map(frame).collect();
        let mut dec = StreamDecoder::new();
        dec.extend(&stream);
        let mut n = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            let pi = f.packet_in().unwrap();
            assert_eq!(pi.payload, b"xyz");
            assert_eq!(pi.buffer_id, BufferId(n));
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn torn_final_frame_stays_pending() {
        let good = frame(&packet_in_msg(1, b"ok"));
        let torn = frame(&packet_in_msg(2, b"torn"));
        let mut dec = StreamDecoder::new();
        dec.extend(&good);
        dec.extend(&torn[..torn.len() - 3]);
        assert!(dec.next_frame().unwrap().is_some());
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), torn.len() - 3);
        // The remainder arrives; the frame completes.
        dec.extend(&torn[torn.len() - 3..]);
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.packet_in().unwrap().payload, b"torn");
    }

    #[test]
    fn unknown_type_skipped_and_counted() {
        let mut stream = frame(&OfMessage::new(Xid(1), OfBody::Hello));
        // A frame from a "newer" peer: type 0x63, 4-byte body.
        stream.extend_from_slice(&[WIRE_VERSION, 0x63, 0, 12, 0, 0, 0, 9, 1, 2, 3, 4]);
        stream.extend(frame(&OfMessage::new(Xid(2), OfBody::BarrierRequest)));
        let mut dec = StreamDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap().ty, msg_type::HELLO);
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!((f.ty, f.xid), (msg_type::BARRIER_REQUEST, Xid(2)));
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.unknown_skipped(), 1);
        assert_eq!(dec.frames_decoded(), 2);
    }

    #[test]
    fn corrupt_stream_is_fatal() {
        let mut dec = StreamDecoder::new();
        dec.extend(&[0x7f, 0, 0, 8, 0, 0, 0, 0]);
        assert!(dec.next_frame().is_err());

        let mut dec = StreamDecoder::new();
        // Length field smaller than the header — cannot make progress.
        dec.extend(&[WIRE_VERSION, 0, 0, 4, 0, 0, 0, 0]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn echo_payload_views_are_verbatim() {
        let msg = OfMessage::new(
            Xid(0xfeed),
            OfBody::EchoRequest(Bytes::from_static(b"\x00\x01liveness")),
        );
        let mut dec = StreamDecoder::new();
        dec.extend(&frame(&msg));
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.ty, msg_type::ECHO_REQUEST);
        assert_eq!(f.xid, Xid(0xfeed));
        assert_eq!(f.echo_payload(), b"\x00\x01liveness");
    }

    #[test]
    fn write_ring_roundtrips_through_flush() {
        let mut ring = WriteRing::new(4096);
        let msgs = [
            OfMessage::new(Xid(7), OfBody::Hello),
            OfMessage::new(
                Xid(8),
                OfBody::PacketOut(PacketOut {
                    buffer_id: BufferId::NO_BUFFER,
                    in_port: PortNo(1),
                    actions: ActionList::output(PortNo(2)),
                    payload: Bytes::from_static(b"pkt"),
                }),
            ),
        ];
        assert!(ring.push(&msgs[0]));
        assert!(ring.push_body(msgs[1].xid, &msgs[1].body));
        assert!(ring.push_echo_reply(Xid(9), b"pong"));

        let mut sink = Vec::new();
        while !ring.is_empty() {
            ring.flush(&mut sink).unwrap();
        }
        let mut dec = StreamDecoder::new();
        dec.extend(&sink);
        assert_eq!(
            dec.next_frame().unwrap().unwrap().message().unwrap(),
            msgs[0]
        );
        assert_eq!(
            dec.next_frame().unwrap().unwrap().message().unwrap(),
            msgs[1]
        );
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.ty, msg_type::ECHO_REPLY);
        assert_eq!((f.xid, f.echo_payload()), (Xid(9), &b"pong"[..]));
        assert_eq!(ring.enqueued(), 3);
        assert_eq!(ring.shed(), 0);
    }

    #[test]
    fn write_ring_wraps_and_sheds() {
        // Capacity fits exactly two HELLO frames (8 bytes each).
        let hello = OfMessage::new(Xid(1), OfBody::Hello);
        let mut ring = WriteRing::new(16);
        assert!(ring.push(&hello));
        assert!(ring.push(&hello));
        assert!(!ring.push(&hello), "third frame must shed");
        assert_eq!(ring.shed(), 1);

        // Drain one frame, push another so the ring wraps mid-frame.
        struct Limited(Vec<u8>, usize);
        impl Write for Limited {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                let n = b.len().min(self.1);
                self.0.extend_from_slice(&b[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Limited(Vec::new(), 12);
        ring.flush(&mut sink).unwrap();
        assert_eq!(ring.pending(), 4);
        assert!(ring.push(&hello), "freed space accepts a wrapped frame");
        sink.1 = usize::MAX;
        while !ring.is_empty() {
            ring.flush(&mut sink).unwrap();
        }
        // All bytes out, in order, decodable.
        let mut dec = StreamDecoder::new();
        dec.extend(&sink.0);
        let mut n = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            assert_eq!(f.ty, msg_type::HELLO);
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn decoder_grows_for_oversized_frame_then_reuses() {
        let payload: &'static [u8] = Box::leak(vec![0xabu8; 600].into_boxed_slice());
        let msg = packet_in_msg(5, payload);
        let mut dec = StreamDecoder::with_capacity(64);
        dec.extend(&frame(&msg));
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.packet_in().unwrap().payload.len(), 600);
    }
}
