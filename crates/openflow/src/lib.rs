//! OpenFlow 1.0-style protocol substrate for the SDNShield reproduction.
//!
//! The SDNShield paper (DSN'16) evaluates its permission system on
//! OpenDaylight and Floodlight talking OpenFlow to switches. This crate
//! provides the protocol layer that reproduction needs:
//!
//! * [`types`] — datapath ids, ports, cookies, addresses.
//! * [`packet`] — a structured Ethernet/ARP/IPv4/TCP/UDP/ICMP packet model
//!   with byte-level serialization, so packet-in payloads carry real octets.
//! * [`flow_match`] — the classic 12-tuple match and its subsumption algebra,
//!   the foundation of SDNShield's flow-space permission filters.
//! * [`actions`] — OpenFlow actions with the forwarding/modifying
//!   classification SDNShield's action filters use.
//! * [`messages`] — the control-channel message set.
//! * [`flow_table`] — switch-side tables with flow-mod semantics, timeouts
//!   and counters.
//! * [`wire`] — a self-consistent binary codec for the message set.
//! * [`snapshot`] — composable `put_*`/`get_*` codecs for embedding protocol
//!   values in durability formats (command journals, kernel snapshots).
//!
//! # Examples
//!
//! ```
//! use sdnshield_openflow::flow_match::FlowMatch;
//! use sdnshield_openflow::types::Ipv4;
//!
//! // The flow space granted to an app…
//! let granted = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
//! // …permits this narrower rule:
//! let rule = FlowMatch::default()
//!     .with_ip_dst_prefix(Ipv4::new(10, 13, 7, 0), 24)
//!     .with_tcp_dst(80);
//! assert!(granted.subsumes(&rule));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actions;
pub mod channel;
pub mod flow_match;
pub mod flow_table;
pub mod messages;
pub mod packet;
pub mod snapshot;
pub mod southbound;
pub mod types;
pub mod wire;

pub use actions::{Action, ActionList};
pub use flow_match::{FlowMatch, MaskedIpv4};
pub use flow_table::{FlowEntry, FlowTable};
pub use messages::{FlowMod, FlowModCommand, OfBody, OfMessage};
pub use types::{Cookie, DatapathId, EthAddr, Ipv4, PortNo, Priority};
