//! Fundamental OpenFlow value types.
//!
//! These newtypes give static distinctions between the many integer-valued
//! identifiers that flow through an SDN control plane (datapath ids, port
//! numbers, priorities, cookies, …), per the newtype guidance of the Rust API
//! guidelines (C-NEWTYPE).

use std::fmt;
use std::str::FromStr;

/// A 64-bit OpenFlow datapath identifier naming one switch.
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::types::DatapathId;
/// let dpid = DatapathId(42);
/// assert_eq!(dpid.to_string(), "dpid:42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DatapathId(pub u64);

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{}", self.0)
    }
}

impl From<u64> for DatapathId {
    fn from(v: u64) -> Self {
        DatapathId(v)
    }
}

/// A switch port number.
///
/// Reserved values follow OpenFlow 1.0 conventions and are exposed as
/// associated constants.
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::types::PortNo;
/// assert!(PortNo::CONTROLLER.is_reserved());
/// assert!(!PortNo(3).is_reserved());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Maximum number assignable to a physical port.
    pub const MAX_PHYSICAL: PortNo = PortNo(0xff00);
    /// Send the packet out the port it arrived on.
    pub const IN_PORT: PortNo = PortNo(0xfff8);
    /// Flood the packet along the minimum spanning tree.
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// Send the packet out all ports except the ingress port.
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Send the packet to the controller as a packet-in.
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// Local networking stack of the switch.
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Wildcard port used in match and stats messages.
    pub const NONE: PortNo = PortNo(0xffff);

    /// Returns `true` when the port number is one of the reserved
    /// (non-physical) OpenFlow ports.
    pub fn is_reserved(self) -> bool {
        self > Self::MAX_PHYSICAL
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::IN_PORT => write!(f, "in_port"),
            Self::FLOOD => write!(f, "flood"),
            Self::ALL => write!(f, "all"),
            Self::CONTROLLER => write!(f, "controller"),
            Self::LOCAL => write!(f, "local"),
            Self::NONE => write!(f, "none"),
            PortNo(n) => write!(f, "port:{n}"),
        }
    }
}

impl From<u16> for PortNo {
    fn from(v: u16) -> Self {
        PortNo(v)
    }
}

/// An opaque 64-bit flow cookie.
///
/// SDNShield uses the upper bits of the cookie space to track per-app rule
/// ownership (see `sdnshield-core`'s ownership filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cookie(pub u64);

impl Cookie {
    /// Number of bits reserved for the owning app id.
    pub const OWNER_BITS: u32 = 16;

    /// Builds a cookie that encodes `owner` in the upper [`Cookie::OWNER_BITS`]
    /// bits and `tag` in the remaining lower bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdnshield_openflow::types::Cookie;
    /// let c = Cookie::with_owner(7, 0xabc);
    /// assert_eq!(c.owner(), 7);
    /// assert_eq!(c.tag(), 0xabc);
    /// ```
    pub fn with_owner(owner: u16, tag: u64) -> Self {
        let mask = (1u64 << (64 - Self::OWNER_BITS)) - 1;
        Cookie(((owner as u64) << (64 - Self::OWNER_BITS)) | (tag & mask))
    }

    /// The app id encoded in the upper bits.
    pub fn owner(self) -> u16 {
        (self.0 >> (64 - Self::OWNER_BITS)) as u16
    }

    /// The lower tag bits.
    pub fn tag(self) -> u64 {
        self.0 & ((1u64 << (64 - Self::OWNER_BITS)) - 1)
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie:{:#x}", self.0)
    }
}

/// Flow entry priority. Higher wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u16);

impl Priority {
    /// The OpenFlow default priority for flow entries.
    pub const DEFAULT: Priority = Priority(0x8000);
    /// Lowest possible priority (table-miss style entries).
    pub const MIN: Priority = Priority(0);
    /// Highest possible priority.
    pub const MAX: Priority = Priority(u16::MAX);
}

impl Default for Priority {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio:{}", self.0)
    }
}

impl From<u16> for Priority {
    fn from(v: u16) -> Self {
        Priority(v)
    }
}

/// A buffered-packet id carried by packet-in / packet-out messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

impl BufferId {
    /// Indicates the packet is not buffered on the switch.
    pub const NO_BUFFER: BufferId = BufferId(u32::MAX);
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::NO_BUFFER {
            write!(f, "buf:none")
        } else {
            write!(f, "buf:{}", self.0)
        }
    }
}

/// Transaction id correlating OpenFlow requests and replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Xid(pub u32);

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid:{}", self.0)
    }
}

/// A 48-bit Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use sdnshield_openflow::types::EthAddr;
/// let a: EthAddr = "00:11:22:33:44:55".parse()?;
/// assert_eq!(a.to_string(), "00:11:22:33:44:55");
/// # Ok::<(), sdnshield_openflow::types::ParseEthAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EthAddr(pub [u8; 6]);

impl EthAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthAddr = EthAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: EthAddr = EthAddr([0; 6]);

    /// Builds an address from a `u64` (lower 48 bits used).
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        EthAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The address as a `u64` (upper 16 bits zero).
    pub fn to_u64(self) -> u64 {
        let b = self.0;
        u64::from_be_bytes([0, 0, b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Returns `true` for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for EthAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error returned when parsing an [`EthAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEthAddrError;

impl fmt::Display for ParseEthAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ethernet address syntax")
    }
}

impl std::error::Error for ParseEthAddrError {}

impl FromStr for EthAddr {
    type Err = ParseEthAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let part = parts.next().ok_or(ParseEthAddrError)?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseEthAddrError)?;
        }
        if parts.next().is_some() {
            return Err(ParseEthAddrError);
        }
        Ok(EthAddr(out))
    }
}

/// An IPv4 address with conversion helpers used by match masks.
///
/// A thin wrapper over `u32` in network (big-endian) interpretation; we avoid
/// `std::net::Ipv4Addr` in hot paths because mask arithmetic on `u32` is both
/// simpler and faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Applies a bit mask, retaining only the masked-in bits.
    pub fn masked(self, mask: Ipv4) -> Ipv4 {
        Ipv4(self.0 & mask.0)
    }

    /// Builds a prefix mask of `len` leading one-bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn prefix_mask(len: u8) -> Ipv4 {
        assert!(len <= 32, "prefix length out of range");
        if len == 0 {
            Ipv4(0)
        } else {
            Ipv4(u32::MAX << (32 - len as u32))
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<std::net::Ipv4Addr> for Ipv4 {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ipv4(u32::from(a))
    }
}

impl From<Ipv4> for std::net::Ipv4Addr {
    fn from(a: Ipv4) -> Self {
        std::net::Ipv4Addr::from(a.0)
    }
}

/// Error returned when parsing an [`Ipv4`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpv4Error;

impl fmt::Display for ParseIpv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address syntax")
    }
}

impl std::error::Error for ParseIpv4Error {}

impl FromStr for Ipv4 {
    type Err = ParseIpv4Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let addr: std::net::Ipv4Addr = s.parse().map_err(|_| ParseIpv4Error)?;
        Ok(addr.into())
    }
}

/// Well-known EtherType values.
pub mod eth_type {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// IEEE 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
}

/// Well-known IP protocol numbers.
pub mod ip_proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_addr_roundtrip_text() {
        let a: EthAddr = "de:ad:be:ef:00:01".parse().unwrap();
        assert_eq!(a.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn eth_addr_rejects_bad_syntax() {
        assert!("de:ad:be:ef:00".parse::<EthAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<EthAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<EthAddr>().is_err());
    }

    #[test]
    fn eth_addr_u64_roundtrip() {
        let a = EthAddr::from_u64(0x0011_2233_4455);
        assert_eq!(a.to_string(), "00:11:22:33:44:55");
        assert_eq!(a.to_u64(), 0x0011_2233_4455);
    }

    #[test]
    fn eth_addr_multicast_bit() {
        assert!(EthAddr::BROADCAST.is_multicast());
        assert!(!EthAddr::from_u64(2).is_multicast());
        assert!(EthAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn ipv4_display_and_parse() {
        let ip = Ipv4::new(10, 13, 0, 1);
        assert_eq!(ip.to_string(), "10.13.0.1");
        assert_eq!("10.13.0.1".parse::<Ipv4>().unwrap(), ip);
        assert!("10.13.0".parse::<Ipv4>().is_err());
    }

    #[test]
    fn ipv4_prefix_masks() {
        assert_eq!(Ipv4::prefix_mask(0), Ipv4(0));
        assert_eq!(Ipv4::prefix_mask(16), Ipv4::new(255, 255, 0, 0));
        assert_eq!(Ipv4::prefix_mask(32), Ipv4(u32::MAX));
        let ip = Ipv4::new(10, 13, 7, 9);
        assert_eq!(ip.masked(Ipv4::prefix_mask(16)), Ipv4::new(10, 13, 0, 0));
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn ipv4_prefix_mask_panics_beyond_32() {
        let _ = Ipv4::prefix_mask(33);
    }

    #[test]
    fn cookie_owner_encoding() {
        let c = Cookie::with_owner(0xbeef, 0x1234_5678_9abc);
        assert_eq!(c.owner(), 0xbeef);
        assert_eq!(c.tag(), 0x1234_5678_9abc);
    }

    #[test]
    fn cookie_tag_truncates_to_lower_bits() {
        let c = Cookie::with_owner(1, u64::MAX);
        assert_eq!(c.owner(), 1);
        assert_eq!(c.tag(), (1u64 << 48) - 1);
    }

    #[test]
    fn reserved_ports() {
        assert!(PortNo::CONTROLLER.is_reserved());
        assert!(PortNo::FLOOD.is_reserved());
        assert!(!PortNo(1).is_reserved());
        assert_eq!(PortNo::FLOOD.to_string(), "flood");
        assert_eq!(PortNo(9).to_string(), "port:9");
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::MAX > Priority::DEFAULT);
        assert!(Priority::DEFAULT > Priority::MIN);
        assert_eq!(Priority::default(), Priority::DEFAULT);
    }

    #[test]
    fn buffer_id_display() {
        assert_eq!(BufferId::NO_BUFFER.to_string(), "buf:none");
        assert_eq!(BufferId(5).to_string(), "buf:5");
    }
}
