//! Filter-expression algebra: normal forms and the inclusion decision
//! procedure (paper §V-B, Algorithm 1).
//!
//! To decide whether filter `A` includes filter `B` (every call passing `B`
//! also passes `A`), the paper's algorithm:
//!
//! 1. converts `A` to CNF (`a ∧ b ∧ …`, each a disjunctive clause) and `B` to
//!    DNF (`x ∨ y ∨ …`, each a conjunctive term);
//! 2. checks every (clause, term) pair: clause `a = a₁ ∨ a₂ ∨ …` includes
//!    term `x = x₁ ∧ x₂ ∧ …` if some `aᵢ ⊇ xⱼ` on the same dimension
//!    (filters on different dimensions are independent and cannot include
//!    each other).
//!
//! The procedure is *sound* (a `true` answer implies set inclusion) but not
//! complete: unknown relations conservatively answer `false`, which in the
//! reconciliation engine errs toward flagging a violation — the safe
//! direction for a security system.

use crate::filter::{FilterExpr, SingletonFilter};

/// Expansion cap: conversions producing more than this many clauses/terms
/// abort, making [`includes`] answer `false` (unknown). Paper-scale filters
/// (10–20 singletons) stay far below this.
pub const MAX_CLAUSES: usize = 4096;

/// A possibly-negated singleton filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// The singleton filter.
    pub filter: SingletonFilter,
    /// Whether the literal is negated.
    pub negated: bool,
}

impl Literal {
    fn pos(filter: SingletonFilter) -> Self {
        Literal {
            filter,
            negated: false,
        }
    }

    fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// Sound literal-level inclusion: does `self` allow everything `other`
    /// allows?
    ///
    /// Mixed-polarity pairs are never provable: under the paper's vacuous-
    /// pass semantics (a filter that does not inspect a call's attributes
    /// passes it, §IV-B), any two positive filters share all attribute-free
    /// calls, so `¬A ⊇ B` cannot hold — an attribute-free call passes `B`
    /// (vacuously) yet fails `¬A` (because it passes `A` vacuously).
    pub fn includes(&self, other: &Literal) -> bool {
        match (self.negated, other.negated) {
            (false, false) => self.filter.includes(&other.filter),
            // ¬A ⊇ ¬B  ⟺  B ⊇ A (contrapositive; vacuous calls pass both).
            (true, true) => other.filter.includes(&self.filter),
            (true, false) | (false, true) => false,
        }
    }
}

/// Internal normal-form tree with explicit False (which [`FilterExpr`] does
/// not need to represent).
#[derive(Debug, Clone)]
enum Nnf {
    True,
    False,
    Lit(Literal),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
}

/// Pushes negations down to the literals (negation normal form).
fn to_nnf(expr: &FilterExpr, negate: bool) -> Nnf {
    match expr {
        FilterExpr::True => {
            if negate {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        FilterExpr::Atom(f) => {
            let lit = Literal::pos(f.clone());
            Nnf::Lit(if negate { lit.negate() } else { lit })
        }
        FilterExpr::And(xs) => {
            let kids = xs.iter().map(|x| to_nnf(x, negate)).collect();
            if negate {
                Nnf::Or(kids)
            } else {
                Nnf::And(kids)
            }
        }
        FilterExpr::Or(xs) => {
            let kids = xs.iter().map(|x| to_nnf(x, negate)).collect();
            if negate {
                Nnf::And(kids)
            } else {
                Nnf::Or(kids)
            }
        }
        FilterExpr::Not(x) => to_nnf(x, !negate),
    }
}

/// A conjunction of clauses (CNF) or disjunction of terms (DNF), depending
/// on context. Each inner vec is a clause (∨ of literals) or term (∧ of
/// literals).
pub type ClauseSet = Vec<Vec<Literal>>;

/// Converts an expression to CNF.
///
/// Returns `None` when the conversion exceeds [`MAX_CLAUSES`].
/// The empty clause set means *true*; a set containing an empty clause means
/// *false*.
pub fn to_cnf(expr: &FilterExpr) -> Option<ClauseSet> {
    cnf_of(&to_nnf(expr, false))
}

fn cnf_of(n: &Nnf) -> Option<ClauseSet> {
    match n {
        Nnf::True => Some(vec![]),
        Nnf::False => Some(vec![vec![]]),
        Nnf::Lit(l) => Some(vec![vec![l.clone()]]),
        Nnf::And(kids) => {
            let mut out = Vec::new();
            for k in kids {
                out.extend(cnf_of(k)?);
                if out.len() > MAX_CLAUSES {
                    return None;
                }
            }
            Some(out)
        }
        Nnf::Or(kids) => {
            // CNF(or) = cross product of the children's clauses.
            let mut acc: ClauseSet = vec![vec![]];
            for k in kids {
                let kc = cnf_of(k)?;
                let mut next = Vec::with_capacity(acc.len() * kc.len().max(1));
                for a in &acc {
                    for c in &kc {
                        let mut merged = a.clone();
                        merged.extend(c.iter().cloned());
                        next.push(merged);
                        if next.len() > MAX_CLAUSES {
                            return None;
                        }
                    }
                }
                // OR with `true` (empty clause set) absorbs everything.
                if kc.is_empty() {
                    return Some(vec![]);
                }
                acc = next;
            }
            Some(acc)
        }
    }
}

/// Converts an expression to DNF.
///
/// Returns `None` when the conversion exceeds [`MAX_CLAUSES`].
/// The empty term set means *false*; a set containing an empty term means
/// *true*.
pub fn to_dnf(expr: &FilterExpr) -> Option<ClauseSet> {
    dnf_of(&to_nnf(expr, false))
}

fn dnf_of(n: &Nnf) -> Option<ClauseSet> {
    match n {
        Nnf::True => Some(vec![vec![]]),
        Nnf::False => Some(vec![]),
        Nnf::Lit(l) => Some(vec![vec![l.clone()]]),
        Nnf::Or(kids) => {
            let mut out = Vec::new();
            for k in kids {
                out.extend(dnf_of(k)?);
                if out.len() > MAX_CLAUSES {
                    return None;
                }
            }
            Some(out)
        }
        Nnf::And(kids) => {
            // DNF(and) = cross product of the children's terms.
            let mut acc: ClauseSet = vec![vec![]];
            for k in kids {
                let kd = dnf_of(k)?;
                if kd.is_empty() {
                    return Some(vec![]); // AND with false
                }
                let mut next = Vec::with_capacity(acc.len() * kd.len());
                for a in &acc {
                    for t in &kd {
                        let mut merged = a.clone();
                        merged.extend(t.iter().cloned());
                        next.push(merged);
                        if next.len() > MAX_CLAUSES {
                            return None;
                        }
                    }
                }
                acc = next;
            }
            Some(acc)
        }
    }
}

/// Does a disjunctive clause include a conjunctive term?
///
/// Paper Algorithm 1, step 2: `a ⊇ x` if there exist `aᵢ ⊇ xⱼ`.
fn clause_includes_term(clause: &[Literal], term: &[Literal]) -> bool {
    clause.iter().any(|a| term.iter().any(|x| a.includes(x)))
}

/// Decides whether filter `a` includes filter `b` (paper Algorithm 1).
///
/// Sound but not complete: `false` can mean "unknown". `true` guarantees
/// every API call passing `b` also passes `a`.
pub fn includes(a: &FilterExpr, b: &FilterExpr) -> bool {
    let Some(cnf_a) = to_cnf(a) else { return false };
    let Some(dnf_b) = to_dnf(b) else { return false };
    // A is true: includes everything.
    if cnf_a.is_empty() {
        return true;
    }
    // B is false: included in everything.
    if dnf_b.is_empty() {
        return true;
    }
    cnf_a.iter().all(|clause| {
        dnf_b.iter().all(|term| {
            // An empty clause is false (A rejects all): nothing passes it.
            // An empty term is true (B accepts all): only a true-like clause
            // could include it, which clause_includes_term cannot prove.
            clause_includes_term(clause, term)
        })
    })
}

/// Filter-expression equivalence: mutual inclusion.
pub fn equivalent(a: &FilterExpr, b: &FilterExpr) -> bool {
    includes(a, b) && includes(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Ownership, SingletonFilter};
    use sdnshield_openflow::types::Ipv4;

    fn ip(prefix: u8) -> FilterExpr {
        FilterExpr::atom(SingletonFilter::ip_dst_prefix(
            Ipv4::new(10, 13, 0, 0),
            prefix,
        ))
    }

    fn ip_at(a: u8, b: u8, prefix: u8) -> FilterExpr {
        FilterExpr::atom(SingletonFilter::ip_dst_prefix(
            Ipv4::new(a, b, 0, 0),
            prefix,
        ))
    }

    fn own() -> FilterExpr {
        FilterExpr::atom(SingletonFilter::Ownership(Ownership::OwnFlows))
    }

    fn maxprio(p: u16) -> FilterExpr {
        FilterExpr::atom(SingletonFilter::MaxPriority(p))
    }

    #[test]
    fn atoms_follow_singleton_inclusion() {
        assert!(includes(&ip(8), &ip(16)));
        assert!(!includes(&ip(16), &ip(8)));
        assert!(includes(&ip(16), &ip(16)));
    }

    #[test]
    fn true_includes_everything() {
        assert!(includes(&FilterExpr::True, &ip(16)));
        assert!(includes(&FilterExpr::True, &own().and(ip(16))));
        assert!(!includes(&ip(16), &FilterExpr::True));
    }

    #[test]
    fn or_widens_and_narrows() {
        // The paper's running example: OWN_FLOWS OR IP_DST 10.13/16.
        let granted = own().or(ip(16));
        assert!(includes(&granted, &ip(16)));
        assert!(includes(&granted, &own()));
        assert!(includes(&granted, &ip(24)));
        assert!(!includes(&granted, &ip(8)), "wider subnet not covered");
        assert!(!includes(&ip(16), &granted));
    }

    #[test]
    fn and_narrows() {
        let a = ip(16).and(maxprio(10));
        assert!(includes(&ip(16), &a));
        assert!(includes(&maxprio(10), &a));
        assert!(!includes(&a, &ip(16)));
        assert!(includes(&a, &ip(24).and(maxprio(5))));
        assert!(!includes(&a, &ip(24).and(maxprio(20))));
    }

    #[test]
    fn different_dimensions_are_independent() {
        assert!(!includes(&own(), &ip(16)));
        assert!(!includes(&ip(16), &own()));
    }

    #[test]
    fn distributivity_respected() {
        // (A OR B) AND C  ≡  (A AND C) OR (B AND C)
        let lhs = own().or(ip(16)).and(maxprio(10));
        let rhs = own().and(maxprio(10)).or(ip(16).and(maxprio(10)));
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn de_morgan_respected() {
        // NOT (A OR B) ≡ NOT A AND NOT B
        let lhs = own().or(ip(16)).not();
        let rhs = own().not().and(ip(16).not());
        assert!(equivalent(&lhs, &rhs));
        // Double negation.
        assert!(equivalent(&ip(16).not().not(), &ip(16)));
    }

    #[test]
    fn negated_literal_inclusion() {
        // ¬narrow includes ¬wide (complement flips inclusion).
        let not_wide = ip(8).not();
        let not_narrow = ip(16).not();
        assert!(includes(&not_narrow, &not_wide));
        assert!(!includes(&not_wide, &not_narrow));
    }

    #[test]
    fn mixed_polarity_never_provable() {
        // Under vacuous-pass semantics, ¬(10.13/16) does NOT include
        // 10.14/16 even though the subnets are disjoint: an attribute-free
        // call (e.g. read_topology) passes 10.14/16 vacuously but fails the
        // negation. The algebra must answer false.
        let not_13 = ip(16).not();
        let in_14 = ip_at(10, 14, 16);
        assert!(!includes(&not_13, &in_14));
        assert!(!includes(&not_13, &ip(24)));
        // Same for priority bounds.
        let lhs = maxprio(5).not();
        let rhs = FilterExpr::atom(SingletonFilter::MinPriority(6));
        assert!(!includes(&lhs, &rhs));
    }

    #[test]
    fn cnf_dnf_shapes() {
        let e = own().or(ip(16)).and(maxprio(10));
        let cnf = to_cnf(&e).unwrap();
        // (own ∨ ip) ∧ (maxprio): two clauses.
        assert_eq!(cnf.len(), 2);
        let dnf = to_dnf(&e).unwrap();
        // (own ∧ maxprio) ∨ (ip ∧ maxprio): two terms of two literals.
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|t| t.len() == 2));
    }

    #[test]
    fn degenerate_forms() {
        assert_eq!(
            to_cnf(&FilterExpr::True).unwrap(),
            Vec::<Vec<Literal>>::new()
        );
        assert_eq!(
            to_dnf(&FilterExpr::True).unwrap(),
            vec![Vec::<Literal>::new()]
        );
        let f = FilterExpr::True.not();
        assert_eq!(to_cnf(&f).unwrap(), vec![Vec::<Literal>::new()]);
        assert_eq!(to_dnf(&f).unwrap(), Vec::<Vec<Literal>>::new());
        // False is included in everything; nothing (but true) includes… false
        // includes false.
        assert!(includes(&ip(16), &f));
        assert!(includes(&f, &f));
        assert!(!includes(&f, &ip(16)));
    }

    #[test]
    fn blowup_is_bounded() {
        // Build (a1 ∨ b1) ∧ (a2 ∨ b2) ∧ … deep enough that DNF explodes past
        // the cap; includes() must answer false, not hang or panic.
        let mut expr = FilterExpr::True;
        for i in 0..16 {
            let a = ip_at(10, i as u8, 24);
            let b = ip_at(172, i as u8, 24);
            expr = expr.and(a.or(b));
        }
        assert_eq!(to_dnf(&expr), None);
        assert!(!includes(&ip(8), &expr));
        // CNF of the same expression is small and fine.
        assert!(to_cnf(&expr).is_some());
    }

    #[test]
    fn inclusion_is_transitive_on_samples() {
        let wide = ip(8);
        let mid = ip(16);
        let narrow = ip(24).and(maxprio(10));
        assert!(includes(&wide, &mid));
        assert!(includes(&mid, &narrow));
        assert!(includes(&wide, &narrow));
    }
}
