//! Distributable security-policy templates (paper §III): "In real
//! deployment, those security policies for specific threats can be
//! distributed as templates, so as to lower the hurdle to have basic
//! protection."
//!
//! One template per §II attack class, plus role templates for common app
//! categories. Each is a policy-language source string so administrators can
//! read, edit, and compose them before feeding them to the
//! [`crate::reconcile::Reconciler`].

use crate::lex::SyntaxError;
use crate::policy::{parse_policy, Policy};

/// Class 1 (intrusion to data plane): an app must not combine data-plane
/// injection with an outside command channel — a remote attacker could
/// inject arbitrary packets.
pub const CLASS1_TEMPLATE: &str = "\
# Class 1: no remote-controlled packet injection.
ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }
";

/// Class 2 (information leakage): an app must not combine broad reads with
/// an outside channel — what it sees could leave the domain.
pub const CLASS2_TEMPLATE: &str = "\
# Class 2: apps that see the network must not talk to the outside.
ASSERT EITHER { PERM network_access } OR { PERM read_flow_table }
ASSERT EITHER { PERM network_access } OR { PERM read_payload }
";

/// Class 3 (rule manipulation): rule writers stay within forwarding actions
/// on their own flows.
pub const CLASS3_TEMPLATE: &str = "\
# Class 3: rule writers are bounded to forwarding their own flows.
LET ruleWriterBound = {
  PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
  PERM delete_flow LIMITING OWN_FLOWS
  PERM visible_topology
  PERM pkt_in_event
  PERM read_payload
  PERM send_pkt_out LIMITING FROM_PKT_IN
  PERM flow_event
  PERM read_statistics
}
ASSERT APP app <= ruleWriterBound
";

/// Class 4 (attacking other apps): header rewrites are what dynamic-flow
/// tunneling abuses; deny them together with deletion of foreign rules.
pub const CLASS4_TEMPLATE: &str = "\
# Class 4: no header-rewrite tunnels, no foreign-rule deletion.
LET noTunnelBound = {
  PERM insert_flow LIMITING ACTION FORWARD OR ACTION DROP
  PERM delete_flow LIMITING OWN_FLOWS
  PERM visible_topology
  PERM pkt_in_event
  PERM read_payload
  PERM send_pkt_out
  PERM flow_event
  PERM read_statistics
  PERM topology_event
}
ASSERT APP app <= noTunnelBound
";

/// Role template: monitoring apps (the §V-A example) read topology and
/// port-level statistics and talk only to collectors the administrator
/// names via the `CollectorRange` stub.
pub const MONITOR_ROLE_TEMPLATE: &str = "\
# Role: monitoring. Complete CollectorRange before use, e.g.
#   LET CollectorRange = { IP_DST 192.168.0.0 MASK 255.255.0.0 }
LET monitorBound = {
  PERM visible_topology
  PERM topology_event
  PERM read_statistics LIMITING PORT_LEVEL
  PERM network_access LIMITING CollectorRange
}
ASSERT APP app <= monitorBound
";

/// All class templates in order.
pub const CLASS_TEMPLATES: [&str; 4] = [
    CLASS1_TEMPLATE,
    CLASS2_TEMPLATE,
    CLASS3_TEMPLATE,
    CLASS4_TEMPLATE,
];

/// Parses and concatenates a set of template sources into one policy.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] (templates are constants, so this only
/// fires for caller-supplied additions).
///
/// # Examples
///
/// ```
/// use sdnshield_core::templates::{compose, CLASS1_TEMPLATE, CLASS2_TEMPLATE};
///
/// let policy = compose([CLASS1_TEMPLATE, CLASS2_TEMPLATE])?;
/// assert_eq!(policy.constraints().count(), 3);
/// # Ok::<(), sdnshield_core::lex::SyntaxError>(())
/// ```
pub fn compose<'a>(sources: impl IntoIterator<Item = &'a str>) -> Result<Policy, SyntaxError> {
    let mut all = Policy::default();
    for src in sources {
        let p = parse_policy(src)?;
        all.stmts.extend(p.stmts);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_manifest;
    use crate::reconcile::Reconciler;
    use crate::token::PermissionToken;

    #[test]
    fn all_templates_parse() {
        for (i, t) in CLASS_TEMPLATES.iter().enumerate() {
            parse_policy(t).unwrap_or_else(|e| panic!("class {} template: {e}", i + 1));
        }
        parse_policy(MONITOR_ROLE_TEMPLATE).unwrap();
    }

    #[test]
    fn class1_template_truncates_injection_combo() {
        let mut rec = Reconciler::new(parse_policy(CLASS1_TEMPLATE).unwrap());
        rec.register_app(
            "m",
            parse_manifest("PERM network_access\nPERM send_pkt_out").unwrap(),
        );
        let report = rec.reconcile("m").unwrap();
        assert!(!report.is_clean());
        assert!(!report
            .reconciled
            .contains_token(PermissionToken::SendPktOut));
    }

    #[test]
    fn class3_template_bounds_rule_writers() {
        let mut rec = Reconciler::new(parse_policy(CLASS3_TEMPLATE).unwrap());
        rec.register_app(
            "router",
            parse_manifest("PERM insert_flow\nPERM pkt_in_event").unwrap(),
        );
        let report = rec.reconcile("router").unwrap();
        assert!(!report.is_clean());
        // insert_flow survives, bounded.
        let f = report
            .reconciled
            .filter(PermissionToken::InsertFlow)
            .unwrap();
        let bound = crate::lang::parse_filter("ACTION FORWARD AND OWN_FLOWS").unwrap();
        assert!(crate::algebra::includes(&bound, f));
    }

    #[test]
    fn class4_template_denies_rewrites() {
        let mut rec = Reconciler::new(parse_policy(CLASS4_TEMPLATE).unwrap());
        rec.register_app(
            "tunneler",
            parse_manifest("PERM insert_flow LIMITING ACTION MODIFY TCP_DST").unwrap(),
        );
        let report = rec.reconcile("tunneler").unwrap();
        assert!(!report.is_clean());
        let f = report
            .reconciled
            .filter(PermissionToken::InsertFlow)
            .unwrap();
        // The surviving grant cannot include the rewrite capability.
        let rewrite = crate::lang::parse_filter("ACTION MODIFY TCP_DST").unwrap();
        assert!(!crate::algebra::includes(f, &rewrite));
    }

    #[test]
    fn monitor_role_with_stub_completion() {
        let policy = compose([
            "LET CollectorRange = { IP_DST 192.168.0.0 MASK 255.255.0.0 }",
            MONITOR_ROLE_TEMPLATE,
        ])
        .unwrap();
        let mut rec = Reconciler::new(policy);
        rec.register_app(
            "mon",
            parse_manifest(
                "PERM visible_topology\nPERM read_statistics\nPERM network_access LIMITING CollectorRange",
            )
            .unwrap(),
        );
        let report = rec.reconcile("mon").unwrap();
        // Stats narrowed to port level by the boundary.
        let stats = report
            .reconciled
            .filter(PermissionToken::ReadStatistics)
            .unwrap();
        let port = crate::lang::parse_filter("PORT_LEVEL").unwrap();
        assert!(crate::algebra::includes(&port, stats));
        assert!(report.reconciled.stub_names().is_empty());
    }

    #[test]
    fn composed_templates_apply_together() {
        let policy = compose(CLASS_TEMPLATES).unwrap();
        let mut rec = Reconciler::new(policy);
        rec.register_app(
            "kitchen-sink",
            parse_manifest(
                "PERM network_access\nPERM send_pkt_out\nPERM read_flow_table\nPERM insert_flow",
            )
            .unwrap(),
        );
        let report = rec.reconcile("kitchen-sink").unwrap();
        assert!(report.violations.len() >= 2, "{:#?}", report.violations);
        // The reconciled manifest passes every template on a second pass.
        let mut rec2 = Reconciler::new(compose(CLASS_TEMPLATES).unwrap());
        rec2.register_app("kitchen-sink", report.reconciled);
        assert!(rec2.reconcile("kitchen-sink").unwrap().is_clean());
    }
}
