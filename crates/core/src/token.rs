//! Permission tokens: the coarse-grained layer of SDNShield's two-level
//! permission abstraction (paper §IV-A, Table II).
//!
//! Tokens partition app behavior along two dimensions — SDN resource and
//! action (read / write / event) — plus the host-system resources apps reach
//! via system calls. Tokens are orthogonal: granting one never implies
//! another.

use std::fmt;
use std::str::FromStr;

/// A coarse-grained permission token (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PermissionToken {
    // Flow table resource.
    /// Read flow-table entries.
    ReadFlowTable,
    /// Insert (and modify) flow rules.
    InsertFlow,
    /// Delete flow rules.
    DeleteFlow,
    /// Receive flow-removed / flow-change callbacks.
    FlowEvent,
    // Topology resource.
    /// See the (possibly filtered or virtualized) topology.
    VisibleTopology,
    /// Change the controller's view of the physical topology.
    ModifyTopology,
    /// Receive topology-change callbacks.
    TopologyEvent,
    // Statistics & errors.
    /// Read switch/port/flow statistics.
    ReadStatistics,
    /// Receive error callbacks.
    ErrorEvent,
    // Packet-in / packet-out.
    /// Read the payload of packet-in messages.
    ReadPayload,
    /// Send packet-out messages.
    SendPktOut,
    /// Receive packet-in callbacks.
    PktInEvent,
    // Host system resources.
    /// Network access outside the control channel.
    HostNetwork,
    /// File-system access (shell, config files, …).
    FileSystem,
    /// Process/runtime control (spawn processes, load code).
    ProcessRuntime,
}

impl PermissionToken {
    /// All tokens, in a stable order.
    pub const ALL: [PermissionToken; 15] = [
        PermissionToken::ReadFlowTable,
        PermissionToken::InsertFlow,
        PermissionToken::DeleteFlow,
        PermissionToken::FlowEvent,
        PermissionToken::VisibleTopology,
        PermissionToken::ModifyTopology,
        PermissionToken::TopologyEvent,
        PermissionToken::ReadStatistics,
        PermissionToken::ErrorEvent,
        PermissionToken::ReadPayload,
        PermissionToken::SendPktOut,
        PermissionToken::PktInEvent,
        PermissionToken::HostNetwork,
        PermissionToken::FileSystem,
        PermissionToken::ProcessRuntime,
    ];

    /// Position of this token in [`PermissionToken::ALL`].
    ///
    /// The enum declares its variants in exactly `ALL`'s order, so the
    /// discriminant *is* the index — a constant-time cast rather than a
    /// linear scan. The `token_index_agrees` test in `engine.rs` asserts
    /// this stays true for every token.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The canonical lower-snake-case name used in the permission language.
    pub fn name(self) -> &'static str {
        match self {
            PermissionToken::ReadFlowTable => "read_flow_table",
            PermissionToken::InsertFlow => "insert_flow",
            PermissionToken::DeleteFlow => "delete_flow",
            PermissionToken::FlowEvent => "flow_event",
            PermissionToken::VisibleTopology => "visible_topology",
            PermissionToken::ModifyTopology => "modify_topology",
            PermissionToken::TopologyEvent => "topology_event",
            PermissionToken::ReadStatistics => "read_statistics",
            PermissionToken::ErrorEvent => "error_event",
            PermissionToken::ReadPayload => "read_payload",
            PermissionToken::SendPktOut => "send_pkt_out",
            PermissionToken::PktInEvent => "pkt_in_event",
            PermissionToken::HostNetwork => "host_network",
            PermissionToken::FileSystem => "file_system",
            PermissionToken::ProcessRuntime => "process_runtime",
        }
    }

    /// The resource group the token belongs to (Table II's left column).
    pub fn resource(self) -> Resource {
        match self {
            PermissionToken::ReadFlowTable
            | PermissionToken::InsertFlow
            | PermissionToken::DeleteFlow
            | PermissionToken::FlowEvent => Resource::FlowTable,
            PermissionToken::VisibleTopology
            | PermissionToken::ModifyTopology
            | PermissionToken::TopologyEvent => Resource::Topology,
            PermissionToken::ReadStatistics | PermissionToken::ErrorEvent => {
                Resource::StatisticsAndErrors
            }
            PermissionToken::ReadPayload
            | PermissionToken::SendPktOut
            | PermissionToken::PktInEvent => Resource::PacketInOut,
            PermissionToken::HostNetwork
            | PermissionToken::FileSystem
            | PermissionToken::ProcessRuntime => Resource::HostSystem,
        }
    }

    /// The action class of the token (read / write / event).
    pub fn action(self) -> ActionClass {
        match self {
            PermissionToken::ReadFlowTable
            | PermissionToken::VisibleTopology
            | PermissionToken::ReadStatistics
            | PermissionToken::ReadPayload => ActionClass::Read,
            PermissionToken::InsertFlow
            | PermissionToken::DeleteFlow
            | PermissionToken::ModifyTopology
            | PermissionToken::SendPktOut
            | PermissionToken::HostNetwork
            | PermissionToken::FileSystem
            | PermissionToken::ProcessRuntime => ActionClass::Write,
            PermissionToken::FlowEvent
            | PermissionToken::TopologyEvent
            | PermissionToken::ErrorEvent
            | PermissionToken::PktInEvent => ActionClass::Event,
        }
    }
}

/// SDN/host resource groups (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// Switch flow tables.
    FlowTable,
    /// The network topology.
    Topology,
    /// Statistics counters and error notifications.
    StatisticsAndErrors,
    /// Packet-in / packet-out messages.
    PacketInOut,
    /// The host machine's OS resources.
    HostSystem,
}

/// Action classes: what an app does to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionClass {
    /// Observing state.
    Read,
    /// Mutating state or emitting messages.
    Write,
    /// Receiving callbacks.
    Event,
}

impl fmt::Display for PermissionToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`PermissionToken`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTokenError {
    name: String,
}

impl fmt::Display for ParseTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown permission token `{}`", self.name)
    }
}

impl std::error::Error for ParseTokenError {}

impl FromStr for PermissionToken {
    type Err = ParseTokenError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Aliases used in the paper's prose and examples.
        let canonical = match s {
            "network_access" => "host_network",
            "read_topology" => "visible_topology",
            "send_packet_out" => "send_pkt_out",
            other => other,
        };
        PermissionToken::ALL
            .iter()
            .find(|t| t.name() == canonical)
            .copied()
            .ok_or_else(|| ParseTokenError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in PermissionToken::ALL {
            assert_eq!(t.name().parse::<PermissionToken>().unwrap(), t);
            assert_eq!(t.to_string(), t.name());
        }
    }

    #[test]
    fn aliases_accepted() {
        assert_eq!(
            "network_access".parse::<PermissionToken>().unwrap(),
            PermissionToken::HostNetwork
        );
        assert_eq!(
            "read_topology".parse::<PermissionToken>().unwrap(),
            PermissionToken::VisibleTopology
        );
        assert_eq!(
            "send_packet_out".parse::<PermissionToken>().unwrap(),
            PermissionToken::SendPktOut
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let err = "launch_missiles".parse::<PermissionToken>().unwrap_err();
        assert!(err.to_string().contains("launch_missiles"));
    }

    #[test]
    fn resource_and_action_partitions() {
        use std::collections::BTreeMap;
        let mut by_resource: BTreeMap<_, usize> = BTreeMap::new();
        for t in PermissionToken::ALL {
            *by_resource.entry(t.resource()).or_default() += 1;
        }
        assert_eq!(by_resource[&Resource::FlowTable], 4);
        assert_eq!(by_resource[&Resource::Topology], 3);
        assert_eq!(by_resource[&Resource::StatisticsAndErrors], 2);
        assert_eq!(by_resource[&Resource::PacketInOut], 3);
        assert_eq!(by_resource[&Resource::HostSystem], 3);
        assert_eq!(PermissionToken::InsertFlow.action(), ActionClass::Write);
        assert_eq!(PermissionToken::PktInEvent.action(), ActionClass::Event);
        assert_eq!(PermissionToken::ReadPayload.action(), ActionClass::Read);
    }

    #[test]
    fn all_is_exhaustive_and_distinct() {
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = PermissionToken::ALL.iter().collect();
        assert_eq!(set.len(), PermissionToken::ALL.len());
    }
}
