//! Exact satisfiability, implication, and equivalence over filter
//! expressions (DESIGN.md §14).
//!
//! The Algorithm-1 machinery in [`crate::algebra`] answers inclusion
//! questions pairwise over normal forms: sound, but incomplete. This module
//! decides them *exactly* by treating every distinct [`SingletonFilter`] as
//! a propositional atom, adding theory axioms derived from the filter
//! lattice (`includes` / `disjoint_with` plus comparison- and prefix-aware
//! axioms no pairwise pass can see), and running a small DPLL solver over
//! the Tseitin encoding. Atom universes in real manifests are tiny (a
//! handful of literals per token), so exhaustive search is instantaneous.
//!
//! Semantics match the paper's predicate algebra — a filter denotes the
//! *set of behaviors it authorizes* — which is also the interpretation the
//! SH001/SH002/SH008 lints have always used. Runtime `eval` is deliberately
//! more liberal (vacuous passes on calls without the inspected attribute,
//! overlap- instead of subsumption-checks on reads); the lint story for
//! that gap is unchanged and documented per code.
//!
//! Stub filters get no constant folding and no axioms: an uncompleted stub
//! is an *unknown* filter chosen later by the site policy, so it behaves as
//! a free variable (two references to the same stub name share one
//! variable).

use crate::eval::{classify, LiteralClass};
use crate::filter::{FilterExpr, SingletonFilter};
use sdnshield_openflow::flow_match::MaskedIpv4;
use sdnshield_openflow::types::Ipv4;

/// A satisfying assignment over the real (non-auxiliary) atoms of a query:
/// each entry pairs an atom with the truth value the model gives it.
pub type Model = Vec<(SingletonFilter, bool)>;

/// Folds atoms that are decidable from the manifest alone. Stubs are
/// *not* folded even though enforcement treats them as constant-false:
/// at analysis time a stub stands for a filter the site policy will
/// substitute, i.e. a free variable.
fn fold(f: &SingletonFilter) -> Option<bool> {
    if matches!(f, SingletonFilter::Stub(_)) {
        return None;
    }
    match classify(f) {
        LiteralClass::Static(b) => Some(b),
        _ => None,
    }
}

/// Simplified propositional skeleton with constants folded away.
enum Node {
    Const(bool),
    Var(usize),
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
}

/// Atom interner shared by every expression in one query so that the same
/// filter maps to the same variable on both sides of an implication.
#[derive(Default)]
struct Interner {
    atoms: Vec<SingletonFilter>,
}

impl Interner {
    fn intern(&mut self, f: &SingletonFilter) -> usize {
        if let Some(i) = self.atoms.iter().position(|a| a == f) {
            return i;
        }
        self.atoms.push(f.clone());
        self.atoms.len() - 1
    }

    fn lower(&mut self, e: &FilterExpr) -> Node {
        match e {
            FilterExpr::True => Node::Const(true),
            FilterExpr::Atom(f) => match fold(f) {
                Some(b) => Node::Const(b),
                None => Node::Var(self.intern(f)),
            },
            FilterExpr::Not(inner) => match self.lower(inner) {
                Node::Const(b) => Node::Const(!b),
                n => Node::Not(Box::new(n)),
            },
            FilterExpr::And(kids) => {
                let mut out = Vec::new();
                for k in kids {
                    match self.lower(k) {
                        Node::Const(false) => return Node::Const(false),
                        Node::Const(true) => {}
                        n => out.push(n),
                    }
                }
                if out.is_empty() {
                    Node::Const(true)
                } else {
                    Node::And(out)
                }
            }
            FilterExpr::Or(kids) => {
                let mut out = Vec::new();
                for k in kids {
                    match self.lower(k) {
                        Node::Const(true) => return Node::Const(true),
                        Node::Const(false) => {}
                        n => out.push(n),
                    }
                }
                if out.is_empty() {
                    Node::Const(false)
                } else {
                    Node::Or(out)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Theory axioms
// ---------------------------------------------------------------------------

/// True when the pair jointly exhausts its dimension: every behavior
/// satisfies at least one side. `MAX_PRIORITY n` and `MIN_PRIORITY m`
/// cover all of `u16` whenever `m <= n + 1`.
fn exhaustive_pair(a: &SingletonFilter, b: &SingletonFilter) -> bool {
    use SingletonFilter::*;
    match (a, b) {
        (MaxPriority(n), MinPriority(m)) | (MinPriority(m), MaxPriority(n)) => {
            u32::from(*m) <= u32::from(*n) + 1
        }
        _ => false,
    }
}

/// If `b` and `c` are flow-space predicates identical except for one masked
/// IP field whose masked sets are the two halves of a common parent
/// (same mask, addresses differing in exactly one masked bit), returns the
/// parent predicate `b ∪ c`. The union of any other predicate pair is not
/// itself a predicate, so no axiom is emitted for it.
fn sibling_union(b: &SingletonFilter, c: &SingletonFilter) -> Option<SingletonFilter> {
    let (SingletonFilter::Pred(mb), SingletonFilter::Pred(mc)) = (b, c) else {
        return None;
    };
    fn halves(x: &MaskedIpv4, y: &MaskedIpv4) -> Option<MaskedIpv4> {
        if x.mask != y.mask {
            return None;
        }
        let diff = (x.addr.0 & x.mask.0) ^ (y.addr.0 & y.mask.0);
        if diff.count_ones() != 1 || diff & x.mask.0 != diff {
            return None;
        }
        Some(MaskedIpv4::new(
            Ipv4(x.addr.0 & !diff),
            Ipv4(x.mask.0 & !diff),
        ))
    }
    // Identical except ip_dst?
    let mut base_b = mb.clone();
    let mut base_c = mc.clone();
    base_b.ip_dst = None;
    base_c.ip_dst = None;
    if base_b == base_c {
        if let (Some(db), Some(dc)) = (&mb.ip_dst, &mc.ip_dst) {
            if let Some(parent) = halves(db, dc) {
                let mut m = base_b;
                m.ip_dst = Some(parent);
                return Some(SingletonFilter::Pred(m));
            }
        }
    }
    // Identical except ip_src?
    let mut base_b = mb.clone();
    let mut base_c = mc.clone();
    base_b.ip_src = None;
    base_c.ip_src = None;
    if base_b == base_c {
        if let (Some(sb), Some(sc)) = (&mb.ip_src, &mc.ip_src) {
            if let Some(parent) = halves(sb, sc) {
                let mut m = base_b;
                m.ip_src = Some(parent);
                return Some(SingletonFilter::Pred(m));
            }
        }
    }
    None
}

/// The theory clauses constraining an atom universe, as `(var, positive)`
/// literal lists. Exposed so the differential proptest can enumerate
/// truth tables under exactly the axioms the solver uses:
///
/// * implication — `b ⊆ a` yields `(¬b ∨ a)`;
/// * disjointness — `a ∩ b = ∅` yields `(¬a ∨ ¬b)`;
/// * exhaustion — `MAX_PRIORITY n` / `MIN_PRIORITY m` with `m ≤ n + 1`
///   yields `(a ∨ b)`;
/// * prefix-sibling cover — predicates `b`, `c` splitting a parent prefix
///   `P` yield `(¬a ∨ b ∨ c)` for every predicate `a ⊆ P`. This is the
///   axiom pairwise reasoning cannot express: it relates *three* atoms.
pub fn theory_clauses(atoms: &[SingletonFilter]) -> Vec<Vec<(usize, bool)>> {
    let n = atoms.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            // No dimension gate: `includes`/`disjoint_with` already return
            // false for unrelated pairs, and the MAX/MIN_PRIORITY axioms
            // deliberately span two `Dimension` variants.
            let (a, b) = (&atoms[i], &atoms[j]);
            if a.includes(b) {
                out.push(vec![(j, false), (i, true)]);
            }
            if b.includes(a) {
                out.push(vec![(i, false), (j, true)]);
            }
            if a.disjoint_with(b) || b.disjoint_with(a) {
                out.push(vec![(i, false), (j, false)]);
            }
            if exhaustive_pair(a, b) {
                out.push(vec![(i, true), (j, true)]);
            }
        }
    }
    // Cover axioms over sibling prefix pairs.
    for j in 0..n {
        for k in (j + 1)..n {
            let Some(parent) = sibling_union(&atoms[j], &atoms[k]) else {
                continue;
            };
            for (i, a) in atoms.iter().enumerate() {
                if i == j || i == k || !matches!(a, SingletonFilter::Pred(_)) {
                    continue;
                }
                if parent.includes(a) {
                    out.push(vec![(i, false), (j, true), (k, true)]);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tseitin + DPLL
// ---------------------------------------------------------------------------

/// CNF under construction. Literals are DIMACS-style: variable `v` is the
/// literal `v + 1`; negation flips the sign.
struct Cnf {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
}

impl Cnf {
    fn fresh(&mut self) -> i32 {
        self.nvars += 1;
        self.nvars as i32
    }

    fn tseitin(&mut self, node: &Node) -> i32 {
        match node {
            Node::Const(b) => {
                let v = self.fresh();
                self.clauses.push(vec![if *b { v } else { -v }]);
                v
            }
            Node::Var(i) => (*i + 1) as i32,
            Node::Not(inner) => -self.tseitin(inner),
            Node::And(kids) => {
                let lits: Vec<i32> = kids.iter().map(|k| self.tseitin(k)).collect();
                let v = self.fresh();
                for &l in &lits {
                    self.clauses.push(vec![-v, l]);
                }
                let mut long = vec![v];
                long.extend(lits.iter().map(|&l| -l));
                self.clauses.push(long);
                v
            }
            Node::Or(kids) => {
                let lits: Vec<i32> = kids.iter().map(|k| self.tseitin(k)).collect();
                let v = self.fresh();
                for &l in &lits {
                    self.clauses.push(vec![v, -l]);
                }
                let mut long = vec![-v];
                long.extend(lits.iter().copied());
                self.clauses.push(long);
                v
            }
        }
    }
}

fn lit_value(assign: &[Option<bool>], lit: i32) -> Option<bool> {
    assign[(lit.unsigned_abs() as usize) - 1].map(|b| if lit > 0 { b } else { !b })
}

/// Recursive DPLL with unit propagation. On success the assignment is left
/// total; on failure every binding made inside the call is undone.
fn dpll(clauses: &[Vec<i32>], assign: &mut [Option<bool>]) -> bool {
    let mut trail: Vec<usize> = Vec::new();
    // Unit propagation to fixpoint.
    loop {
        let mut unit: Option<i32> = None;
        let mut conflict = false;
        'scan: for cl in clauses {
            let mut unassigned = None;
            let mut open = 0usize;
            for &l in cl {
                match lit_value(assign, l) {
                    Some(true) => continue 'scan,
                    Some(false) => {}
                    None => {
                        open += 1;
                        unassigned = Some(l);
                    }
                }
            }
            match open {
                0 => {
                    conflict = true;
                    break;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        if conflict {
            for v in trail {
                assign[v] = None;
            }
            return false;
        }
        match unit {
            Some(l) => {
                let v = (l.unsigned_abs() as usize) - 1;
                assign[v] = Some(l > 0);
                trail.push(v);
            }
            None => break,
        }
    }
    match assign.iter().position(|a| a.is_none()) {
        None => true,
        Some(v) => {
            for guess in [true, false] {
                assign[v] = Some(guess);
                if dpll(clauses, assign) {
                    return true;
                }
                assign[v] = None;
            }
            for v in trail {
                assign[v] = None;
            }
            false
        }
    }
}

/// Solves the conjunction of `roots` under the theory axioms for `atoms`.
/// Returns the model restricted to the real atoms, or `None` if unsat.
fn solve(atoms: &[SingletonFilter], roots: Vec<Node>) -> Option<Model> {
    let mut cnf = Cnf {
        nvars: atoms.len(),
        clauses: theory_clauses(atoms)
            .into_iter()
            .map(|cl| {
                cl.into_iter()
                    .map(|(v, pos)| {
                        let l = (v + 1) as i32;
                        if pos {
                            l
                        } else {
                            -l
                        }
                    })
                    .collect()
            })
            .collect(),
    };
    for root in &roots {
        let l = cnf.tseitin(root);
        cnf.clauses.push(vec![l]);
    }
    let mut assign: Vec<Option<bool>> = vec![None; cnf.nvars];
    if dpll(&cnf.clauses, &mut assign) {
        Some(
            atoms
                .iter()
                .zip(&assign)
                .map(|(a, v)| (a.clone(), v.unwrap_or(false)))
                .collect(),
        )
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Public queries
// ---------------------------------------------------------------------------

/// Is there any behavior the filter authorizes?
pub fn satisfiable(e: &FilterExpr) -> bool {
    witness(e).is_some()
}

/// A model of `e` over its real atoms, or `None` when `e` is exactly
/// unsatisfiable under the theory axioms.
pub fn witness(e: &FilterExpr) -> Option<Model> {
    let mut cx = Interner::default();
    let n = cx.lower(e);
    solve(&cx.atoms, vec![n])
}

/// Does every behavior `a` authorizes also satisfy `b`? Decided by the
/// unsatisfiability of `a ∧ ¬b`.
pub fn implies(a: &FilterExpr, b: &FilterExpr) -> bool {
    counterexample(a, b).is_none()
}

/// A model of `a ∧ ¬b` — a behavior class allowed by `a` but not by `b` —
/// or `None` when `a ⊆ b`.
pub fn counterexample(a: &FilterExpr, b: &FilterExpr) -> Option<Model> {
    let mut cx = Interner::default();
    let na = cx.lower(a);
    let nb = cx.lower(b);
    solve(&cx.atoms, vec![na, Node::Not(Box::new(nb))])
}

/// Do `a` and `b` authorize exactly the same behaviors?
pub fn equivalent(a: &FilterExpr, b: &FilterExpr) -> bool {
    implies(a, b) && implies(b, a)
}

/// The shared atom universe of a query, in interning order, with
/// statically-foldable atoms removed — the universe [`theory_clauses`] and
/// [`eval_under`] expect. Exposed for the enumeration proptest.
pub fn atoms_of(exprs: &[&FilterExpr]) -> Vec<SingletonFilter> {
    let mut cx = Interner::default();
    for e in exprs {
        let _ = cx.lower(e);
    }
    cx.atoms
}

/// Evaluates `e` under a truth assignment to `atoms`, folding static atoms
/// exactly as the solver does. Panics if an atom of `e` is missing from
/// `atoms` — build the universe with [`atoms_of`] over every query term.
pub fn eval_under(e: &FilterExpr, atoms: &[SingletonFilter], assign: &[bool]) -> bool {
    match e {
        FilterExpr::True => true,
        FilterExpr::Atom(f) => match fold(f) {
            Some(b) => b,
            None => {
                let i = atoms
                    .iter()
                    .position(|a| a == f)
                    .expect("atom outside universe");
                assign[i]
            }
        },
        FilterExpr::Not(inner) => !eval_under(inner, atoms, assign),
        FilterExpr::And(kids) => kids.iter().all(|k| eval_under(k, atoms, assign)),
        FilterExpr::Or(kids) => kids.iter().any(|k| eval_under(k, atoms, assign)),
    }
}

/// Does the assignment satisfy every theory clause of the universe? The
/// enumeration oracle must skip inconsistent assignments — they describe no
/// realizable behavior.
pub fn model_consistent(atoms: &[SingletonFilter], assign: &[bool]) -> bool {
    theory_clauses(atoms)
        .iter()
        .all(|cl| cl.iter().any(|&(v, pos)| assign[v] == pos))
}

/// Renders a model as a human-readable conjunction, e.g.
/// `IP_DST 10.0.0.1 MASK 255.255.255.255 AND NOT MAX_PRIORITY 5`.
pub fn describe_model(model: &Model) -> String {
    if model.is_empty() {
        return "ANY".to_owned();
    }
    model
        .iter()
        .map(|(a, v)| {
            if *v {
                a.to_string()
            } else {
                format!("NOT {a}")
            }
        })
        .collect::<Vec<_>>()
        .join(" AND ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterExpr as F;
    use sdnshield_openflow::types::Ipv4;

    fn prefix(a: u32, b: u32, c: u32, d: u32, len: u8) -> FilterExpr {
        F::Atom(SingletonFilter::ip_dst_prefix(
            Ipv4::new(a as u8, b as u8, c as u8, d as u8),
            len,
        ))
    }

    #[test]
    fn pairwise_sat_triple_is_jointly_unsat() {
        // A = 10.0.0.0/24, B = 10.0.0.0/25, C = 10.0.0.128/25:
        // A ∧ ¬B ∧ ¬C is unsat (B and C partition A), but every pair is sat.
        let a = prefix(10, 0, 0, 0, 24);
        let b = prefix(10, 0, 0, 0, 25);
        let c = prefix(10, 0, 0, 128, 25);
        let triple = a.clone().and(b.clone().not()).and(c.clone().not());
        assert!(!satisfiable(&triple), "cover axiom must refute the triple");
        assert!(satisfiable(&a.clone().and(b.clone().not())));
        assert!(satisfiable(&a.clone().and(c.clone().not())));
        assert!(satisfiable(&b.not().and(c.not())));
    }

    #[test]
    fn priority_exhaustion() {
        let hi = F::Atom(SingletonFilter::MinPriority(6));
        let lo = F::Atom(SingletonFilter::MaxPriority(5));
        // ¬(p ≥ 6) ∧ ¬(p ≤ 5) covers no priority at all.
        assert!(!satisfiable(&hi.clone().not().and(lo.clone().not())));
        // A gap (p ≤ 5, p ≥ 7) leaves 6 uncovered: satisfiable.
        let hi7 = F::Atom(SingletonFilter::MinPriority(7));
        assert!(satisfiable(&hi7.not().and(lo.not())));
    }

    #[test]
    fn implication_and_equivalence() {
        let narrow = prefix(10, 0, 0, 0, 25);
        let wide = prefix(10, 0, 0, 0, 24);
        assert!(implies(&narrow, &wide));
        assert!(!implies(&wide, &narrow));
        let ce = counterexample(&wide, &narrow).expect("wide ⊄ narrow");
        assert!(ce.iter().any(|(_, v)| *v), "witness must pass wide");
        // Distribution: a ∧ (b ∨ c) ≡ (a ∧ b) ∨ (a ∧ c).
        let (a, b, c) = (
            prefix(10, 0, 0, 0, 24),
            F::Atom(SingletonFilter::MaxPriority(9)),
            F::Atom(SingletonFilter::MinPriority(100)),
        );
        let lhs = a.clone().and(b.clone().or(c.clone()));
        let rhs = (a.clone().and(b)).or(a.and(c));
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn stubs_are_free_variables() {
        let s = F::Atom(SingletonFilter::Stub("admin_range".into()));
        let p = prefix(10, 0, 0, 0, 24);
        assert!(satisfiable(&s.clone().and(p)));
        assert!(!satisfiable(&s.clone().and(s.not())));
    }

    #[test]
    fn statics_fold() {
        use crate::filter::{CallbackCap, Ownership, PktOutSource};
        let t = F::Atom(SingletonFilter::Ownership(Ownership::AllFlows));
        assert!(satisfiable(&t));
        assert!(!satisfiable(&t.not()));
        let cb = F::Atom(SingletonFilter::Callback(CallbackCap::EventInterception));
        let po = F::Atom(SingletonFilter::PktOut(PktOutSource::Arbitrary));
        assert!(equivalent(&cb.and(po), &F::True));
    }
}
