//! The security-policy reconciliation engine (paper §V-B).
//!
//! Reconciliation takes an app's requested permission manifest and the
//! administrator's policy program and produces the final, parameterized
//! permission set:
//!
//! 1. **Permission customization** — stub macros left by the developer
//!    (`LocalTopo`, `AdminRange`, …) are expanded with the administrator's
//!    `LET` filter bindings.
//! 2. **Constraint verification** — every `ASSERT` is evaluated against the
//!    manifest (plus any other registered app manifests it references).
//! 3. **Reconciliation** — violations are repaired and reported:
//!    * a *mutual exclusion* violation truncates the permissions of the
//!      second operand group (the paper's scenario 1 keeps `network_access`
//!      and drops `insert_flow`);
//!    * a *permission boundary* violation (`app <= template`) intersects the
//!      manifest with the boundary (conceptual MEET);
//!    * other violated assertions are reported unresolved — the
//!      administrator must act.
//!
//! Per the paper, SDNShield "alerts administrators of any security policy
//! violations, and the reconciled permissions are then offered for
//! administrators' consideration": the report carries both the violations
//! and the proposed reconciled manifest.

use std::collections::BTreeMap;
use std::fmt;

use crate::perm::PermissionSet;
use crate::policy::{Assertion, CmpOp, PermSetExpr, Policy, PolicyStmt};
use crate::token::PermissionToken;

/// The name by which an assertion refers to "the app being reconciled".
pub const CURRENT_APP: &str = "app";

/// Errors aborting reconciliation entirely (violations do not abort; they
/// are reported in the [`ReconcileReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconcileError {
    /// The app was never registered.
    UnknownApp(String),
    /// An assertion references an unbound variable.
    UnboundVariable(String),
    /// A `LET` binding references an app that is not registered.
    UnknownAppReference(String),
}

impl fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconcileError::UnknownApp(a) => write!(f, "unknown app `{a}`"),
            ReconcileError::UnboundVariable(v) => write!(f, "unbound policy variable `{v}`"),
            ReconcileError::UnknownAppReference(a) => {
                write!(f, "policy references unregistered app `{a}`")
            }
        }
    }
}

impl std::error::Error for ReconcileError {}

/// How a violation was repaired.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Offending permission tokens were removed from the manifest.
    Truncated(Vec<PermissionToken>),
    /// The manifest was intersected with a permission boundary.
    IntersectedWithBoundary,
    /// A stub macro had no administrator binding; the permission is kept but
    /// will deny at runtime until completed.
    UnexpandedStub(String),
    /// The engine could not repair the violation automatically.
    Unresolved,
}

/// One detected policy violation and its repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Human-readable description of the violated constraint.
    pub constraint: String,
    /// What specifically violated it.
    pub detail: String,
    /// The repair applied (or not).
    pub resolution: Resolution,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({:?})",
            self.constraint, self.detail, self.resolution
        )
    }
}

/// The outcome of reconciling one app.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconcileReport {
    /// The app name.
    pub app: String,
    /// The manifest as requested (before stub expansion).
    pub requested: PermissionSet,
    /// The final reconciled manifest to enforce.
    pub reconciled: PermissionSet,
    /// Violations found (empty = the manifest already satisfied the policy).
    pub violations: Vec<Violation>,
}

impl ReconcileReport {
    /// Did the manifest pass all constraints unchanged?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The reconciliation engine: a policy program plus registered manifests.
///
/// # Examples
///
/// ```
/// use sdnshield_core::lang::parse_manifest;
/// use sdnshield_core::policy::parse_policy;
/// use sdnshield_core::reconcile::Reconciler;
/// use sdnshield_core::token::PermissionToken;
///
/// let policy = parse_policy(
///     "ASSERT EITHER { PERM network_access } OR { PERM insert_flow }",
/// )?;
/// let manifest = parse_manifest("PERM network_access\nPERM insert_flow")?;
/// let mut engine = Reconciler::new(policy);
/// engine.register_app("monitor", manifest);
/// let report = engine.reconcile("monitor").unwrap();
/// assert!(!report.is_clean());
/// // The second exclusive group (insert_flow) was truncated.
/// assert!(report.reconciled.contains_token(PermissionToken::HostNetwork));
/// assert!(!report.reconciled.contains_token(PermissionToken::InsertFlow));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reconciler {
    policy: Policy,
    manifests: BTreeMap<String, PermissionSet>,
}

impl Reconciler {
    /// Creates an engine for a policy program.
    pub fn new(policy: Policy) -> Self {
        Reconciler {
            policy,
            manifests: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) an app's requested manifest.
    pub fn register_app(&mut self, name: impl Into<String>, manifest: PermissionSet) {
        self.manifests.insert(name.into(), manifest);
    }

    /// The registered manifest for an app.
    pub fn manifest(&self, name: &str) -> Option<&PermissionSet> {
        self.manifests.get(name)
    }

    /// Reconciles one registered app against the policy.
    ///
    /// # Errors
    ///
    /// [`ReconcileError`] when the app is unknown or the policy references
    /// unknown names. Policy *violations* are not errors — they are repaired
    /// and reported.
    pub fn reconcile(&self, app: &str) -> Result<ReconcileReport, ReconcileError> {
        let requested = self
            .manifests
            .get(app)
            .cloned()
            .ok_or_else(|| ReconcileError::UnknownApp(app.to_owned()))?;
        let mut current = requested.clone();
        let mut violations = Vec::new();

        // Step 1: expand stubs with the administrator's filter macros.
        let macros: BTreeMap<&str, _> = self.policy.filter_macros().collect();
        for stub in current.stub_names() {
            match macros.get(stub.as_str()) {
                Some(expr) => {
                    current.expand_stub(&stub, expr);
                }
                None => violations.push(Violation {
                    constraint: "permission customization".into(),
                    detail: format!("stub macro `{stub}` has no administrator binding"),
                    resolution: Resolution::UnexpandedStub(stub.clone()),
                }),
            }
        }

        // Step 2/3: evaluate constraints in order, repairing as we go so a
        // later constraint sees earlier repairs (paper: constraints hold
        // persistently).
        let owned_macros: BTreeMap<String, crate::filter::FilterExpr> = self
            .policy
            .filter_macros()
            .map(|(n, e)| (n.to_owned(), e.clone()))
            .collect();
        let mut env = Env {
            reconciler: self,
            current_app: app,
            bindings: BTreeMap::new(),
            macros: owned_macros,
        };
        // Pre-evaluate LET bindings in order (they may reference apps).
        for stmt in &self.policy.stmts {
            if let PolicyStmt::LetPermSet { name, value } = stmt {
                let set = env.eval(value, &current)?;
                env.bindings.insert(name.clone(), set);
            }
        }

        for stmt in &self.policy.stmts {
            let PolicyStmt::Assert(assertion) = stmt else {
                continue;
            };
            match assertion {
                Assertion::Either(a, b) => {
                    let set_a = env.eval(a, &current)?;
                    let set_b = env.eval(b, &current)?;
                    let has_a: Vec<_> = set_a
                        .tokens()
                        .filter(|t| current.contains_token(*t))
                        .collect();
                    let has_b: Vec<_> = set_b
                        .tokens()
                        .filter(|t| current.contains_token(*t))
                        .collect();
                    if !has_a.is_empty() && !has_b.is_empty() {
                        let mut updated = current.clone();
                        for t in &has_b {
                            updated.remove(*t);
                        }
                        violations.push(Violation {
                            constraint: format!(
                                "ASSERT EITHER {{ {} }} OR {{ {} }}",
                                tokens_str(&has_a),
                                tokens_str(&has_b)
                            ),
                            detail: format!(
                                "app `{app}` possesses both exclusive permission groups"
                            ),
                            resolution: Resolution::Truncated(has_b),
                        });
                        current = updated;
                    }
                }
                Assertion::Compare { lhs, op, rhs } => {
                    let l = env.eval(lhs, &current)?;
                    let r = env.eval(rhs, &current)?;
                    if eval_cmp(&l, *op, &r) {
                        continue;
                    }
                    // Repairable case: the left side is the current app and
                    // the relation is an upper bound.
                    let lhs_is_current = expr_denotes_current_app(lhs, app, &self.policy, 0);
                    if lhs_is_current && matches!(op, CmpOp::Le | CmpOp::Lt) {
                        current = current.meet(&r);
                        violations.push(Violation {
                            constraint: format!("ASSERT app {op} boundary"),
                            detail: format!("app `{app}` exceeds its permission boundary"),
                            resolution: Resolution::IntersectedWithBoundary,
                        });
                    } else {
                        violations.push(Violation {
                            constraint: format!("ASSERT … {op} …"),
                            detail: format!("comparison failed for app `{app}`"),
                            resolution: Resolution::Unresolved,
                        });
                    }
                }
                composite => {
                    if !eval_assertion(composite, &env, &current)? {
                        violations.push(Violation {
                            constraint: "composite assertion".into(),
                            detail: "assertion evaluated false".into(),
                            resolution: Resolution::Unresolved,
                        });
                    }
                }
            }
        }

        Ok(ReconcileReport {
            app: app.to_owned(),
            requested,
            reconciled: current,
            violations,
        })
    }

    /// Verifies every registered app, returning all reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ReconcileError`].
    pub fn reconcile_all(&self) -> Result<Vec<ReconcileReport>, ReconcileError> {
        self.manifests
            .keys()
            .map(|app| self.reconcile(app))
            .collect()
    }
}

fn tokens_str(tokens: &[PermissionToken]) -> String {
    tokens
        .iter()
        .map(|t| t.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Does this expression denote exactly the current app's manifest — either
/// `APP <current>`, the reserved `APP app`, or a variable bound (possibly
/// through further variables) to one of those?
fn expr_denotes_current_app(expr: &PermSetExpr, app: &str, policy: &Policy, depth: u8) -> bool {
    if depth > 8 {
        return false;
    }
    match expr {
        PermSetExpr::App(n) => n == app || n == CURRENT_APP,
        PermSetExpr::Var(name) => policy.stmts.iter().any(|s| {
            matches!(s, PolicyStmt::LetPermSet { name: n, value } if n == name
                && expr_denotes_current_app(value, app, policy, depth + 1))
        }),
        _ => false,
    }
}

struct Env<'a> {
    reconciler: &'a Reconciler,
    current_app: &'a str,
    bindings: BTreeMap<String, PermissionSet>,
    /// Administrator filter macros, applied to permission-set literals in
    /// the policy itself (templates may carry stubs like `CollectorRange`).
    macros: BTreeMap<String, crate::filter::FilterExpr>,
}

impl Env<'_> {
    fn eval(
        &self,
        expr: &PermSetExpr,
        current: &PermissionSet,
    ) -> Result<PermissionSet, ReconcileError> {
        Ok(match expr {
            PermSetExpr::Literal(set) => {
                let mut set = set.clone();
                for stub in set.stub_names() {
                    if let Some(replacement) = self.macros.get(&stub) {
                        set.expand_stub(&stub, replacement);
                    }
                }
                set
            }
            PermSetExpr::Var(name) => self
                .bindings
                .get(name)
                .cloned()
                .ok_or_else(|| ReconcileError::UnboundVariable(name.clone()))?,
            PermSetExpr::App(name) => {
                if name == self.current_app || name == CURRENT_APP {
                    current.clone()
                } else {
                    self.reconciler
                        .manifests
                        .get(name)
                        .cloned()
                        .ok_or_else(|| ReconcileError::UnknownAppReference(name.clone()))?
                }
            }
            PermSetExpr::Meet(a, b) => self.eval(a, current)?.meet(&self.eval(b, current)?),
            PermSetExpr::Join(a, b) => self.eval(a, current)?.join(&self.eval(b, current)?),
        })
    }
}

fn eval_cmp(l: &PermissionSet, op: CmpOp, r: &PermissionSet) -> bool {
    match op {
        CmpOp::Le => r.includes(l),
        CmpOp::Lt => r.includes(l) && !l.includes(r),
        CmpOp::Ge => l.includes(r),
        CmpOp::Gt => l.includes(r) && !r.includes(l),
        CmpOp::Eq => l.includes(r) && r.includes(l),
    }
}

fn eval_assertion(
    a: &Assertion,
    env: &Env<'_>,
    current: &PermissionSet,
) -> Result<bool, ReconcileError> {
    Ok(match a {
        Assertion::Either(x, y) => {
            let sx = env.eval(x, current)?;
            let sy = env.eval(y, current)?;
            let has_x = sx.tokens().any(|t| current.contains_token(t));
            let has_y = sy.tokens().any(|t| current.contains_token(t));
            !(has_x && has_y)
        }
        Assertion::Compare { lhs, op, rhs } => {
            let l = env.eval(lhs, current)?;
            let r = env.eval(rhs, current)?;
            eval_cmp(&l, *op, &r)
        }
        Assertion::And(xs) => {
            for x in xs {
                if !eval_assertion(x, env, current)? {
                    return Ok(false);
                }
            }
            true
        }
        Assertion::Or(xs) => {
            for x in xs {
                if eval_assertion(x, env, current)? {
                    return Ok(true);
                }
            }
            false
        }
        Assertion::Not(x) => !eval_assertion(x, env, current)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::lang::{parse_filter, parse_manifest};
    use crate::policy::parse_policy;

    fn engine(policy: &str) -> Reconciler {
        Reconciler::new(parse_policy(policy).unwrap())
    }

    #[test]
    fn clean_manifest_passes() {
        let mut e = engine("ASSERT EITHER { PERM network_access } OR { PERM insert_flow }");
        e.register_app("m", parse_manifest("PERM read_statistics").unwrap());
        let r = e.reconcile("m").unwrap();
        assert!(r.is_clean());
        assert_eq!(r.reconciled, r.requested);
    }

    #[test]
    fn scenario1_full_reconciliation() {
        // §VII scenario 1, end to end: stubs expanded, mutual exclusion
        // truncates insert_flow, final manifest matches the paper's.
        let mut e = engine(
            "LET LocalTopo = { SWITCH 0,1 LINK 0-1 }\n\
             LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
             ASSERT EITHER { PERM network_access } OR { PERM insert_flow }",
        );
        e.register_app(
            "monitor",
            parse_manifest(
                "PERM visible_topology LIMITING LocalTopo\n\
                 PERM read_statistics\n\
                 PERM network_access LIMITING AdminRange\n\
                 PERM insert_flow",
            )
            .unwrap(),
        );
        let r = e.reconcile("monitor").unwrap();
        assert_eq!(r.violations.len(), 1);
        assert!(
            matches!(&r.violations[0].resolution, Resolution::Truncated(ts) if ts == &[PermissionToken::InsertFlow])
        );
        // Final permissions: the three from the paper.
        assert_eq!(r.reconciled.len(), 3);
        assert!(!r.reconciled.contains_token(PermissionToken::InsertFlow));
        // Stubs were expanded to the admin values.
        let net = r.reconciled.filter(PermissionToken::HostNetwork).unwrap();
        let expected = parse_filter("IP_DST 10.1.0.0 MASK 255.255.0.0").unwrap();
        assert!(algebra::equivalent(net, &expected));
        assert!(r.reconciled.stub_names().is_empty());
        // The requested manifest is preserved for the report.
        assert_eq!(r.requested.stub_names().len(), 2);
    }

    #[test]
    fn unknown_stub_reported() {
        let mut e = engine("");
        e.register_app(
            "m",
            parse_manifest("PERM network_access LIMITING AdminRange").unwrap(),
        );
        let r = e.reconcile("m").unwrap();
        assert_eq!(r.violations.len(), 1);
        assert!(
            matches!(&r.violations[0].resolution, Resolution::UnexpandedStub(s) if s == "AdminRange")
        );
        // The stub permission survives (it will deny at runtime).
        assert!(r.reconciled.contains_token(PermissionToken::HostNetwork));
    }

    #[test]
    fn boundary_violation_intersects() {
        // §V-A monitoring template: app exceeding the boundary is cut down.
        let mut e = engine(
            "LET templatePerm = {\n\
               PERM read_topology\n\
               PERM read_statistics LIMITING PORT_LEVEL\n\
               PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0\n\
             }\n\
             ASSERT APP app <= templatePerm",
        );
        e.register_app(
            "monitor",
            parse_manifest(
                "PERM read_statistics\n\
                 PERM network_access\n\
                 PERM insert_flow",
            )
            .unwrap(),
        );
        let r = e.reconcile("monitor").unwrap();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0].resolution,
            Resolution::IntersectedWithBoundary
        ));
        // insert_flow is outside the template: gone.
        assert!(!r.reconciled.contains_token(PermissionToken::InsertFlow));
        // read_statistics is narrowed to port level.
        let stats = r
            .reconciled
            .filter(PermissionToken::ReadStatistics)
            .unwrap();
        let port_level = parse_filter("PORT_LEVEL").unwrap();
        assert!(algebra::equivalent(stats, &port_level));
        // network_access is narrowed to the admin subnet.
        let net = r.reconciled.filter(PermissionToken::HostNetwork).unwrap();
        let subnet = parse_filter("IP_DST 192.168.0.0 MASK 255.255.0.0").unwrap();
        assert!(algebra::equivalent(net, &subnet));
        // Boundary holds after reconciliation.
        let e2 = {
            let mut e2 = e.clone();
            e2.register_app("monitor", r.reconciled.clone());
            e2
        };
        assert!(e2.reconcile("monitor").unwrap().is_clean());
    }

    #[test]
    fn boundary_satisfied_passes() {
        let mut e = engine("LET t = { PERM read_statistics }\nASSERT APP app <= t");
        e.register_app(
            "m",
            parse_manifest("PERM read_statistics LIMITING PORT_LEVEL").unwrap(),
        );
        assert!(e.reconcile("m").unwrap().is_clean());
    }

    #[test]
    fn cross_app_comparison_reported_unresolved() {
        let mut e = engine("LET a = APP alpha\nLET t = { PERM read_statistics }\nASSERT a <= t");
        e.register_app("alpha", parse_manifest("PERM insert_flow").unwrap());
        e.register_app("beta", parse_manifest("PERM read_statistics").unwrap());
        // Reconciling beta still checks the assertion about alpha and
        // reports it, but cannot repair beta for alpha's sin.
        let r = e.reconcile("beta").unwrap();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(r.violations[0].resolution, Resolution::Unresolved));
        assert_eq!(r.reconciled, r.requested);
    }

    #[test]
    fn meet_join_in_assertions() {
        let mut e = engine(
            "LET a = { PERM insert_flow\nPERM read_statistics }\n\
             LET b = { PERM read_statistics }\n\
             ASSERT a MEET b = b",
        );
        e.register_app("x", PermissionSet::new());
        assert!(e.reconcile("x").unwrap().is_clean());
    }

    #[test]
    fn composite_assertions_evaluated() {
        let mut e = engine(
            "LET t = { PERM read_statistics }\n\
             ASSERT NOT ( APP app >= t ) OR APP app <= t",
        );
        e.register_app("m", parse_manifest("PERM read_statistics").unwrap());
        // app >= t and app <= t are both true → NOT(true) OR true = true.
        assert!(e.reconcile("m").unwrap().is_clean());
    }

    #[test]
    fn errors_surface() {
        let e = engine("");
        assert_eq!(
            e.reconcile("ghost").unwrap_err(),
            ReconcileError::UnknownApp("ghost".into())
        );
        let mut e = engine("ASSERT x <= x");
        e.register_app("m", PermissionSet::new());
        assert_eq!(
            e.reconcile("m").unwrap_err(),
            ReconcileError::UnboundVariable("x".into())
        );
        let mut e = engine("LET a = APP ghost\nASSERT a <= a");
        e.register_app("m", PermissionSet::new());
        assert_eq!(
            e.reconcile("m").unwrap_err(),
            ReconcileError::UnknownAppReference("ghost".into())
        );
    }

    #[test]
    fn reconcile_all_covers_every_app() {
        let mut e = engine("ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }");
        e.register_app("good", parse_manifest("PERM network_access").unwrap());
        e.register_app(
            "bad",
            parse_manifest("PERM network_access\nPERM send_pkt_out").unwrap(),
        );
        let reports = e.reconcile_all().unwrap();
        assert_eq!(reports.len(), 2);
        let bad = reports.iter().find(|r| r.app == "bad").unwrap();
        assert!(!bad.is_clean());
        let good = reports.iter().find(|r| r.app == "good").unwrap();
        assert!(good.is_clean());
    }

    #[test]
    fn exclusion_truncation_order_prefers_first_group() {
        // The first operand group survives; the second is truncated —
        // matching the paper's scenario 1 outcome.
        let mut e = engine("ASSERT EITHER { PERM insert_flow } OR { PERM network_access }");
        e.register_app(
            "m",
            parse_manifest("PERM network_access\nPERM insert_flow").unwrap(),
        );
        let r = e.reconcile("m").unwrap();
        assert!(r.reconciled.contains_token(PermissionToken::InsertFlow));
        assert!(!r.reconciled.contains_token(PermissionToken::HostNetwork));
    }
}
