//! Accommodating high-level SDN languages (paper §VI-C).
//!
//! Declarative policy languages (Frenetic, Pyretic, NetKAT) compile to
//! low-level OpenFlow rules, where SDNShield's access control can be
//! enforced — but after composition "the source app of an OpenFlow
//! instruction can become ambiguous". The paper's proposed fix, left as
//! future work, is to (1) make the compiler track ownership at a finer
//! granularity during policy composition and expose it to SDNShield, and
//! (2) let SDNShield split composed rules and check each owner's share.
//!
//! This module implements a working prototype of exactly that: a miniature
//! Pyretic-style combinator language ([`Pol`]), a compiler producing
//! ownership-annotated rules ([`OwnedRule`]), and a checker that evaluates
//! every compiled rule against *each* contributing owner's permission
//! engine ([`check_composed`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::api::{ApiCall, ApiCallKind, AppId};
use crate::engine::{Decision, PermissionEngine};
use crate::eval::CheckContext;
use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, PortNo, Priority};

/// A miniature declarative forwarding policy.
///
/// Composition mirrors Pyretic: `Seq` is sequential composition (refine the
/// packet set, then act), `Par` is parallel composition (both branches
/// apply). `Owned` tags a sub-policy with its authoring app — the
/// fine-grained ownership the paper asks the compiler to track.
#[derive(Debug, Clone, PartialEq)]
pub enum Pol {
    /// Pass only packets matching the predicate.
    Filter(FlowMatch),
    /// Forward out a port.
    Fwd(PortNo),
    /// Drop.
    Drop,
    /// Sequential composition: `p1 >> p2 >> …`.
    Seq(Vec<Pol>),
    /// Parallel composition: `p1 + p2 + …`.
    Par(Vec<Pol>),
    /// Ownership annotation: everything below was authored by `app`.
    Owned(AppId, Box<Pol>),
}

impl Pol {
    /// `self >> other`.
    pub fn seq(self, other: Pol) -> Pol {
        match self {
            Pol::Seq(mut xs) => {
                xs.push(other);
                Pol::Seq(xs)
            }
            x => Pol::Seq(vec![x, other]),
        }
    }

    /// `self + other`.
    pub fn par(self, other: Pol) -> Pol {
        match self {
            Pol::Par(mut xs) => {
                xs.push(other);
                Pol::Par(xs)
            }
            x => Pol::Par(vec![x, other]),
        }
    }

    /// Tags this policy as authored by `app`.
    pub fn owned_by(self, app: AppId) -> Pol {
        Pol::Owned(app, Box::new(self))
    }
}

impl fmt::Display for Pol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pol::Filter(m) => write!(f, "filter({m})"),
            Pol::Fwd(p) => write!(f, "fwd({p})"),
            Pol::Drop => write!(f, "drop"),
            Pol::Seq(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" >> "))
            }
            Pol::Par(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" + "))
            }
            Pol::Owned(app, p) => write!(f, "[{app}]{p}"),
        }
    }
}

/// One compiled rule with the apps whose policy fragments produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRule {
    /// Every app that contributed to this rule during composition.
    pub owners: BTreeSet<AppId>,
    /// The packet set.
    pub flow_match: FlowMatch,
    /// The actions (empty = drop).
    pub actions: ActionList,
}

impl OwnedRule {
    /// Lowers to a flow-mod at the given priority.
    pub fn to_flow_mod(&self, priority: Priority) -> FlowMod {
        FlowMod::add(self.flow_match.clone(), priority, self.actions.clone())
    }
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Sequential composition produced an unsatisfiable packet set.
    EmptyIntersection,
    /// A `Seq` chained two forwarding stages (unsupported in this mini
    /// language: actions terminate a sequential pipeline).
    ActionBeforeEndOfSeq,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyIntersection => {
                write!(f, "sequential composition matches no packets")
            }
            CompileError::ActionBeforeEndOfSeq => {
                write!(
                    f,
                    "forwarding stage must be last in a sequential composition"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// An intermediate compiled fragment: a guarded action set with owners.
#[derive(Debug, Clone)]
struct Fragment {
    owners: BTreeSet<AppId>,
    guard: FlowMatch,
    actions: Vec<Action>,
    /// Whether an action stage has been reached (no further Seq refinement).
    terminated: bool,
}

/// Compiles a policy into ownership-annotated rules.
///
/// Semantics: a packet is processed by every `Par` branch independently;
/// within a `Seq`, `Filter`s intersect the guard and the final `Fwd`/`Drop`
/// fixes the action.
///
/// # Errors
///
/// [`CompileError`] on unsatisfiable or ill-formed compositions.
///
/// # Examples
///
/// ```
/// use sdnshield_core::api::AppId;
/// use sdnshield_core::hll::{compile, Pol};
/// use sdnshield_openflow::flow_match::FlowMatch;
/// use sdnshield_openflow::types::{Ipv4, PortNo};
///
/// // (monitor's filter >> fwd(1)) + (router's fwd(2))
/// let policy = Pol::Filter(FlowMatch::default().with_tp_dst(80))
///     .seq(Pol::Fwd(PortNo(1)))
///     .owned_by(AppId(1))
///     .par(Pol::Fwd(PortNo(2)).owned_by(AppId(2)));
/// let rules = compile(&policy)?;
/// assert_eq!(rules.len(), 2);
/// # Ok::<(), sdnshield_core::hll::CompileError>(())
/// ```
pub fn compile(policy: &Pol) -> Result<Vec<OwnedRule>, CompileError> {
    let fragments = compile_rec(
        policy,
        Fragment {
            owners: BTreeSet::new(),
            guard: FlowMatch::any(),
            actions: Vec::new(),
            terminated: false,
        },
    )?;
    Ok(fragments
        .into_iter()
        .map(|f| OwnedRule {
            owners: f.owners,
            flow_match: f.guard,
            actions: ActionList(f.actions),
        })
        .collect())
}

fn compile_rec(policy: &Pol, ctx: Fragment) -> Result<Vec<Fragment>, CompileError> {
    match policy {
        Pol::Filter(m) => {
            if ctx.terminated {
                return Err(CompileError::ActionBeforeEndOfSeq);
            }
            let guard = ctx
                .guard
                .intersect(m)
                .ok_or(CompileError::EmptyIntersection)?;
            Ok(vec![Fragment { guard, ..ctx }])
        }
        Pol::Fwd(port) => {
            if ctx.terminated {
                return Err(CompileError::ActionBeforeEndOfSeq);
            }
            let mut actions = ctx.actions.clone();
            actions.push(Action::Output(*port));
            Ok(vec![Fragment {
                actions,
                terminated: true,
                ..ctx
            }])
        }
        Pol::Drop => {
            if ctx.terminated {
                return Err(CompileError::ActionBeforeEndOfSeq);
            }
            Ok(vec![Fragment {
                actions: Vec::new(),
                terminated: true,
                ..ctx
            }])
        }
        Pol::Seq(stages) => {
            let mut current = vec![ctx];
            for stage in stages {
                let mut next = Vec::new();
                for frag in current {
                    next.extend(compile_rec(stage, frag)?);
                }
                current = next;
            }
            Ok(current)
        }
        Pol::Par(branches) => {
            let mut out = Vec::new();
            for branch in branches {
                out.extend(compile_rec(branch, ctx.clone())?);
            }
            Ok(out)
        }
        Pol::Owned(app, inner) => {
            let mut ctx = ctx;
            ctx.owners.insert(*app);
            compile_rec(inner, ctx)
        }
    }
}

/// The verdict for one compiled rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleVerdict {
    /// The rule.
    pub rule: OwnedRule,
    /// Denials per owner (empty = every owner authorized, rule may install).
    pub denials: Vec<(AppId, Decision)>,
}

impl RuleVerdict {
    /// May the rule be installed?
    pub fn permitted(&self) -> bool {
        self.denials.is_empty()
    }
}

/// Checks a compiled rule set against each owner's permission engine
/// (the paper's "split the rule and feed them to the permission engine
/// respectively").
///
/// A rule with no `Owned` annotation anywhere is attributed to
/// `default_owner` (the app that submitted the composed policy).
pub fn check_composed(
    rules: &[OwnedRule],
    dpid: DatapathId,
    priority: Priority,
    engines: &BTreeMap<AppId, &PermissionEngine>,
    default_owner: AppId,
    ctx: &dyn CheckContext,
) -> Vec<RuleVerdict> {
    rules
        .iter()
        .map(|rule| {
            let owners: Vec<AppId> = if rule.owners.is_empty() {
                vec![default_owner]
            } else {
                rule.owners.iter().copied().collect()
            };
            let mut denials = Vec::new();
            for owner in owners {
                let call = ApiCall::new(
                    owner,
                    ApiCallKind::InsertFlow {
                        dpid,
                        flow_mod: rule.to_flow_mod(priority),
                    },
                );
                match engines.get(&owner) {
                    Some(engine) => {
                        let decision = engine.check(&call, ctx);
                        if !decision.is_allowed() {
                            denials.push((owner, decision));
                        }
                    }
                    None => denials.push((
                        owner,
                        Decision::Denied {
                            token: crate::token::PermissionToken::InsertFlow,
                            reason: crate::engine::DenyReason::MissingToken,
                        },
                    )),
                }
            }
            RuleVerdict {
                rule: rule.clone(),
                denials,
            }
        })
        .collect()
}

/// Partial enforcement (the paper's envisioned extension): keep exactly the
/// permitted rules from a composed policy, dropping (and reporting) the
/// rest.
pub fn permitted_rules(verdicts: Vec<RuleVerdict>) -> (Vec<OwnedRule>, Vec<RuleVerdict>) {
    let mut ok = Vec::new();
    let mut rejected = Vec::new();
    for v in verdicts {
        if v.permitted() {
            ok.push(v.rule);
        } else {
            rejected.push(v);
        }
    }
    (ok, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullContext;
    use crate::lang::parse_manifest;
    use sdnshield_openflow::types::Ipv4;

    fn http() -> FlowMatch {
        FlowMatch::default().with_tp_dst(80)
    }

    fn subnet() -> FlowMatch {
        FlowMatch {
            ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                Ipv4::new(10, 13, 0, 0),
                16,
            )),
            ..FlowMatch::default()
        }
    }

    #[test]
    fn seq_intersects_guards() {
        let p = Pol::Filter(http())
            .seq(Pol::Filter(subnet()))
            .seq(Pol::Fwd(PortNo(1)));
        let rules = compile(&p).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].flow_match.tp_dst, Some(80));
        assert!(rules[0].flow_match.ip_dst.is_some());
        assert_eq!(rules[0].actions, ActionList::output(PortNo(1)));
    }

    #[test]
    fn par_produces_one_rule_per_branch() {
        let p = Pol::Filter(http())
            .seq(Pol::Fwd(PortNo(1)))
            .par(Pol::Filter(subnet()).seq(Pol::Drop));
        let rules = compile(&p).unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules[1].actions.is_drop());
    }

    #[test]
    fn unsatisfiable_seq_rejected() {
        let p = Pol::Filter(http())
            .seq(Pol::Filter(FlowMatch::default().with_tp_dst(443)))
            .seq(Pol::Fwd(PortNo(1)));
        assert_eq!(compile(&p).unwrap_err(), CompileError::EmptyIntersection);
    }

    #[test]
    fn action_must_terminate_seq() {
        let p = Pol::Fwd(PortNo(1)).seq(Pol::Filter(http()));
        assert_eq!(compile(&p).unwrap_err(), CompileError::ActionBeforeEndOfSeq);
    }

    #[test]
    fn ownership_merges_through_composition() {
        // Monitor's filter composed with router's forwarding: the compiled
        // rule has BOTH owners — the ambiguity the paper describes, made
        // explicit.
        let p = Pol::Filter(subnet())
            .owned_by(AppId(1))
            .seq(Pol::Fwd(PortNo(2)).owned_by(AppId(2)));
        let rules = compile(&p).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].owners, [AppId(1), AppId(2)].into_iter().collect());
    }

    #[test]
    fn composed_check_requires_every_owner() {
        let p = Pol::Filter(subnet())
            .owned_by(AppId(1))
            .seq(Pol::Fwd(PortNo(2)).owned_by(AppId(2)));
        let rules = compile(&p).unwrap();

        let permissive = PermissionEngine::compile(&parse_manifest("PERM insert_flow").unwrap());
        let restricted = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 172.16.0.0 MASK 255.255.0.0")
                .unwrap(),
        );
        // Both owners permissive → permitted.
        let engines: BTreeMap<AppId, &PermissionEngine> =
            [(AppId(1), &permissive), (AppId(2), &permissive)].into();
        let verdicts = check_composed(
            &rules,
            DatapathId(1),
            Priority(10),
            &engines,
            AppId(1),
            &NullContext,
        );
        assert!(verdicts.iter().all(RuleVerdict::permitted));

        // One owner out of scope → the composed rule is denied, naming the
        // offending owner.
        let engines: BTreeMap<AppId, &PermissionEngine> =
            [(AppId(1), &permissive), (AppId(2), &restricted)].into();
        let verdicts = check_composed(
            &rules,
            DatapathId(1),
            Priority(10),
            &engines,
            AppId(1),
            &NullContext,
        );
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].permitted());
        assert_eq!(verdicts[0].denials.len(), 1);
        assert_eq!(verdicts[0].denials[0].0, AppId(2));
    }

    #[test]
    fn partial_enforcement_keeps_permitted_branches() {
        // Two parallel branches from different owners; only one is in scope.
        let p = Pol::Filter(subnet())
            .seq(Pol::Fwd(PortNo(1)))
            .owned_by(AppId(1))
            .par(
                Pol::Filter(FlowMatch::default().with_tp_dst(23))
                    .seq(Pol::Fwd(PortNo(2)))
                    .owned_by(AppId(2)),
            );
        let rules = compile(&p).unwrap();
        let in_scope = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        );
        let engines: BTreeMap<AppId, &PermissionEngine> =
            [(AppId(1), &in_scope), (AppId(2), &in_scope)].into();
        let verdicts = check_composed(
            &rules,
            DatapathId(1),
            Priority(10),
            &engines,
            AppId(1),
            &NullContext,
        );
        let (ok, rejected) = permitted_rules(verdicts);
        assert_eq!(ok.len(), 1, "the subnet branch survives");
        assert_eq!(rejected.len(), 1, "the telnet branch is rejected");
        assert_eq!(rejected[0].denials[0].0, AppId(2));
    }

    #[test]
    fn unowned_rules_fall_back_to_submitter() {
        let p = Pol::Filter(http()).seq(Pol::Fwd(PortNo(1)));
        let rules = compile(&p).unwrap();
        let engines: BTreeMap<AppId, &PermissionEngine> = BTreeMap::new();
        let verdicts = check_composed(
            &rules,
            DatapathId(1),
            Priority(10),
            &engines,
            AppId(7),
            &NullContext,
        );
        // Unknown submitter → denied with MissingToken.
        assert!(!verdicts[0].permitted());
        assert_eq!(verdicts[0].denials[0].0, AppId(7));
    }

    #[test]
    fn display_renders_composition() {
        let p = Pol::Filter(http())
            .seq(Pol::Fwd(PortNo(1)))
            .owned_by(AppId(1))
            .par(Pol::Drop.owned_by(AppId(2)));
        let s = p.to_string();
        assert!(s.contains(">>"), "{s}");
        assert!(s.contains('+'), "{s}");
        assert!(s.contains("[app:1]"), "{s}");
    }
}
