//! Abstract (virtual) topology evaluation — paper §VI-B1.
//!
//! Controllers do not natively support abstract topologies, so SDNShield's
//! reference monitor maintains the mapping between the virtual view an app is
//! granted and the physical network, translating API calls and responses on
//! the fly:
//!
//! * a flow rule added to a *virtual big switch* becomes several physical
//!   rules along the shortest path between the rule's ingress and egress;
//! * statistics requests fan out to the member switches and aggregate;
//! * topology reads return the virtual view.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::messages::{AggregateStats, FlowMod, StatsReply};
use sdnshield_openflow::types::{DatapathId, PortNo};

/// The filter-language specification of a virtual topology
/// (`virt_topo_f := VIRTUAL switch_map …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VirtualTopologySpec {
    /// The entire visible topology appears as one big switch
    /// (`VIRTUAL SINGLE_BIG_SWITCH`).
    SingleBigSwitch,
    /// Explicit grouping: each entry aggregates member physical switches
    /// into one virtual switch (`VIRTUAL { 1,2 AS 10 ; 3,4 AS 11 }`).
    Map(Vec<VirtualSwitchDef>),
}

/// One virtual switch definition in an explicit map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualSwitchDef {
    /// The datapath id the app sees.
    pub virtual_dpid: u64,
    /// The physical member switches.
    pub members: BTreeSet<u64>,
}

impl fmt::Display for VirtualTopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtualTopologySpec::SingleBigSwitch => write!(f, "VIRTUAL SINGLE_BIG_SWITCH"),
            VirtualTopologySpec::Map(defs) => {
                write!(f, "VIRTUAL {{ ")?;
                let mut sep = "";
                for d in defs {
                    write!(f, "{sep}")?;
                    let mut isep = "";
                    for m in &d.members {
                        write!(f, "{isep}{m}")?;
                        isep = ",";
                    }
                    write!(f, " AS {}", d.virtual_dpid)?;
                    sep = " ; ";
                }
                write!(f, " }}")
            }
        }
    }
}

/// A lightweight description of the physical network the mapper needs:
/// switches, inter-switch links (with ports) and edge (host-facing) ports.
///
/// The controller builds this from its topology service; keeping it local to
/// this crate avoids a dependency on the simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysView {
    /// All physical switches.
    pub switches: BTreeSet<u64>,
    /// Directed inter-switch links: (src dpid, src port, dst dpid, dst port).
    pub links: Vec<(u64, u16, u64, u16)>,
    /// Edge ports: (dpid, port) pairs where hosts attach.
    pub edge_ports: Vec<(u64, u16)>,
}

/// Errors from virtual-topology translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VtopoError {
    /// The call targets a dpid that is not a virtual switch in the map.
    UnknownVirtualSwitch(DatapathId),
    /// A rule references a virtual port that does not exist.
    UnknownVirtualPort(PortNo),
    /// The members of a virtual switch are not mutually reachable.
    Disconnected {
        /// Path source.
        from: u64,
        /// Path destination.
        to: u64,
    },
    /// A spec member switch does not exist physically.
    UnknownMember(u64),
}

impl fmt::Display for VtopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VtopoError::UnknownVirtualSwitch(d) => write!(f, "unknown virtual switch {d}"),
            VtopoError::UnknownVirtualPort(p) => write!(f, "unknown virtual port {p}"),
            VtopoError::Disconnected { from, to } => {
                write!(
                    f,
                    "virtual switch members {from} and {to} are not connected"
                )
            }
            VtopoError::UnknownMember(d) => write!(f, "virtual member switch {d} does not exist"),
        }
    }
}

impl std::error::Error for VtopoError {}

/// A virtual (external) port of a big switch and the physical endpoint it
/// maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualPort {
    /// The port number the app sees on the virtual switch.
    pub vport: PortNo,
    /// Physical switch owning the real port.
    pub phys_dpid: DatapathId,
    /// The real port.
    pub phys_port: PortNo,
}

/// One materialized virtual switch: members + external port map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualSwitch {
    /// The dpid the app sees.
    pub dpid: DatapathId,
    /// Member physical switches.
    pub members: BTreeSet<u64>,
    /// External ports in virtual-port order.
    pub ports: Vec<VirtualPort>,
}

/// The runtime virtual-topology mapper.
///
/// # Examples
///
/// ```
/// use sdnshield_core::vtopo::{PhysView, VirtualTopology, VirtualTopologySpec};
///
/// let phys = PhysView {
///     switches: [1, 2].into_iter().collect(),
///     links: vec![(1, 2, 2, 1), (2, 1, 1, 2)],
///     edge_ports: vec![(1, 1), (2, 2)],
/// };
/// let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &phys)?;
/// assert_eq!(vt.switches().len(), 1);
/// assert_eq!(vt.switches()[0].ports.len(), 2);
/// # Ok::<(), sdnshield_core::vtopo::VtopoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualTopology {
    switches: Vec<VirtualSwitch>,
    /// Adjacency of the *physical* network restricted to mapped members:
    /// (src, dst) -> src egress port.
    adjacency: BTreeMap<(u64, u64), u16>,
}

impl VirtualTopology {
    /// Materializes a spec over a physical view.
    ///
    /// External ports are numbered 1..=n per virtual switch, ordered by
    /// (physical dpid, physical port) for determinism.
    ///
    /// # Errors
    ///
    /// [`VtopoError::UnknownMember`] if the spec names a switch that does not
    /// exist physically.
    pub fn build(spec: &VirtualTopologySpec, phys: &PhysView) -> Result<Self, VtopoError> {
        let defs: Vec<VirtualSwitchDef> = match spec {
            VirtualTopologySpec::SingleBigSwitch => vec![VirtualSwitchDef {
                virtual_dpid: 1,
                members: phys.switches.clone(),
            }],
            VirtualTopologySpec::Map(defs) => defs.clone(),
        };
        let mut adjacency = BTreeMap::new();
        for (src, sport, dst, _dport) in &phys.links {
            adjacency.insert((*src, *dst), *sport);
        }
        let mut switches = Vec::new();
        for def in defs {
            for m in &def.members {
                if !phys.switches.contains(m) {
                    return Err(VtopoError::UnknownMember(*m));
                }
            }
            // External ports: edge ports of members, plus member ports whose
            // link leaves the member set.
            let mut endpoints: Vec<(u64, u16)> = phys
                .edge_ports
                .iter()
                .filter(|(d, _)| def.members.contains(d))
                .copied()
                .collect();
            for (src, sport, dst, _) in &phys.links {
                if def.members.contains(src) && !def.members.contains(dst) {
                    endpoints.push((*src, *sport));
                }
            }
            endpoints.sort_unstable();
            endpoints.dedup();
            let ports = endpoints
                .into_iter()
                .enumerate()
                .map(|(i, (d, p))| VirtualPort {
                    vport: PortNo((i + 1) as u16),
                    phys_dpid: DatapathId(d),
                    phys_port: PortNo(p),
                })
                .collect();
            switches.push(VirtualSwitch {
                dpid: DatapathId(def.virtual_dpid),
                members: def.members,
                ports,
            });
        }
        Ok(VirtualTopology {
            switches,
            adjacency,
        })
    }

    /// The materialized virtual switches.
    pub fn switches(&self) -> &[VirtualSwitch] {
        &self.switches
    }

    /// Looks up a virtual switch by the dpid the app uses.
    pub fn switch(&self, dpid: DatapathId) -> Option<&VirtualSwitch> {
        self.switches.iter().find(|s| s.dpid == dpid)
    }

    /// Is `dpid` one of the virtual switch ids?
    pub fn contains(&self, dpid: DatapathId) -> bool {
        self.switch(dpid).is_some()
    }

    /// The physical member switches a virtual dpid expands to (for stats
    /// fan-out).
    ///
    /// # Errors
    ///
    /// [`VtopoError::UnknownVirtualSwitch`] when `dpid` is not mapped.
    pub fn expand_members(&self, dpid: DatapathId) -> Result<Vec<DatapathId>, VtopoError> {
        let vs = self
            .switch(dpid)
            .ok_or(VtopoError::UnknownVirtualSwitch(dpid))?;
        Ok(vs.members.iter().map(|m| DatapathId(*m)).collect())
    }

    /// Translates a flow-mod issued against a virtual big switch into
    /// physical flow-mods along shortest member paths.
    ///
    /// Semantics: for each `Output(vport)` action, physical rules are
    /// installed on every switch along the path from the rule's scope to the
    /// egress endpoint. When the match pins `in_port` (a virtual port), only
    /// the path from that ingress is installed; otherwise rules route from
    /// *every* member switch toward the egress (destination-routed).
    ///
    /// # Errors
    ///
    /// * [`VtopoError::UnknownVirtualSwitch`] / [`VtopoError::UnknownVirtualPort`]
    ///   for unmapped identifiers.
    /// * [`VtopoError::Disconnected`] when members are not connected.
    pub fn translate_flow_mod(
        &self,
        dpid: DatapathId,
        fm: &FlowMod,
    ) -> Result<Vec<(DatapathId, FlowMod)>, VtopoError> {
        let vs = self
            .switch(dpid)
            .ok_or(VtopoError::UnknownVirtualSwitch(dpid))?;

        // Resolve the egress endpoints named by Output actions.
        let mut egresses: Vec<VirtualPort> = Vec::new();
        for action in &fm.actions {
            if let Action::Output(p) = action {
                if p.is_reserved() {
                    continue;
                }
                let vp = vs
                    .ports
                    .iter()
                    .find(|vp| vp.vport == *p)
                    .ok_or(VtopoError::UnknownVirtualPort(*p))?;
                egresses.push(*vp);
            }
        }

        // Resolve the ingress scope.
        let ingress: Option<VirtualPort> = match fm.flow_match.in_port {
            Some(vp) => Some(
                *vs.ports
                    .iter()
                    .find(|p| p.vport == vp)
                    .ok_or(VtopoError::UnknownVirtualPort(vp))?,
            ),
            None => None,
        };

        let mut out: Vec<(DatapathId, FlowMod)> = Vec::new();
        for egress in &egresses {
            let sources: Vec<u64> = match &ingress {
                Some(ing) => vec![ing.phys_dpid.0],
                None => vs.members.iter().copied().collect(),
            };
            for src in sources {
                let path = self.member_path(vs, src, egress.phys_dpid.0)?;
                for (i, hop) in path.iter().enumerate() {
                    let out_port = if *hop == egress.phys_dpid.0 {
                        egress.phys_port
                    } else {
                        let next = path[i + 1];
                        PortNo(
                            *self
                                .adjacency
                                .get(&(*hop, next))
                                .expect("path edges exist in adjacency"),
                        )
                    };
                    let mut phys = fm.clone();
                    // Rewrite the match: ingress in_port only applies at the
                    // first hop; transit hops match on the rest of the tuple.
                    phys.flow_match.in_port = match (&ingress, i) {
                        (Some(ing), 0) if *hop == ing.phys_dpid.0 => Some(ing.phys_port),
                        _ => None,
                    };
                    // Rewrite actions: keep rewrites, replace virtual outputs.
                    let mut actions: Vec<Action> = Vec::new();
                    for a in &fm.actions {
                        match a {
                            Action::Output(_) => actions.push(Action::Output(out_port)),
                            other => {
                                // Header rewrites only at the egress switch so
                                // transit matching still sees original headers.
                                if *hop == egress.phys_dpid.0 {
                                    actions.push(other.clone());
                                }
                            }
                        }
                    }
                    // Deduplicate identical consecutive outputs produced by
                    // multiple Output actions to the same egress.
                    phys.actions = ActionList(actions);
                    let dp = DatapathId(*hop);
                    if !out.iter().any(|(d, f)| *d == dp && f == &phys) {
                        out.push((dp, phys));
                    }
                }
            }
        }
        // Egress-less rules (drops) apply on every member (or the ingress).
        if egresses.is_empty() {
            let targets: Vec<u64> = match &ingress {
                Some(ing) => vec![ing.phys_dpid.0],
                None => vs.members.iter().copied().collect(),
            };
            for t in targets {
                let mut phys = fm.clone();
                phys.flow_match.in_port = ingress
                    .as_ref()
                    .and_then(|ing| (ing.phys_dpid.0 == t).then_some(ing.phys_port));
                out.push((DatapathId(t), phys));
            }
        }
        Ok(out)
    }

    /// Shortest path between member switches, restricted to the member set.
    fn member_path(&self, vs: &VirtualSwitch, from: u64, to: u64) -> Result<Vec<u64>, VtopoError> {
        if from == to {
            return Ok(vec![from]);
        }
        let mut prev: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        seen.insert(from);
        while let Some(cur) = queue.pop_front() {
            for ((src, dst), _) in self.adjacency.range((cur, 0)..=(cur, u64::MAX)) {
                debug_assert_eq!(*src, cur);
                if vs.members.contains(dst) && seen.insert(*dst) {
                    prev.insert(*dst, cur);
                    if *dst == to {
                        let mut path = vec![to];
                        let mut c = to;
                        while c != from {
                            c = prev[&c];
                            path.push(c);
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    queue.push_back(*dst);
                }
            }
        }
        Err(VtopoError::Disconnected { from, to })
    }

    /// Aggregates per-member statistics replies into one virtual reply.
    ///
    /// Flow stats concatenate; aggregate/port/table stats sum.
    pub fn aggregate_stats(&self, replies: Vec<StatsReply>) -> StatsReply {
        let mut agg = AggregateStats::default();
        let mut flows = Vec::new();
        let mut ports = Vec::new();
        let mut table: Option<sdnshield_openflow::messages::TableStats> = None;
        let mut saw_agg = false;
        let mut saw_flow = false;
        let mut saw_port = false;
        for r in replies {
            match r {
                StatsReply::Aggregate(a) => {
                    saw_agg = true;
                    agg.packet_count += a.packet_count;
                    agg.byte_count += a.byte_count;
                    agg.flow_count += a.flow_count;
                }
                StatsReply::Flow(mut f) => {
                    saw_flow = true;
                    flows.append(&mut f);
                }
                StatsReply::Port(mut p) => {
                    saw_port = true;
                    ports.append(&mut p);
                }
                StatsReply::Table(t) => {
                    let acc = table.get_or_insert_with(Default::default);
                    acc.active_count += t.active_count;
                    acc.lookup_count += t.lookup_count;
                    acc.matched_count += t.matched_count;
                    acc.max_entries += t.max_entries;
                }
            }
        }
        if saw_flow {
            StatsReply::Flow(flows)
        } else if saw_port {
            StatsReply::Port(ports)
        } else if saw_agg {
            StatsReply::Aggregate(agg)
        } else {
            StatsReply::Table(table.unwrap_or_default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::types::{Ipv4, Priority};

    /// Linear 3-switch physical view: h-(s1)-(s2)-(s3)-h with hosts on 1, 3.
    fn linear3() -> PhysView {
        PhysView {
            switches: [1, 2, 3].into_iter().collect(),
            // s1 port2 <-> s2 port1 ; s2 port2 <-> s3 port1
            links: vec![(1, 2, 2, 1), (2, 1, 1, 2), (2, 2, 3, 1), (3, 1, 2, 2)],
            edge_ports: vec![(1, 1), (3, 2)],
        }
    }

    #[test]
    fn big_switch_port_enumeration() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let vs = &vt.switches()[0];
        assert_eq!(vs.dpid, DatapathId(1));
        assert_eq!(vs.members.len(), 3);
        // Two edge ports: (1,1) and (3,2), numbered deterministically.
        assert_eq!(vs.ports.len(), 2);
        assert_eq!(vs.ports[0].phys_dpid, DatapathId(1));
        assert_eq!(vs.ports[0].vport, PortNo(1));
        assert_eq!(vs.ports[1].phys_dpid, DatapathId(3));
        assert_eq!(vs.ports[1].vport, PortNo(2));
    }

    #[test]
    fn unknown_member_rejected() {
        let spec = VirtualTopologySpec::Map(vec![VirtualSwitchDef {
            virtual_dpid: 10,
            members: [1, 99].into_iter().collect(),
        }]);
        assert_eq!(
            VirtualTopology::build(&spec, &linear3()).unwrap_err(),
            VtopoError::UnknownMember(99)
        );
    }

    #[test]
    fn translate_ingress_to_egress_path() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        // Virtual rule: in_port 1 (s1 edge) -> output port 2 (s3 edge).
        let fm = FlowMod::add(
            FlowMatch::default()
                .with_in_port(PortNo(1))
                .with_ip_dst(Ipv4::new(10, 0, 0, 3)),
            Priority(10),
            ActionList::output(PortNo(2)),
        );
        let phys = vt.translate_flow_mod(DatapathId(1), &fm).unwrap();
        // One rule per switch along 1-2-3.
        assert_eq!(phys.len(), 3);
        let dpids: Vec<u64> = phys.iter().map(|(d, _)| d.0).collect();
        assert_eq!(dpids, vec![1, 2, 3]);
        // s1 keeps the physical in_port and forwards out port 2 (toward s2).
        assert_eq!(phys[0].1.flow_match.in_port, Some(PortNo(1)));
        assert_eq!(phys[0].1.actions, ActionList::output(PortNo(2)));
        // s2 is transit: no in_port pin, forwards out port 2 (toward s3).
        assert_eq!(phys[1].1.flow_match.in_port, None);
        assert_eq!(phys[1].1.actions, ActionList::output(PortNo(2)));
        // s3 egresses on the edge port 2.
        assert_eq!(phys[2].1.actions, ActionList::output(PortNo(2)));
        // All keep the IP match.
        for (_, f) in &phys {
            assert!(f.flow_match.ip_dst.is_some());
            assert_eq!(f.priority, Priority(10));
        }
    }

    #[test]
    fn translate_without_ingress_routes_from_all_members() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let fm = FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
            Priority(10),
            ActionList::output(PortNo(2)), // egress at s3
        );
        let phys = vt.translate_flow_mod(DatapathId(1), &fm).unwrap();
        // Every member has a rule routing toward s3; dedup keeps them unique.
        let dpids: BTreeSet<u64> = phys.iter().map(|(d, _)| d.0).collect();
        assert_eq!(dpids, [1, 2, 3].into_iter().collect());
    }

    #[test]
    fn rewrites_applied_only_at_egress() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let fm = FlowMod::add(
            FlowMatch::default().with_in_port(PortNo(1)),
            Priority(5),
            ActionList(vec![
                Action::SetIpDst(Ipv4::new(9, 9, 9, 9)),
                Action::Output(PortNo(2)),
            ]),
        );
        let phys = vt.translate_flow_mod(DatapathId(1), &fm).unwrap();
        for (dpid, f) in &phys {
            let has_rewrite = f.actions.iter().any(|a| a.is_modifying());
            assert_eq!(has_rewrite, dpid.0 == 3, "rewrite only at egress switch");
        }
    }

    #[test]
    fn unknown_ids_rejected() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let fm = FlowMod::add(FlowMatch::any(), Priority(1), ActionList::output(PortNo(9)));
        assert_eq!(
            vt.translate_flow_mod(DatapathId(1), &fm).unwrap_err(),
            VtopoError::UnknownVirtualPort(PortNo(9))
        );
        assert_eq!(
            vt.translate_flow_mod(DatapathId(42), &fm).unwrap_err(),
            VtopoError::UnknownVirtualSwitch(DatapathId(42))
        );
    }

    #[test]
    fn disconnected_members_detected() {
        let phys = PhysView {
            switches: [1, 2].into_iter().collect(),
            links: vec![], // no connectivity
            edge_ports: vec![(1, 1), (2, 1)],
        };
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &phys).unwrap();
        let fm = FlowMod::add(
            FlowMatch::default().with_in_port(PortNo(1)),
            Priority(1),
            ActionList::output(PortNo(2)),
        );
        assert!(matches!(
            vt.translate_flow_mod(DatapathId(1), &fm).unwrap_err(),
            VtopoError::Disconnected { .. }
        ));
    }

    #[test]
    fn drop_rules_install_on_scope() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let fm = FlowMod::add(
            FlowMatch::default().with_tp_dst(23),
            Priority(100),
            ActionList::drop(),
        );
        let phys = vt.translate_flow_mod(DatapathId(1), &fm).unwrap();
        assert_eq!(phys.len(), 3, "drop everywhere");
        for (_, f) in &phys {
            assert!(f.actions.is_drop());
        }
    }

    #[test]
    fn explicit_map_two_virtual_switches() {
        let spec = VirtualTopologySpec::Map(vec![
            VirtualSwitchDef {
                virtual_dpid: 10,
                members: [1, 2].into_iter().collect(),
            },
            VirtualSwitchDef {
                virtual_dpid: 11,
                members: [3].into_iter().collect(),
            },
        ]);
        let vt = VirtualTopology::build(&spec, &linear3()).unwrap();
        assert!(vt.contains(DatapathId(10)));
        assert!(vt.contains(DatapathId(11)));
        assert!(!vt.contains(DatapathId(1)));
        // Virtual switch 10's external ports: edge (1,1) and boundary (2,2)
        // toward s3.
        let vs10 = vt.switch(DatapathId(10)).unwrap();
        let phys_endpoints: Vec<(u64, u16)> = vs10
            .ports
            .iter()
            .map(|p| (p.phys_dpid.0, p.phys_port.0))
            .collect();
        assert_eq!(phys_endpoints, vec![(1, 1), (2, 2)]);
        assert_eq!(
            vt.expand_members(DatapathId(11)).unwrap(),
            vec![DatapathId(3)]
        );
    }

    #[test]
    fn stats_aggregation() {
        let vt = VirtualTopology::build(&VirtualTopologySpec::SingleBigSwitch, &linear3()).unwrap();
        let agg = vt.aggregate_stats(vec![
            StatsReply::Aggregate(AggregateStats {
                packet_count: 5,
                byte_count: 500,
                flow_count: 2,
            }),
            StatsReply::Aggregate(AggregateStats {
                packet_count: 3,
                byte_count: 300,
                flow_count: 1,
            }),
        ]);
        assert_eq!(
            agg,
            StatsReply::Aggregate(AggregateStats {
                packet_count: 8,
                byte_count: 800,
                flow_count: 3,
            })
        );
    }

    #[test]
    fn spec_display() {
        assert_eq!(
            VirtualTopologySpec::SingleBigSwitch.to_string(),
            "VIRTUAL SINGLE_BIG_SWITCH"
        );
        let spec = VirtualTopologySpec::Map(vec![VirtualSwitchDef {
            virtual_dpid: 10,
            members: [1, 2].into_iter().collect(),
        }]);
        assert_eq!(spec.to_string(), "VIRTUAL { 1,2 AS 10 }");
    }
}
