//! The mediated API-call abstraction.
//!
//! Every northbound call an app makes is reified as an [`ApiCall`] before it
//! reaches the kernel: the caller identity, the operation, and its runtime
//! arguments. This is the object the permission engine inspects (paper
//! §VI-B: "a runtime API call is wrapped into a permission checking object,
//! which contains the caller app identity, the required permission and the
//! parameters").

use std::fmt;

use bytes::Bytes;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, PacketOut, StatsRequest};
use sdnshield_openflow::types::{DatapathId, Ipv4, Priority};

use crate::token::PermissionToken;

/// Identity of a controller app, assigned at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AppId(pub u16);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app:{}", self.0)
    }
}

/// Kinds of events apps can subscribe to (each guarded by an event token).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Packet-in notifications.
    PacketIn,
    /// Flow-removed / flow-change notifications.
    Flow,
    /// Topology-change notifications.
    Topology,
    /// Error notifications.
    Error,
}

impl EventKind {
    /// The token guarding subscriptions to this event kind.
    pub fn required_token(self) -> PermissionToken {
        match self {
            EventKind::PacketIn => PermissionToken::PktInEvent,
            EventKind::Flow => PermissionToken::FlowEvent,
            EventKind::Topology => PermissionToken::TopologyEvent,
            EventKind::Error => PermissionToken::ErrorEvent,
        }
    }
}

/// One mediated API call: who + what.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiCall {
    /// The calling app.
    pub app: AppId,
    /// The operation and its arguments.
    pub kind: ApiCallKind,
}

impl ApiCall {
    /// Creates a call record.
    pub fn new(app: AppId, kind: ApiCallKind) -> Self {
        ApiCall { app, kind }
    }

    /// The permission token this call requires.
    pub fn required_token(&self) -> PermissionToken {
        self.kind.required_token()
    }
}

/// The operation being performed, with its runtime arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiCallKind {
    /// Read flow entries subsumed by `query` on `dpid`.
    ReadFlowTable {
        /// Target switch.
        dpid: DatapathId,
        /// Flow-space query.
        query: FlowMatch,
    },
    /// Install or modify a rule.
    InsertFlow {
        /// Target switch.
        dpid: DatapathId,
        /// The flow-mod (Add/Modify*).
        flow_mod: FlowMod,
    },
    /// Delete rules.
    DeleteFlow {
        /// Target switch.
        dpid: DatapathId,
        /// The flow-mod (Delete*).
        flow_mod: FlowMod,
    },
    /// Read the (filtered) topology.
    ReadTopology,
    /// Change the controller's topology view (add/remove a link or switch).
    ModifyTopology {
        /// Affected switch.
        dpid: DatapathId,
    },
    /// Request statistics.
    ReadStatistics {
        /// Target switch.
        dpid: DatapathId,
        /// What statistics.
        request: StatsRequest,
    },
    /// Access a packet-in payload.
    ReadPayload {
        /// Switch the packet-in came from.
        dpid: DatapathId,
    },
    /// Emit a packet-out.
    SendPacketOut {
        /// Target switch.
        dpid: DatapathId,
        /// The message.
        packet_out: PacketOut,
    },
    /// Subscribe to an event stream.
    Subscribe {
        /// The event kind.
        kind: EventKind,
    },
    /// Open a network connection from the controller host.
    HostConnect {
        /// Remote address.
        dst_ip: Ipv4,
        /// Remote TCP port.
        dst_port: u16,
    },
    /// Send on an established host connection.
    ///
    /// The kernel re-validates the destination against the `host_network`
    /// filter by resolving the handle to its remote address, so a filter
    /// narrowed after connect still applies.
    HostSend {
        /// Opaque connection handle (kernel-assigned).
        conn: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// Open a file on the controller host.
    FileOpen {
        /// Filesystem path.
        path: String,
        /// Whether the open is for writing.
        write: bool,
    },
    /// Spawn a process on the controller host.
    ProcessExec {
        /// Program path or name.
        program: String,
    },
}

impl ApiCallKind {
    /// The permission token this operation requires.
    pub fn required_token(&self) -> PermissionToken {
        match self {
            ApiCallKind::ReadFlowTable { .. } => PermissionToken::ReadFlowTable,
            ApiCallKind::InsertFlow { .. } => PermissionToken::InsertFlow,
            ApiCallKind::DeleteFlow { .. } => PermissionToken::DeleteFlow,
            ApiCallKind::ReadTopology => PermissionToken::VisibleTopology,
            ApiCallKind::ModifyTopology { .. } => PermissionToken::ModifyTopology,
            ApiCallKind::ReadStatistics { .. } => PermissionToken::ReadStatistics,
            ApiCallKind::ReadPayload { .. } => PermissionToken::ReadPayload,
            ApiCallKind::SendPacketOut { .. } => PermissionToken::SendPktOut,
            ApiCallKind::Subscribe { kind } => kind.required_token(),
            ApiCallKind::HostConnect { .. } | ApiCallKind::HostSend { .. } => {
                PermissionToken::HostNetwork
            }
            ApiCallKind::FileOpen { .. } => PermissionToken::FileSystem,
            ApiCallKind::ProcessExec { .. } => PermissionToken::ProcessRuntime,
        }
    }

    /// A short operation name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            ApiCallKind::ReadFlowTable { .. } => "read_flow_table",
            ApiCallKind::InsertFlow { .. } => "insert_flow",
            ApiCallKind::DeleteFlow { .. } => "delete_flow",
            ApiCallKind::ReadTopology => "read_topology",
            ApiCallKind::ModifyTopology { .. } => "modify_topology",
            ApiCallKind::ReadStatistics { .. } => "read_statistics",
            ApiCallKind::ReadPayload { .. } => "read_payload",
            ApiCallKind::SendPacketOut { .. } => "send_packet_out",
            ApiCallKind::Subscribe { .. } => "subscribe",
            ApiCallKind::HostConnect { .. } => "host_connect",
            ApiCallKind::HostSend { .. } => "host_send",
            ApiCallKind::FileOpen { .. } => "file_open",
            ApiCallKind::ProcessExec { .. } => "process_exec",
        }
    }

    /// The flow-space this call touches, viewed as a [`FlowMatch`], when it
    /// has one. Predicate filters compare against this.
    ///
    /// Host-network connects expose their destination as an `ip_dst`/`tp_dst`
    /// match so the paper's `network_access LIMITING IP_DST …` permissions
    /// work uniformly.
    pub fn flow_space(&self) -> Option<FlowMatch> {
        match self {
            ApiCallKind::ReadFlowTable { query, .. } => Some(query.clone()),
            ApiCallKind::ReadStatistics {
                request: StatsRequest::Flow(m) | StatsRequest::Aggregate(m),
                ..
            } => Some(m.clone()),
            ApiCallKind::InsertFlow { flow_mod, .. } | ApiCallKind::DeleteFlow { flow_mod, .. } => {
                Some(flow_mod.flow_match.clone())
            }
            ApiCallKind::HostConnect { dst_ip, dst_port } => Some(
                FlowMatch::default()
                    .with_ip_dst(*dst_ip)
                    .with_tp_dst(*dst_port),
            ),
            _ => None,
        }
    }

    /// The switch this call targets, when it targets one.
    pub fn dpid(&self) -> Option<DatapathId> {
        match self {
            ApiCallKind::ReadFlowTable { dpid, .. }
            | ApiCallKind::InsertFlow { dpid, .. }
            | ApiCallKind::DeleteFlow { dpid, .. }
            | ApiCallKind::ModifyTopology { dpid }
            | ApiCallKind::ReadStatistics { dpid, .. }
            | ApiCallKind::ReadPayload { dpid }
            | ApiCallKind::SendPacketOut { dpid, .. } => Some(*dpid),
            _ => None,
        }
    }

    /// The rule priority, for flow-mods.
    pub fn priority(&self) -> Option<Priority> {
        match self {
            ApiCallKind::InsertFlow { flow_mod, .. } | ApiCallKind::DeleteFlow { flow_mod, .. } => {
                Some(flow_mod.priority)
            }
            _ => None,
        }
    }

    /// The packet-out payload, for send-packet-out calls.
    pub fn pkt_out_payload(&self) -> Option<&Bytes> {
        match self {
            ApiCallKind::SendPacketOut { packet_out, .. } => Some(&packet_out.payload),
            _ => None,
        }
    }
}

impl fmt::Display for ApiCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.app, self.kind.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::types::{BufferId, PortNo};

    fn insert_call() -> ApiCall {
        ApiCall::new(
            AppId(1),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(2),
                flow_mod: FlowMod::add(
                    FlowMatch::default().with_tp_dst(80),
                    Priority(5),
                    ActionList::output(PortNo(1)),
                ),
            },
        )
    }

    #[test]
    fn required_tokens() {
        assert_eq!(insert_call().required_token(), PermissionToken::InsertFlow);
        let sub = ApiCallKind::Subscribe {
            kind: EventKind::PacketIn,
        };
        assert_eq!(sub.required_token(), PermissionToken::PktInEvent);
        let hc = ApiCallKind::HostConnect {
            dst_ip: Ipv4::new(1, 2, 3, 4),
            dst_port: 80,
        };
        assert_eq!(hc.required_token(), PermissionToken::HostNetwork);
    }

    #[test]
    fn flow_space_of_insert() {
        let call = insert_call();
        let fs = call.kind.flow_space().unwrap();
        assert_eq!(fs.tp_dst, Some(80));
        assert_eq!(call.kind.dpid(), Some(DatapathId(2)));
        assert_eq!(call.kind.priority(), Some(Priority(5)));
    }

    #[test]
    fn host_connect_exposes_destination_as_flow_space() {
        let hc = ApiCallKind::HostConnect {
            dst_ip: Ipv4::new(10, 1, 0, 7),
            dst_port: 443,
        };
        let fs = hc.flow_space().unwrap();
        assert!(fs.ip_dst.unwrap().matches(Ipv4::new(10, 1, 0, 7)));
        assert_eq!(fs.tp_dst, Some(443));
        assert!(hc.dpid().is_none());
    }

    #[test]
    fn pkt_out_payload_access() {
        let po = ApiCallKind::SendPacketOut {
            dpid: DatapathId(1),
            packet_out: PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo::NONE,
                actions: ActionList::output(PortNo(1)),
                payload: Bytes::from_static(b"abc"),
            },
        };
        assert_eq!(po.pkt_out_payload().unwrap().as_ref(), b"abc");
        assert!(ApiCallKind::ReadTopology.pkt_out_payload().is_none());
    }

    #[test]
    fn display() {
        assert_eq!(insert_call().to_string(), "app:1:insert_flow");
    }
}
