//! Parser for the SDNShield permission language (paper Appendix A).
//!
//! ```text
//! manifest    := perm*
//! perm        := PERM token | PERM token LIMITING filter_expr
//! filter_expr := filter_expr AND/OR filter | NOT filter_expr
//!              | ( filter_expr ) | filter
//! filter      := pred_f | action_f | owner_f | priority_f | table_size_f
//!              | pkt_out_f | topo_f | callback_f | statistics_f | stub
//! ```
//!
//! Deviations from the paper's figure, documented here:
//! * links in `phy_topo_f` are written `a-b` endpoint pairs instead of opaque
//!   link indices (`LINK 1-2,2-3`), which keeps manifests self-contained;
//! * `ANY` is accepted as the no-op filter (handy for tests and printing);
//! * an optional `ACTION` keyword may precede `DROP | FORWARD | MODIFY`,
//!   matching the paper's §VII examples.

use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::types::Ipv4;

use crate::filter::{
    ActionConstraint, CallbackCap, Field, FilterExpr, Ownership, PhysTopoFilter, PktOutSource,
    SingletonFilter, StatsLevel,
};
use crate::lex::{lex, Cursor, Span, SyntaxError, Tok, Token};
use crate::perm::{Permission, PermissionSet};
use crate::token::PermissionToken;
use crate::vtopo::{VirtualSwitchDef, VirtualTopologySpec};

/// Parses a permission manifest: a sequence of `PERM …` declarations.
///
/// # Errors
///
/// Returns [`SyntaxError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use sdnshield_core::lang::parse_manifest;
/// use sdnshield_core::token::PermissionToken;
///
/// let manifest = parse_manifest(
///     "PERM read_flow_table LIMITING OWN_FLOWS OR \\
///          IP_DST 10.13.0.0 MASK 255.255.0.0\n\
///      PERM read_statistics",
/// )?;
/// assert!(manifest.contains_token(PermissionToken::ReadFlowTable));
/// assert!(manifest.contains_token(PermissionToken::ReadStatistics));
/// # Ok::<(), sdnshield_core::lex::SyntaxError>(())
/// ```
pub fn parse_manifest(src: &str) -> Result<PermissionSet, SyntaxError> {
    Ok(parse_manifest_spanned(src)?.to_set())
}

/// Parses a manifest keeping source spans for every declaration and filter
/// atom, for tooling that reports positions (the `shieldcheck` analyzer).
///
/// # Errors
///
/// Returns [`SyntaxError`] with position information on malformed input.
pub fn parse_manifest_spanned(src: &str) -> Result<SpannedManifest, SyntaxError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut perms = Vec::new();
    while !cur.at_end() {
        perms.push(parse_perm_spanned(&mut cur)?);
    }
    Ok(SpannedManifest { perms })
}

/// A manifest parse result that retains source spans and declaration order
/// (duplicate tokens are preserved rather than OR-joined).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedManifest {
    /// The declarations, in source order.
    pub perms: Vec<SpannedPerm>,
}

impl SpannedManifest {
    /// Lowers to the plain [`PermissionSet`] (duplicate tokens OR-join).
    pub fn to_set(&self) -> PermissionSet {
        let mut set = PermissionSet::new();
        for p in &self.perms {
            set.insert(p.to_permission());
        }
        set
    }
}

/// One `PERM …` declaration with source spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedPerm {
    /// The granted token.
    pub token: PermissionToken,
    /// Span of the `PERM` keyword.
    pub keyword_span: Span,
    /// Span of the token name.
    pub name_span: Span,
    /// The `LIMITING` filter, if present.
    pub filter: Option<SpannedExpr>,
}

impl SpannedPerm {
    /// Lowers to a plain [`Permission`].
    pub fn to_permission(&self) -> Permission {
        match &self.filter {
            Some(f) => Permission::limited(self.token, f.to_expr()),
            None => Permission::unrestricted(self.token),
        }
    }
}

/// A filter expression with a source span on every leaf.
///
/// Mirrors [`FilterExpr`] but keeps the position of each atom's head token.
/// [`SpannedExpr::to_expr`] lowers through the same [`FilterExpr::and`] /
/// [`FilterExpr::or`] combinators the parser historically used, so the
/// lowered tree is structurally identical to what `parse_filter` produces
/// (flattening and `ANY`-absorption included).
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedExpr {
    /// `ANY`; the span covers the keyword.
    True(Span),
    /// A singleton filter; the span covers its head keyword.
    Atom(SingletonFilter, Span),
    /// Conjunction (two or more operands).
    And(Vec<SpannedExpr>),
    /// Disjunction (two or more operands).
    Or(Vec<SpannedExpr>),
    /// Negation; the span covers the `NOT` keyword.
    Not(Box<SpannedExpr>, Span),
}

impl SpannedExpr {
    /// The zero span used when rebuilding spans from a span-less tree.
    pub const DUMMY_SPAN: Span = Span {
        line: 0,
        col: 0,
        len: 0,
    };

    /// Lowers to the plain [`FilterExpr`].
    pub fn to_expr(&self) -> FilterExpr {
        match self {
            SpannedExpr::True(_) => FilterExpr::True,
            SpannedExpr::Atom(f, _) => FilterExpr::Atom(f.clone()),
            SpannedExpr::And(parts) => parts
                .iter()
                .map(SpannedExpr::to_expr)
                .reduce(FilterExpr::and)
                .unwrap_or(FilterExpr::True),
            SpannedExpr::Or(parts) => parts
                .iter()
                .map(SpannedExpr::to_expr)
                .reduce(FilterExpr::or)
                .unwrap_or(FilterExpr::True),
            SpannedExpr::Not(inner, _) => inner.to_expr().not(),
        }
    }

    /// Rebuilds a spanned tree (with [`Self::DUMMY_SPAN`] everywhere) from a
    /// plain expression, so span-less callers can reuse span-based analyses.
    pub fn from_expr(e: &FilterExpr) -> SpannedExpr {
        match e {
            FilterExpr::True => SpannedExpr::True(Self::DUMMY_SPAN),
            FilterExpr::Atom(f) => SpannedExpr::Atom(f.clone(), Self::DUMMY_SPAN),
            FilterExpr::And(parts) => SpannedExpr::And(parts.iter().map(Self::from_expr).collect()),
            FilterExpr::Or(parts) => SpannedExpr::Or(parts.iter().map(Self::from_expr).collect()),
            FilterExpr::Not(inner) => {
                SpannedExpr::Not(Box::new(Self::from_expr(inner)), Self::DUMMY_SPAN)
            }
        }
    }

    /// A span anchoring this subtree: its first leaf's span.
    pub fn span(&self) -> Span {
        match self {
            SpannedExpr::True(s) | SpannedExpr::Atom(_, s) | SpannedExpr::Not(_, s) => *s,
            SpannedExpr::And(parts) | SpannedExpr::Or(parts) => parts
                .first()
                .map(SpannedExpr::span)
                .unwrap_or(Self::DUMMY_SPAN),
        }
    }
}

/// Parses a single `PERM …` declaration keeping spans.
pub(crate) fn parse_perm_spanned(cur: &mut Cursor) -> Result<SpannedPerm, SyntaxError> {
    let keyword_span = cur.peek_span();
    cur.expect_word("PERM")?;
    let (name, name_span) = match cur.next() {
        Some(Token {
            tok: Tok::Word(w),
            line,
            col,
            len,
        }) => (w, Span::new(line, col, len)),
        Some(t) => return Err(SyntaxError::at("expected permission token name", &t)),
        None => return Err(cur.eof_err("expected permission token name")),
    };
    let token: PermissionToken = name
        .parse()
        .map_err(|e| SyntaxError::new(format!("{e}"), name_span.line, name_span.col))?;
    let filter = if cur.eat_word("LIMITING") {
        Some(parse_filter_expr_spanned(cur)?)
    } else {
        None
    };
    Ok(SpannedPerm {
        token,
        keyword_span,
        name_span,
        filter,
    })
}

/// Parses a filter expression (public entry point, must consume all input).
///
/// # Errors
///
/// Returns [`SyntaxError`] on malformed input or trailing tokens.
pub fn parse_filter(src: &str) -> Result<FilterExpr, SyntaxError> {
    Ok(parse_filter_spanned(src)?.to_expr())
}

/// Spanned variant of [`parse_filter`].
///
/// # Errors
///
/// Returns [`SyntaxError`] on malformed input or trailing tokens.
pub fn parse_filter_spanned(src: &str) -> Result<SpannedExpr, SyntaxError> {
    let mut cur = Cursor::new(lex(src)?);
    let expr = parse_filter_expr_spanned(&mut cur)?;
    if let Some(t) = cur.peek() {
        return Err(SyntaxError::at(format!("unexpected trailing {}", t.tok), t));
    }
    Ok(expr)
}

/// OR-level precedence (lowest).
pub(crate) fn parse_filter_expr_spanned(cur: &mut Cursor) -> Result<SpannedExpr, SyntaxError> {
    let mut parts = vec![parse_and(cur)?];
    while cur.eat_word("OR") {
        parts.push(parse_and(cur)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("one operand")
    } else {
        SpannedExpr::Or(parts)
    })
}

fn parse_and(cur: &mut Cursor) -> Result<SpannedExpr, SyntaxError> {
    let mut parts = vec![parse_unary(cur)?];
    while cur.eat_word("AND") {
        parts.push(parse_unary(cur)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("one operand")
    } else {
        SpannedExpr::And(parts)
    })
}

fn parse_unary(cur: &mut Cursor) -> Result<SpannedExpr, SyntaxError> {
    if cur.peek_word("NOT") {
        let span = cur.peek_span();
        cur.next();
        return Ok(SpannedExpr::Not(Box::new(parse_unary(cur)?), span));
    }
    if cur.eat(&Tok::LParen) {
        let inner = parse_filter_expr_spanned(cur)?;
        cur.expect(&Tok::RParen)?;
        return Ok(inner);
    }
    parse_singleton(cur)
}

/// Keywords that terminate a filter expression (so manifests need no
/// explicit statement separator).
fn is_singleton_start(w: &str) -> bool {
    !matches!(
        w,
        "PERM"
            | "AND"
            | "OR"
            | "NOT"
            | "LIMITING"
            | "MASK"
            | "AS"
            | "LET"
            | "ASSERT"
            | "EITHER"
            | "MEET"
            | "JOIN"
            | "APP"
            | "FOR"
    )
}

fn parse_singleton(cur: &mut Cursor) -> Result<SpannedExpr, SyntaxError> {
    let eof = cur.eof_err("expected a filter");
    let t = cur.next().ok_or(eof)?;
    let span = t.span();
    let word = match &t.tok {
        Tok::Word(w) if is_singleton_start(w) => w.clone(),
        other => {
            return Err(SyntaxError::at(
                format!("expected a filter, found {other}"),
                &t,
            ))
        }
    };
    let filter = match word.as_str() {
        "ANY" => return Ok(SpannedExpr::True(span)),
        "OWN_FLOWS" => SingletonFilter::Ownership(Ownership::OwnFlows),
        "ALL_FLOWS" => SingletonFilter::Ownership(Ownership::AllFlows),
        "FROM_PKT_IN" => SingletonFilter::PktOut(PktOutSource::FromPktIn),
        "ARBITRARY" => SingletonFilter::PktOut(PktOutSource::Arbitrary),
        "EVENT_INTERCEPTION" => SingletonFilter::Callback(CallbackCap::EventInterception),
        "MODIFY_EVENT_ORDER" => SingletonFilter::Callback(CallbackCap::ModifyEventOrder),
        "FLOW_LEVEL" => SingletonFilter::Stats(StatsLevel::FlowLevel),
        "PORT_LEVEL" => SingletonFilter::Stats(StatsLevel::PortLevel),
        "SWITCH_LEVEL" => SingletonFilter::Stats(StatsLevel::SwitchLevel),
        "MAX_PRIORITY" => SingletonFilter::MaxPriority(expect_u16(cur)?),
        "MIN_PRIORITY" => SingletonFilter::MinPriority(expect_u16(cur)?),
        "MAX_RULE_COUNT" => SingletonFilter::MaxRuleCount(expect_u32(cur)?),
        "DROP" => SingletonFilter::Action(ActionConstraint::Drop),
        "FORWARD" => SingletonFilter::Action(ActionConstraint::Forward),
        "MODIFY" => SingletonFilter::Action(ActionConstraint::Modify(expect_field(cur)?)),
        "ACTION" => {
            let eof = cur.eof_err("expected DROP, FORWARD or MODIFY");
            let t = cur.next().ok_or(eof)?;
            match &t.tok {
                Tok::Word(w) if w == "DROP" => SingletonFilter::Action(ActionConstraint::Drop),
                Tok::Word(w) if w == "FORWARD" => {
                    SingletonFilter::Action(ActionConstraint::Forward)
                }
                Tok::Word(w) if w == "MODIFY" => {
                    SingletonFilter::Action(ActionConstraint::Modify(expect_field(cur)?))
                }
                other => {
                    return Err(SyntaxError::at(
                        format!("expected DROP, FORWARD or MODIFY after ACTION, found {other}"),
                        &t,
                    ))
                }
            }
        }
        "WILDCARD" => {
            let field = expect_field(cur)?;
            let mask = expect_mask_value(cur)?;
            SingletonFilter::Wildcard { field, mask }
        }
        "SWITCH" => {
            let switches = parse_int_list(cur)?;
            let links = if cur.eat_word("LINK") {
                parse_link_list(cur)?
            } else {
                Vec::new()
            };
            SingletonFilter::PhysTopo(PhysTopoFilter::new(switches, links))
        }
        "VIRTUAL" => parse_virtual(cur)?,
        // A field keyword starts a predicate filter.
        w if Field::from_keyword(w).is_some() => {
            let field = Field::from_keyword(w).expect("checked");
            parse_pred(cur, field, &t)?
        }
        // Anything else is a stub macro left for the administrator.
        _ => SingletonFilter::Stub(word),
    };
    Ok(SpannedExpr::Atom(filter, span))
}

fn expect_u16(cur: &mut Cursor) -> Result<u16, SyntaxError> {
    let sp = cur.peek_span();
    let v = cur.expect_int()?;
    u16::try_from(v)
        .map_err(|_| SyntaxError::new(format!("value {v} exceeds 16 bits"), sp.line, sp.col))
}

fn expect_u32(cur: &mut Cursor) -> Result<u32, SyntaxError> {
    let sp = cur.peek_span();
    let v = cur.expect_int()?;
    u32::try_from(v)
        .map_err(|_| SyntaxError::new(format!("value {v} exceeds 32 bits"), sp.line, sp.col))
}

fn expect_field(cur: &mut Cursor) -> Result<Field, SyntaxError> {
    let eof = cur.eof_err("expected a field name");
    let t = cur.next().ok_or(eof)?;
    match &t.tok {
        Tok::Word(w) => Field::from_keyword(w)
            .ok_or_else(|| SyntaxError::at(format!("unknown field `{w}`"), &t)),
        other => Err(SyntaxError::at(
            format!("expected a field name, found {other}"),
            &t,
        )),
    }
}

/// A wildcard mask value: an IPv4-shaped mask or a plain integer.
fn expect_mask_value(cur: &mut Cursor) -> Result<u32, SyntaxError> {
    let eof = cur.eof_err("expected a mask");
    let t = cur.next().ok_or(eof)?;
    match &t.tok {
        Tok::Ip(ip) => Ok(ip.0),
        Tok::Int(v) => u32::try_from(*v).map_err(|_| SyntaxError::at("mask exceeds 32 bits", &t)),
        other => Err(SyntaxError::at(
            format!("expected a mask, found {other}"),
            &t,
        )),
    }
}

/// Parses the value (and optional MASK) of a predicate filter on `field`.
fn parse_pred(cur: &mut Cursor, field: Field, at: &Token) -> Result<SingletonFilter, SyntaxError> {
    let mut m = FlowMatch::default();
    let eof = cur.eof_err("expected a field value");
    let vt = cur.next().ok_or(eof)?;
    match field {
        Field::IpSrc | Field::IpDst => {
            let addr = match &vt.tok {
                Tok::Ip(ip) => *ip,
                Tok::Int(v) => Ipv4(
                    u32::try_from(*v)
                        .map_err(|_| SyntaxError::at("IPv4 value exceeds 32 bits", &vt))?,
                ),
                other => {
                    return Err(SyntaxError::at(
                        format!("expected an IPv4 value, found {other}"),
                        &vt,
                    ))
                }
            };
            let mask = if cur.eat_word("MASK") {
                Ipv4(expect_mask_value(cur)?)
            } else {
                Ipv4(u32::MAX)
            };
            let masked = MaskedIpv4::new(addr, mask);
            if field == Field::IpSrc {
                m.ip_src = Some(masked);
            } else {
                m.ip_dst = Some(masked);
            }
        }
        Field::EthSrc | Field::EthDst => {
            let mac = match &vt.tok {
                Tok::Mac(mac) => *mac,
                other => {
                    return Err(SyntaxError::at(
                        format!("expected a MAC value, found {other}"),
                        &vt,
                    ))
                }
            };
            if field == Field::EthSrc {
                m.eth_src = Some(mac);
            } else {
                m.eth_dst = Some(mac);
            }
        }
        _ => {
            let v = match &vt.tok {
                Tok::Int(v) => *v,
                other => {
                    return Err(SyntaxError::at(
                        format!("expected an integer value, found {other}"),
                        &vt,
                    ))
                }
            };
            let narrow16 =
                |v: u64| u16::try_from(v).map_err(|_| SyntaxError::at("value exceeds 16 bits", at));
            match field {
                Field::InPort => m.in_port = Some(sdnshield_openflow::types::PortNo(narrow16(v)?)),
                Field::EthType => m.eth_type = Some(narrow16(v)?),
                Field::VlanId => m.vlan_id = Some(narrow16(v)?),
                Field::IpProto => {
                    m.ip_proto = Some(
                        u8::try_from(v).map_err(|_| SyntaxError::at("value exceeds 8 bits", at))?,
                    )
                }
                Field::TpSrc => m.tp_src = Some(narrow16(v)?),
                Field::TpDst => m.tp_dst = Some(narrow16(v)?),
                Field::IpSrc | Field::IpDst | Field::EthSrc | Field::EthDst => unreachable!(),
            }
        }
    }
    Ok(SingletonFilter::Pred(m))
}

fn parse_int_list(cur: &mut Cursor) -> Result<Vec<u64>, SyntaxError> {
    let mut out = vec![cur.expect_int()?];
    while cur.eat(&Tok::Comma) {
        out.push(cur.expect_int()?);
    }
    Ok(out)
}

fn parse_link_list(cur: &mut Cursor) -> Result<Vec<(u64, u64)>, SyntaxError> {
    let mut out = Vec::new();
    loop {
        let a = cur.expect_int()?;
        cur.expect(&Tok::Dash)?;
        let b = cur.expect_int()?;
        out.push((a, b));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(out)
}

fn parse_virtual(cur: &mut Cursor) -> Result<SingletonFilter, SyntaxError> {
    if cur.eat_word("SINGLE_BIG_SWITCH") {
        // The paper's example allows an optional LINK EXTERNAL_LINKS suffix
        // stating that external links stay visible; that is the default
        // behavior here, so the suffix is accepted and ignored.
        if cur.eat_word("LINK") {
            cur.expect_word("EXTERNAL_LINKS")?;
        }
        return Ok(SingletonFilter::VirtTopo(
            VirtualTopologySpec::SingleBigSwitch,
        ));
    }
    cur.expect(&Tok::LBrace)?;
    let mut defs = Vec::new();
    loop {
        let members = parse_int_list(cur)?;
        cur.expect_word("AS")?;
        let virtual_dpid = cur.expect_int()?;
        defs.push(VirtualSwitchDef {
            virtual_dpid,
            members: members.into_iter().collect(),
        });
        if !cur.eat(&Tok::Semi) {
            break;
        }
    }
    cur.expect(&Tok::RBrace)?;
    Ok(SingletonFilter::VirtTopo(VirtualTopologySpec::Map(defs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;

    #[test]
    fn paper_example_read_flow_table() {
        // §IV-B: predicate filter on a subnet.
        let m =
            parse_manifest("PERM read_flow_table LIMITING \\\n IP_DST 10.13.0.0 MASK 255.255.0.0")
                .unwrap();
        let f = m.filter(PermissionToken::ReadFlowTable).unwrap();
        assert_eq!(
            *f,
            FilterExpr::Atom(SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16))
        );
    }

    #[test]
    fn paper_example_wildcard() {
        // §IV-B: the load balancer constrained to the low 8 bits of IP_DST.
        let m = parse_manifest("PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0").unwrap();
        let f = m.filter(PermissionToken::InsertFlow).unwrap();
        assert_eq!(
            *f,
            FilterExpr::Atom(SingletonFilter::Wildcard {
                field: Field::IpDst,
                mask: 0xffff_ff00,
            })
        );
    }

    #[test]
    fn paper_example_composition() {
        // §IV-B-b: OWN_FLOWS OR IP_SRC … OR IP_DST ….
        let m = parse_manifest(
            "PERM read_flow_table LIMITING OWN_FLOWS OR \\\n\
             IP_SRC 10.13.0.0 MASK 255.255.0.0 OR \\\n\
             IP_DST 10.13.0.0 MASK 255.255.0.0",
        )
        .unwrap();
        let f = m.filter(PermissionToken::ReadFlowTable).unwrap();
        match f {
            FilterExpr::Or(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_virtual_topology() {
        let m = parse_manifest(
            "PERM visible_topology LIMITING \\\n VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS",
        )
        .unwrap();
        let f = m.filter(PermissionToken::VisibleTopology).unwrap();
        assert_eq!(
            *f,
            FilterExpr::Atom(SingletonFilter::VirtTopo(
                VirtualTopologySpec::SingleBigSwitch
            ))
        );
    }

    #[test]
    fn scenario2_routing_manifest() {
        // §VII scenario 2.
        let m = parse_manifest(
            "PERM visible_topology\n\
             PERM flow_event\n\
             PERM send_pkt_out\n\
             PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS",
        )
        .unwrap();
        assert_eq!(m.len(), 4);
        let f = m.filter(PermissionToken::InsertFlow).unwrap();
        assert_eq!(
            *f,
            FilterExpr::Atom(SingletonFilter::Action(ActionConstraint::Forward)).and(
                FilterExpr::Atom(SingletonFilter::Ownership(Ownership::OwnFlows))
            )
        );
    }

    #[test]
    fn scenario1_stubs() {
        // §VII scenario 1: stub macros LocalTopo and AdminRange.
        let m = parse_manifest(
            "PERM visible_topology LIMITING LocalTopo\n\
             PERM read_statistics\n\
             PERM network_access LIMITING AdminRange\n\
             PERM insert_flow",
        )
        .unwrap();
        assert_eq!(
            m.stub_names(),
            vec!["AdminRange".to_owned(), "LocalTopo".to_owned()]
        );
        assert!(m.contains_token(PermissionToken::HostNetwork));
    }

    #[test]
    fn topology_filter_with_links() {
        let m = parse_manifest("PERM visible_topology LIMITING SWITCH 1,2,3 LINK 1-2,2-3").unwrap();
        let f = m.filter(PermissionToken::VisibleTopology).unwrap();
        assert_eq!(
            *f,
            FilterExpr::Atom(SingletonFilter::PhysTopo(PhysTopoFilter::new(
                [1, 2, 3],
                [(1, 2), (2, 3)],
            )))
        );
    }

    #[test]
    fn virtual_map_syntax() {
        let m = parse_manifest("PERM visible_topology LIMITING VIRTUAL { 1,2 AS 10 ; 3,4 AS 11 }")
            .unwrap();
        let f = m.filter(PermissionToken::VisibleTopology).unwrap();
        match f {
            FilterExpr::Atom(SingletonFilter::VirtTopo(VirtualTopologySpec::Map(defs))) => {
                assert_eq!(defs.len(), 2);
                assert_eq!(defs[0].virtual_dpid, 10);
                assert_eq!(defs[1].members, [3, 4].into_iter().collect());
            }
            other => panic!("expected virtual map, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parentheses() {
        // AND binds tighter than OR.
        let a = parse_filter("OWN_FLOWS OR MAX_PRIORITY 5 AND MIN_PRIORITY 1").unwrap();
        match &a {
            FilterExpr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], FilterExpr::And(_)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
        let b = parse_filter("( OWN_FLOWS OR MAX_PRIORITY 5 ) AND MIN_PRIORITY 1").unwrap();
        assert!(matches!(b, FilterExpr::And(_)));
        let c = parse_filter("NOT ( OWN_FLOWS OR MAX_PRIORITY 5 )").unwrap();
        assert!(matches!(c, FilterExpr::Not(_)));
    }

    #[test]
    fn display_parse_roundtrip() {
        let sources = [
            "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0",
            "PERM insert_flow LIMITING ACTION FORWARD AND MAX_PRIORITY 100",
            "PERM visible_topology LIMITING SWITCH 1,2 LINK 1-2",
            "PERM read_statistics LIMITING PORT_LEVEL",
            "PERM send_pkt_out LIMITING FROM_PKT_IN",
            "PERM insert_flow LIMITING WILDCARD IP_DST 255.255.255.0",
            "PERM visible_topology LIMITING VIRTUAL { 1,2 AS 10 }",
            "PERM insert_flow LIMITING NOT MAX_PRIORITY 10",
        ];
        for src in sources {
            let parsed = parse_manifest(src).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_manifest(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(parsed, reparsed, "roundtrip failed for `{src}`");
        }
    }

    #[test]
    fn multiple_perms_same_token_join() {
        let m = parse_manifest(
            "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0\n\
             PERM insert_flow LIMITING IP_DST 10.14.0.0 MASK 255.255.0.0",
        )
        .unwrap();
        let f = m.filter(PermissionToken::InsertFlow).unwrap();
        let in13 = FilterExpr::Atom(SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16));
        let in14 = FilterExpr::Atom(SingletonFilter::ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 16));
        assert!(algebra::includes(f, &in13));
        assert!(algebra::includes(f, &in14));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_manifest("PERM launch_missiles").unwrap_err();
        assert!(err.to_string().contains("launch_missiles"));
        let err = parse_manifest("PERM insert_flow LIMITING MAX_PRIORITY banana").unwrap_err();
        assert!(err.to_string().contains("expected integer"), "{err}");
        let err = parse_manifest("insert_flow").unwrap_err();
        assert!(err.to_string().contains("expected `PERM`"), "{err}");
        let err = parse_manifest("PERM insert_flow LIMITING ( OWN_FLOWS").unwrap_err();
        assert!(err.to_string().contains("expected `)`"), "{err}");
    }

    #[test]
    fn eth_predicate_values() {
        let m = parse_manifest("PERM insert_flow LIMITING ETH_DST 00:11:22:33:44:55").unwrap();
        let f = m.filter(PermissionToken::InsertFlow).unwrap();
        match f {
            FilterExpr::Atom(SingletonFilter::Pred(p)) => {
                assert_eq!(p.eth_dst, Some("00:11:22:33:44:55".parse().unwrap()));
            }
            other => panic!("expected pred, got {other:?}"),
        }
        assert!(parse_manifest("PERM insert_flow LIMITING ETH_DST 42").is_err());
    }

    #[test]
    fn integer_predicates() {
        let m = parse_manifest("PERM insert_flow LIMITING TCP_DST 80 AND IP_PROTO 6 AND IN_PORT 3")
            .unwrap();
        let f = m.filter(PermissionToken::InsertFlow).unwrap();
        let atoms = f.atoms();
        assert_eq!(atoms.len(), 3);
        assert!(parse_manifest("PERM insert_flow LIMITING IP_PROTO 4000").is_err());
    }
}
