//! Decision-trace model and text codec (DESIGN.md §14).
//!
//! `shieldcheck certify` replays a trace of runtime permission decisions
//! against the statically computed decision envelope. The kernel records
//! one [`TraceEvent`] per decision (plus registration events carrying the
//! manifest text each engine was compiled from); this module owns the
//! line-oriented interchange format shared by the controller-side recorder
//! and the analysis-side verifier — it lives in `core` because `controller`
//! already depends on `analysis` for the registration lint gate, so the
//! codec cannot live in either without a cycle.
//!
//! Format: one event per line, space-separated `key=value` tokens after a
//! leading event tag. Values are percent-escaped (`%`, space, `=`, and
//! control characters), so manifests and payloads round-trip. Calls
//! serialize their *permission-relevant projection* — the attributes
//! [`crate::eval`] inspects — and reconstruct with neutral defaults for the
//! rest (cookies, timeouts), which the evaluator never reads.

use crate::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, FlowModCommand, PacketOut, StatsRequest};
use sdnshield_openflow::types::{BufferId, DatapathId, EthAddr, Ipv4, PortNo, Priority};
use std::fmt;

/// One recorded runtime event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An app registered; `manifest` is the canonical manifest text the
    /// engine was compiled from (post-reconciliation).
    Register {
        /// The kernel-assigned app id the engine is keyed by.
        app: AppId,
        /// Human-readable app name.
        name: String,
        /// Canonical manifest text the engine was compiled from.
        manifest: String,
    },
    /// An app deregistered; later decisions for this id are out of envelope.
    Deregister {
        /// The id whose registration ended.
        app: AppId,
    },
    /// One permission decision. `lane` names the code path that decided
    /// (`deputy`, `fastlane`, `vectored`, `batch`).
    Decision {
        /// Code path that made the decision.
        lane: String,
        /// The runtime verdict.
        allowed: bool,
        /// The mediated call, in its permission-relevant projection.
        call: ApiCall,
    },
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------------
// Escaping
// ---------------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'=' | b'\n' | b'\r' | b'\t' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_owned())?;
            let hex = std::str::from_utf8(hex).map_err(|_| "bad escape".to_owned())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "non-utf8 value".to_owned())
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

fn masked_to_string(m: &MaskedIpv4) -> String {
    format!("{}/{}", m.addr, m.mask)
}

fn masked_from_str(s: &str) -> Result<MaskedIpv4, String> {
    let (a, m) = s
        .split_once('/')
        .ok_or_else(|| format!("bad masked ip {s}"))?;
    let addr: Ipv4 = a.parse().map_err(|_| format!("bad ip {a}"))?;
    let mask: Ipv4 = m.parse().map_err(|_| format!("bad mask {m}"))?;
    Ok(MaskedIpv4::new(addr, mask))
}

fn match_to_string(m: &FlowMatch) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(p) = m.in_port {
        parts.push(format!("in_port:{}", p.0));
    }
    if let Some(e) = m.eth_src {
        parts.push(format!("eth_src:{e}"));
    }
    if let Some(e) = m.eth_dst {
        parts.push(format!("eth_dst:{e}"));
    }
    if let Some(t) = m.eth_type {
        parts.push(format!("eth_type:{t}"));
    }
    if let Some(v) = m.vlan_id {
        parts.push(format!("vlan_id:{v}"));
    }
    if let Some(v) = m.vlan_pcp {
        parts.push(format!("vlan_pcp:{v}"));
    }
    if let Some(ip) = &m.ip_src {
        parts.push(format!("ip_src:{}", masked_to_string(ip)));
    }
    if let Some(ip) = &m.ip_dst {
        parts.push(format!("ip_dst:{}", masked_to_string(ip)));
    }
    if let Some(p) = m.ip_proto {
        parts.push(format!("ip_proto:{p}"));
    }
    if let Some(t) = m.ip_tos {
        parts.push(format!("ip_tos:{t}"));
    }
    if let Some(p) = m.tp_src {
        parts.push(format!("tp_src:{p}"));
    }
    if let Some(p) = m.tp_dst {
        parts.push(format!("tp_dst:{p}"));
    }
    if parts.is_empty() {
        "any".to_owned()
    } else {
        parts.join(",")
    }
}

fn match_from_str(s: &str) -> Result<FlowMatch, String> {
    let mut m = FlowMatch::default();
    if s == "any" {
        return Ok(m);
    }
    for part in s.split(',') {
        let (key, val) = part
            .split_once(':')
            .ok_or_else(|| format!("bad match field {part}"))?;
        let num = |v: &str| v.parse::<u32>().map_err(|_| format!("bad number {v}"));
        match key {
            "in_port" => m.in_port = Some(PortNo(num(val)? as u16)),
            "eth_src" => m.eth_src = Some(val.parse::<EthAddr>().map_err(|e| e.to_string())?),
            "eth_dst" => m.eth_dst = Some(val.parse::<EthAddr>().map_err(|e| e.to_string())?),
            "eth_type" => m.eth_type = Some(num(val)? as u16),
            "vlan_id" => m.vlan_id = Some(num(val)? as u16),
            "vlan_pcp" => m.vlan_pcp = Some(num(val)? as u8),
            "ip_src" => m.ip_src = Some(masked_from_str(val)?),
            "ip_dst" => m.ip_dst = Some(masked_from_str(val)?),
            "ip_proto" => m.ip_proto = Some(num(val)? as u8),
            "ip_tos" => m.ip_tos = Some(num(val)? as u8),
            "tp_src" => m.tp_src = Some(num(val)? as u16),
            "tp_dst" => m.tp_dst = Some(num(val)? as u16),
            _ => return Err(format!("unknown match field {key}")),
        }
    }
    Ok(m)
}

fn actions_to_string(a: &ActionList) -> String {
    if a.0.is_empty() {
        return "drop".to_owned();
    }
    a.0.iter()
        .map(|act| match act {
            Action::Output(p) => format!("output:{}", p.0),
            Action::SetEthSrc(e) => format!("set_eth_src:{e}"),
            Action::SetEthDst(e) => format!("set_eth_dst:{e}"),
            Action::SetIpSrc(ip) => format!("set_ip_src:{ip}"),
            Action::SetIpDst(ip) => format!("set_ip_dst:{ip}"),
            Action::SetTpSrc(p) => format!("set_tp_src:{p}"),
            Action::SetTpDst(p) => format!("set_tp_dst:{p}"),
            Action::SetVlan(v) => format!("set_vlan:{v}"),
            Action::StripVlan => "strip_vlan".to_owned(),
            Action::Enqueue { port, queue_id } => format!("enqueue:{}:{}", port.0, queue_id),
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn actions_from_str(s: &str) -> Result<ActionList, String> {
    if s == "drop" {
        return Ok(ActionList::drop());
    }
    let mut out = Vec::new();
    for part in s.split(',') {
        let (name, val) = match part.split_once(':') {
            Some((n, v)) => (n, v),
            None => (part, ""),
        };
        let num = |v: &str| v.parse::<u32>().map_err(|_| format!("bad number {v}"));
        out.push(match name {
            "output" => Action::Output(PortNo(num(val)? as u16)),
            "set_eth_src" => Action::SetEthSrc(val.parse().map_err(|e| format!("{e:?}"))?),
            "set_eth_dst" => Action::SetEthDst(val.parse().map_err(|e| format!("{e:?}"))?),
            "set_ip_src" => Action::SetIpSrc(val.parse().map_err(|_| format!("bad ip {val}"))?),
            "set_ip_dst" => Action::SetIpDst(val.parse().map_err(|_| format!("bad ip {val}"))?),
            "set_tp_src" => Action::SetTpSrc(num(val)? as u16),
            "set_tp_dst" => Action::SetTpDst(num(val)? as u16),
            "set_vlan" => Action::SetVlan(num(val)? as u16),
            "strip_vlan" => Action::StripVlan,
            "enqueue" => {
                let (p, q) = val
                    .split_once(':')
                    .ok_or_else(|| format!("bad enqueue {val}"))?;
                Action::Enqueue {
                    port: PortNo(num(p)? as u16),
                    queue_id: num(q)?,
                }
            }
            _ => return Err(format!("unknown action {name}")),
        });
    }
    Ok(ActionList(out))
}

fn command_to_str(c: FlowModCommand) -> &'static str {
    match c {
        FlowModCommand::Add => "add",
        FlowModCommand::Modify => "modify",
        FlowModCommand::ModifyStrict => "modify_strict",
        FlowModCommand::Delete => "delete",
        FlowModCommand::DeleteStrict => "delete_strict",
    }
}

fn command_from_str(s: &str) -> Result<FlowModCommand, String> {
    Ok(match s {
        "add" => FlowModCommand::Add,
        "modify" => FlowModCommand::Modify,
        "modify_strict" => FlowModCommand::ModifyStrict,
        "delete" => FlowModCommand::Delete,
        "delete_strict" => FlowModCommand::DeleteStrict,
        _ => return Err(format!("unknown flow-mod command {s}")),
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_owned();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_owned());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| "bad hex payload".to_owned())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Event encoding
// ---------------------------------------------------------------------------

fn push_kv(out: &mut String, key: &str, val: &str) {
    out.push(' ');
    out.push_str(key);
    out.push('=');
    out.push_str(&escape(val));
}

fn encode_call(out: &mut String, call: &ApiCall) {
    push_kv(out, "app", &call.app.0.to_string());
    push_kv(out, "kind", call.kind.name());
    match &call.kind {
        ApiCallKind::ReadFlowTable { dpid, query } => {
            push_kv(out, "dpid", &dpid.0.to_string());
            push_kv(out, "match", &match_to_string(query));
        }
        ApiCallKind::InsertFlow { dpid, flow_mod } | ApiCallKind::DeleteFlow { dpid, flow_mod } => {
            push_kv(out, "dpid", &dpid.0.to_string());
            push_kv(out, "cmd", command_to_str(flow_mod.command));
            push_kv(out, "prio", &flow_mod.priority.0.to_string());
            push_kv(out, "match", &match_to_string(&flow_mod.flow_match));
            push_kv(out, "actions", &actions_to_string(&flow_mod.actions));
        }
        ApiCallKind::ReadTopology => {}
        ApiCallKind::ModifyTopology { dpid } | ApiCallKind::ReadPayload { dpid } => {
            push_kv(out, "dpid", &dpid.0.to_string());
        }
        ApiCallKind::ReadStatistics { dpid, request } => {
            push_kv(out, "dpid", &dpid.0.to_string());
            match request {
                StatsRequest::Flow(m) => {
                    push_kv(out, "stats", "flow");
                    push_kv(out, "match", &match_to_string(m));
                }
                StatsRequest::Aggregate(m) => {
                    push_kv(out, "stats", "aggregate");
                    push_kv(out, "match", &match_to_string(m));
                }
                StatsRequest::Port(p) => {
                    push_kv(out, "stats", "port");
                    push_kv(out, "port", &p.0.to_string());
                }
                StatsRequest::Table => push_kv(out, "stats", "table"),
            }
        }
        ApiCallKind::SendPacketOut { dpid, packet_out } => {
            push_kv(out, "dpid", &dpid.0.to_string());
            push_kv(out, "in_port", &packet_out.in_port.0.to_string());
            push_kv(out, "actions", &actions_to_string(&packet_out.actions));
            push_kv(out, "payload", &hex_encode(&packet_out.payload));
        }
        ApiCallKind::Subscribe { kind } => {
            let k = match kind {
                EventKind::PacketIn => "packet_in",
                EventKind::Flow => "flow",
                EventKind::Topology => "topology",
                EventKind::Error => "error",
            };
            push_kv(out, "event", k);
        }
        ApiCallKind::HostConnect { dst_ip, dst_port } => {
            push_kv(out, "dst_ip", &dst_ip.to_string());
            push_kv(out, "dst_port", &dst_port.to_string());
        }
        ApiCallKind::HostSend { conn, len } => {
            push_kv(out, "conn", &conn.to_string());
            push_kv(out, "len", &len.to_string());
        }
        ApiCallKind::FileOpen { path, write } => {
            push_kv(out, "path", path);
            push_kv(out, "write", if *write { "true" } else { "false" });
        }
        ApiCallKind::ProcessExec { program } => {
            push_kv(out, "program", program);
        }
    }
}

/// Encodes one event as a single line (no trailing newline).
pub fn write_event(ev: &TraceEvent) -> String {
    let mut out = String::new();
    match ev {
        TraceEvent::Register {
            app,
            name,
            manifest,
        } => {
            out.push_str("register");
            push_kv(&mut out, "app", &app.0.to_string());
            push_kv(&mut out, "name", name);
            push_kv(&mut out, "manifest", manifest);
        }
        TraceEvent::Deregister { app } => {
            out.push_str("deregister");
            push_kv(&mut out, "app", &app.0.to_string());
        }
        TraceEvent::Decision {
            lane,
            allowed,
            call,
        } => {
            out.push_str("decision");
            push_kv(&mut out, "lane", lane);
            push_kv(&mut out, "allowed", if *allowed { "true" } else { "false" });
            encode_call(&mut out, call);
        }
    }
    out
}

/// Encodes a full trace, one event per line, trailing newline included.
pub fn write_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&write_event(ev));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Event decoding
// ---------------------------------------------------------------------------

struct Fields {
    kvs: Vec<(String, String)>,
}

impl Fields {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.kvs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field {key}"))
    }
    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?
            .parse()
            .map_err(|_| format!("bad number in field {key}"))
    }
    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("bad bool {other} in field {key}")),
        }
    }
}

fn decode_flow_mod(f: &Fields) -> Result<FlowMod, String> {
    Ok(FlowMod {
        command: command_from_str(f.get("cmd")?)?,
        flow_match: match_from_str(f.get("match")?)?,
        priority: Priority(f.num("prio")?),
        actions: actions_from_str(f.get("actions")?)?,
        cookie: Default::default(),
        idle_timeout: 0,
        hard_timeout: 0,
        notify_when_removed: false,
    })
}

fn decode_call(f: &Fields) -> Result<ApiCall, String> {
    let app = AppId(f.num("app")?);
    let dpid = || -> Result<DatapathId, String> { Ok(DatapathId(f.num("dpid")?)) };
    let kind = match f.get("kind")? {
        "read_flow_table" => ApiCallKind::ReadFlowTable {
            dpid: dpid()?,
            query: match_from_str(f.get("match")?)?,
        },
        "insert_flow" => ApiCallKind::InsertFlow {
            dpid: dpid()?,
            flow_mod: decode_flow_mod(f)?,
        },
        "delete_flow" => ApiCallKind::DeleteFlow {
            dpid: dpid()?,
            flow_mod: decode_flow_mod(f)?,
        },
        "read_topology" => ApiCallKind::ReadTopology,
        "modify_topology" => ApiCallKind::ModifyTopology { dpid: dpid()? },
        "read_payload" => ApiCallKind::ReadPayload { dpid: dpid()? },
        "read_statistics" => {
            let request = match f.get("stats")? {
                "flow" => StatsRequest::Flow(match_from_str(f.get("match")?)?),
                "aggregate" => StatsRequest::Aggregate(match_from_str(f.get("match")?)?),
                "port" => StatsRequest::Port(PortNo(f.num("port")?)),
                "table" => StatsRequest::Table,
                other => return Err(format!("unknown stats kind {other}")),
            };
            ApiCallKind::ReadStatistics {
                dpid: dpid()?,
                request,
            }
        }
        "send_packet_out" => ApiCallKind::SendPacketOut {
            dpid: dpid()?,
            packet_out: PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(f.num("in_port")?),
                actions: actions_from_str(f.get("actions")?)?,
                payload: hex_decode(f.get("payload")?)?.into(),
            },
        },
        "subscribe" => ApiCallKind::Subscribe {
            kind: match f.get("event")? {
                "packet_in" => EventKind::PacketIn,
                "flow" => EventKind::Flow,
                "topology" => EventKind::Topology,
                "error" => EventKind::Error,
                other => return Err(format!("unknown event kind {other}")),
            },
        },
        "host_connect" => ApiCallKind::HostConnect {
            dst_ip: f
                .get("dst_ip")?
                .parse()
                .map_err(|_| "bad dst_ip".to_owned())?,
            dst_port: f.num("dst_port")?,
        },
        "host_send" => ApiCallKind::HostSend {
            conn: f.num("conn")?,
            len: f.num("len")?,
        },
        "file_open" => ApiCallKind::FileOpen {
            path: f.get("path")?.to_owned(),
            write: f.boolean("write")?,
        },
        "process_exec" => ApiCallKind::ProcessExec {
            program: f.get("program")?.to_owned(),
        },
        other => return Err(format!("unknown call kind {other}")),
    };
    Ok(ApiCall { app, kind })
}

fn parse_line(line: &str) -> Result<Option<TraceEvent>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split(' ');
    let tag = tokens.next().unwrap();
    let mut kvs = Vec::new();
    for tok in tokens {
        if tok.is_empty() {
            continue;
        }
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad token {tok}"))?;
        kvs.push((k.to_owned(), unescape(v)?));
    }
    let f = Fields { kvs };
    let ev = match tag {
        "register" => TraceEvent::Register {
            app: AppId(f.num("app")?),
            name: f.get("name")?.to_owned(),
            manifest: f.get("manifest")?.to_owned(),
        },
        "deregister" => TraceEvent::Deregister {
            app: AppId(f.num("app")?),
        },
        "decision" => TraceEvent::Decision {
            lane: f.get("lane")?.to_owned(),
            allowed: f.boolean("allowed")?,
            call: decode_call(&f)?,
        },
        other => return Err(format!("unknown event tag {other}")),
    };
    Ok(Some(ev))
}

/// Parses a trace. Blank lines and `#` comments are skipped.
pub fn parse_trace(src: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        match parse_line(line) {
            Ok(Some(ev)) => out.push(ev),
            Ok(None) => {}
            Err(msg) => return Err(TraceError { line: i + 1, msg }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: TraceEvent) {
        let line = write_event(&ev);
        let parsed = parse_trace(&format!("{line}\n")).expect("parse");
        assert_eq!(parsed, vec![ev], "line: {line}");
    }

    #[test]
    fn register_roundtrips_with_escaping() {
        roundtrip(TraceEvent::Register {
            app: AppId(7),
            name: "fwd app".into(),
            manifest: "PERM insert_flow LIMITING SWITCH 1 OR SWITCH 2\nPERM pkt_in_event".into(),
        });
    }

    #[test]
    fn decisions_roundtrip() {
        let fm = FlowMod::add(
            FlowMatch::default()
                .with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 24)
                .with_tcp_dst(80),
            Priority(100),
            ActionList::output(PortNo(3)),
        );
        roundtrip(TraceEvent::Decision {
            lane: "deputy".into(),
            allowed: true,
            call: ApiCall {
                app: AppId(1),
                kind: ApiCallKind::InsertFlow {
                    dpid: DatapathId(2),
                    flow_mod: fm,
                },
            },
        });
        roundtrip(TraceEvent::Decision {
            lane: "vectored".into(),
            allowed: false,
            call: ApiCall {
                app: AppId(3),
                kind: ApiCallKind::SendPacketOut {
                    dpid: DatapathId(1),
                    packet_out: PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: PortNo(2),
                        actions: ActionList::output(PortNo(1)),
                        payload: vec![0xde, 0xad, 0xbe, 0xef].into(),
                    },
                },
            },
        });
        roundtrip(TraceEvent::Decision {
            lane: "fastlane".into(),
            allowed: true,
            call: ApiCall {
                app: AppId(1),
                kind: ApiCallKind::ReadStatistics {
                    dpid: DatapathId(1),
                    request: StatsRequest::Aggregate(FlowMatch::default()),
                },
            },
        });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("register app=1 name=x manifest=y\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
