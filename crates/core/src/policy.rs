//! Parser and AST for the SDNShield security-policy language
//! (paper Appendix B).
//!
//! ```text
//! expr        := binding | constraint
//! constraint  := ASSERT exclusive | ASSERT assert_expr
//! exclusive   := EITHER perm_expr OR perm_expr
//! assert_expr := assert_expr AND/OR boolean_expr | NOT assert_expr
//!              | ( assert_expr ) | boolean_expr
//! boolean_expr:= perm_expr cmp_op perm_expr
//! cmp_op      := < | > | <= | >= | =
//! binding     := LET var = { perm* }          (permission-set literal)
//!              | LET var = { filter_expr }    (filter macro, for stubs)
//!              | LET var = APP app_name
//!              | LET var = perm_expr
//! perm_expr   := perm_expr MEET/JOIN perm_expr | ( perm_expr )
//!              | var | { perm* }
//! ```
//!
//! A braced `LET` body starting with `PERM` is a permission-set literal;
//! otherwise it is a *filter macro* that completes stub macros left in app
//! manifests (paper §V-A "Permission Customization", §VII scenario 1).

use std::fmt;

use crate::filter::FilterExpr;
use crate::lang::{parse_filter_expr_spanned, parse_perm_spanned, SpannedExpr, SpannedPerm};
use crate::lex::{lex, Cursor, Span, SyntaxError, Tok};
use crate::perm::PermissionSet;

/// A whole policy program: an ordered list of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Policy {
    /// The statements, in source order.
    pub stmts: Vec<PolicyStmt>,
}

impl Policy {
    /// All constraint statements.
    pub fn constraints(&self) -> impl Iterator<Item = &Assertion> {
        self.stmts.iter().filter_map(|s| match s {
            PolicyStmt::Assert(a) => Some(a),
            _ => None,
        })
    }

    /// All filter-macro bindings as `(name, expr)` pairs.
    pub fn filter_macros(&self) -> impl Iterator<Item = (&str, &FilterExpr)> {
        self.stmts.iter().filter_map(|s| match s {
            PolicyStmt::LetFilter { name, expr } => Some((name.as_str(), expr)),
            _ => None,
        })
    }
}

/// One policy statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyStmt {
    /// `LET name = { filter_expr }` — a filter macro completing manifest
    /// stubs.
    LetFilter {
        /// Macro name (matches stub identifiers in manifests).
        name: String,
        /// The concrete filter.
        expr: FilterExpr,
    },
    /// `LET name = …` — a permission-set variable.
    LetPermSet {
        /// Variable name.
        name: String,
        /// The bound expression.
        value: PermSetExpr,
    },
    /// `ASSERT …` — a constraint.
    Assert(Assertion),
}

/// A permission-set expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PermSetExpr {
    /// A literal `{ PERM … }` block.
    Literal(PermissionSet),
    /// A variable reference.
    Var(String),
    /// The manifest of a named app (`APP name`). The reserved name `app`
    /// refers to the app currently being reconciled.
    App(String),
    /// Intersection.
    Meet(Box<PermSetExpr>, Box<PermSetExpr>),
    /// Union.
    Join(Box<PermSetExpr>, Box<PermSetExpr>),
}

impl PermSetExpr {
    /// Does this expression (transitively, ignoring variable indirection)
    /// reference the given app?
    pub fn references_app(&self, name: &str) -> bool {
        match self {
            PermSetExpr::App(n) => n == name,
            PermSetExpr::Meet(a, b) | PermSetExpr::Join(a, b) => {
                a.references_app(name) || b.references_app(name)
            }
            _ => false,
        }
    }
}

/// Comparison operators on permission-set expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Strict subset.
    Lt,
    /// Subset (the paper's permission boundary `<=`).
    Le,
    /// Strict superset.
    Gt,
    /// Superset.
    Ge,
    /// Equivalence.
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        })
    }
}

/// A constraint assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// Mutual exclusion: no single app may possess (a nonempty part of)
    /// both operands.
    Either(PermSetExpr, PermSetExpr),
    /// A comparison.
    Compare {
        /// Left side.
        lhs: PermSetExpr,
        /// Operator.
        op: CmpOp,
        /// Right side.
        rhs: PermSetExpr,
    },
    /// Conjunction of assertions.
    And(Vec<Assertion>),
    /// Disjunction of assertions.
    Or(Vec<Assertion>),
    /// Negation.
    Not(Box<Assertion>),
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stmt in &self.stmts {
            writeln!(f, "{stmt}")?;
        }
        Ok(())
    }
}

impl fmt::Display for PolicyStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyStmt::LetFilter { name, expr } => write!(f, "LET {name} = {{ {expr} }}"),
            PolicyStmt::LetPermSet { name, value } => write!(f, "LET {name} = {value}"),
            PolicyStmt::Assert(a) => write!(f, "ASSERT {a}"),
        }
    }
}

impl fmt::Display for PermSetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // MEET/JOIN share one left-associative precedence level, so the left
        // operand prints bare and a composite right operand needs parens.
        fn atom(e: &PermSetExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                PermSetExpr::Meet(_, _) | PermSetExpr::Join(_, _) => write!(f, "( {e} )"),
                simple => write!(f, "{simple}"),
            }
        }
        match self {
            PermSetExpr::Literal(set) => {
                writeln!(f, "{{")?;
                write!(f, "{set}")?;
                write!(f, "}}")
            }
            PermSetExpr::Var(name) => write!(f, "{name}"),
            PermSetExpr::App(name) => write!(f, "APP {name}"),
            PermSetExpr::Meet(a, b) => {
                write!(f, "{a} MEET ")?;
                atom(b, f)
            }
            PermSetExpr::Join(a, b) => {
                write!(f, "{a} JOIN ")?;
                atom(b, f)
            }
        }
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence mirrors the parser: NOT > AND > OR, so only children
        // looser than their parent need parentheses.
        fn child(a: &Assertion, wrap_or: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let needs_parens = match a {
                Assertion::Or(_) => wrap_or,
                Assertion::And(_) => !wrap_or,
                _ => false,
            };
            if needs_parens {
                write!(f, "( {a} )")
            } else {
                write!(f, "{a}")
            }
        }
        match self {
            Assertion::Either(a, b) => write!(f, "EITHER {a} OR {b}"),
            Assertion::Compare { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Assertion::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    child(p, true, f)?;
                }
                Ok(())
            }
            Assertion::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    child(p, false, f)?;
                }
                Ok(())
            }
            Assertion::Not(inner) => {
                write!(f, "NOT ")?;
                match **inner {
                    Assertion::And(_) | Assertion::Or(_) => write!(f, "( {inner} )"),
                    _ => write!(f, "{inner}"),
                }
            }
        }
    }
}

/// A policy parse result that retains source spans on every statement,
/// binding, reference, and assertion operand.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedPolicy {
    /// The statements, in source order.
    pub stmts: Vec<SpannedPolicyStmt>,
}

impl SpannedPolicy {
    /// Lowers to the plain [`Policy`].
    pub fn to_policy(&self) -> Policy {
        Policy {
            stmts: self.stmts.iter().map(|s| s.kind.to_stmt()).collect(),
        }
    }
}

/// One policy statement with its keyword span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedPolicyStmt {
    /// Span of the leading `LET` / `ASSERT` keyword.
    pub span: Span,
    /// The statement itself.
    pub kind: SpannedStmtKind,
}

/// Spanned counterpart of [`PolicyStmt`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedStmtKind {
    /// `LET name = { filter_expr }`.
    LetFilter {
        /// Macro name.
        name: String,
        /// Span of the macro name.
        name_span: Span,
        /// The concrete filter.
        expr: SpannedExpr,
    },
    /// `LET name = …` binding a permission-set expression.
    LetPermSet {
        /// Variable name.
        name: String,
        /// Span of the variable name.
        name_span: Span,
        /// The bound expression.
        value: SpannedPermSetExpr,
    },
    /// `ASSERT …`.
    Assert(SpannedAssertion),
}

impl SpannedStmtKind {
    /// Lowers to the plain [`PolicyStmt`].
    pub fn to_stmt(&self) -> PolicyStmt {
        match self {
            SpannedStmtKind::LetFilter { name, expr, .. } => PolicyStmt::LetFilter {
                name: name.clone(),
                expr: expr.to_expr(),
            },
            SpannedStmtKind::LetPermSet { name, value, .. } => PolicyStmt::LetPermSet {
                name: name.clone(),
                value: value.to_perm_set_expr(),
            },
            SpannedStmtKind::Assert(a) => PolicyStmt::Assert(a.to_assertion()),
        }
    }
}

/// Spanned counterpart of [`PermSetExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedPermSetExpr {
    /// A literal `{ PERM … }` block, in declaration order (duplicates
    /// preserved); the span covers the opening brace.
    Literal(Vec<SpannedPerm>, Span),
    /// A variable reference; the span covers the name.
    Var(String, Span),
    /// `APP name`; the span covers the app name.
    App(String, Span),
    /// Intersection.
    Meet(Box<SpannedPermSetExpr>, Box<SpannedPermSetExpr>),
    /// Union.
    Join(Box<SpannedPermSetExpr>, Box<SpannedPermSetExpr>),
}

impl SpannedPermSetExpr {
    /// Lowers to the plain [`PermSetExpr`].
    pub fn to_perm_set_expr(&self) -> PermSetExpr {
        match self {
            SpannedPermSetExpr::Literal(perms, _) => {
                let mut set = PermissionSet::new();
                for p in perms {
                    set.insert(p.to_permission());
                }
                PermSetExpr::Literal(set)
            }
            SpannedPermSetExpr::Var(n, _) => PermSetExpr::Var(n.clone()),
            SpannedPermSetExpr::App(n, _) => PermSetExpr::App(n.clone()),
            SpannedPermSetExpr::Meet(a, b) => PermSetExpr::Meet(
                Box::new(a.to_perm_set_expr()),
                Box::new(b.to_perm_set_expr()),
            ),
            SpannedPermSetExpr::Join(a, b) => PermSetExpr::Join(
                Box::new(a.to_perm_set_expr()),
                Box::new(b.to_perm_set_expr()),
            ),
        }
    }

    /// A span anchoring this subtree: its leftmost leaf's span.
    pub fn span(&self) -> Span {
        match self {
            SpannedPermSetExpr::Literal(_, s)
            | SpannedPermSetExpr::Var(_, s)
            | SpannedPermSetExpr::App(_, s) => *s,
            SpannedPermSetExpr::Meet(a, _) | SpannedPermSetExpr::Join(a, _) => a.span(),
        }
    }
}

/// Spanned counterpart of [`Assertion`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedAssertion {
    /// Mutual exclusion; the span covers the `EITHER` keyword.
    Either(SpannedPermSetExpr, SpannedPermSetExpr, Span),
    /// A comparison; the span covers the operator.
    Compare {
        /// Left side.
        lhs: SpannedPermSetExpr,
        /// Operator.
        op: CmpOp,
        /// Span of the operator token.
        op_span: Span,
        /// Right side.
        rhs: SpannedPermSetExpr,
    },
    /// Conjunction.
    And(Vec<SpannedAssertion>),
    /// Disjunction.
    Or(Vec<SpannedAssertion>),
    /// Negation; the span covers the `NOT` keyword.
    Not(Box<SpannedAssertion>, Span),
}

impl SpannedAssertion {
    /// Lowers to the plain [`Assertion`].
    pub fn to_assertion(&self) -> Assertion {
        match self {
            SpannedAssertion::Either(a, b, _) => {
                Assertion::Either(a.to_perm_set_expr(), b.to_perm_set_expr())
            }
            SpannedAssertion::Compare { lhs, op, rhs, .. } => Assertion::Compare {
                lhs: lhs.to_perm_set_expr(),
                op: *op,
                rhs: rhs.to_perm_set_expr(),
            },
            SpannedAssertion::And(parts) => {
                Assertion::And(parts.iter().map(SpannedAssertion::to_assertion).collect())
            }
            SpannedAssertion::Or(parts) => {
                Assertion::Or(parts.iter().map(SpannedAssertion::to_assertion).collect())
            }
            SpannedAssertion::Not(inner, _) => Assertion::Not(Box::new(inner.to_assertion())),
        }
    }

    /// A span anchoring this subtree.
    pub fn span(&self) -> Span {
        match self {
            SpannedAssertion::Either(_, _, s) | SpannedAssertion::Not(_, s) => *s,
            SpannedAssertion::Compare { op_span, .. } => *op_span,
            SpannedAssertion::And(parts) | SpannedAssertion::Or(parts) => parts
                .first()
                .map(SpannedAssertion::span)
                .unwrap_or(SpannedExpr::DUMMY_SPAN),
        }
    }
}

/// Parses a policy program.
///
/// # Errors
///
/// Returns [`SyntaxError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use sdnshield_core::policy::parse_policy;
///
/// let policy = parse_policy(
///     "LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
///      ASSERT EITHER { PERM network_access } OR { PERM insert_flow }",
/// )?;
/// assert_eq!(policy.stmts.len(), 2);
/// # Ok::<(), sdnshield_core::lex::SyntaxError>(())
/// ```
pub fn parse_policy(src: &str) -> Result<Policy, SyntaxError> {
    Ok(parse_policy_spanned(src)?.to_policy())
}

/// Parses a policy program keeping source spans, for tooling that reports
/// positions (the `shieldcheck` analyzer).
///
/// # Errors
///
/// Returns [`SyntaxError`] with position information on malformed input.
pub fn parse_policy_spanned(src: &str) -> Result<SpannedPolicy, SyntaxError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut stmts = Vec::new();
    while !cur.at_end() {
        let span = cur.peek_span();
        if cur.eat_word("LET") {
            stmts.push(SpannedPolicyStmt {
                span,
                kind: parse_let(&mut cur)?,
            });
        } else if cur.eat_word("ASSERT") {
            stmts.push(SpannedPolicyStmt {
                span,
                kind: SpannedStmtKind::Assert(parse_assertion(&mut cur)?),
            });
        } else {
            let t = cur.next().expect("not at end");
            return Err(SyntaxError::at(
                format!("expected LET or ASSERT, found {}", t.tok),
                &t,
            ));
        }
    }
    Ok(SpannedPolicy { stmts })
}

fn parse_let(cur: &mut Cursor) -> Result<SpannedStmtKind, SyntaxError> {
    let (name, name_span) = cur.expect_any_word_spanned()?;
    cur.expect(&Tok::Op("="))?;
    if cur.eat_word("APP") {
        let (app, app_span) = cur.expect_any_word_spanned()?;
        return Ok(SpannedStmtKind::LetPermSet {
            name,
            name_span,
            value: SpannedPermSetExpr::App(app, app_span),
        });
    }
    // A braced body is either a permission-set literal (starts with PERM) or
    // a filter macro.
    if cur.peek().map(|t| &t.tok) == Some(&Tok::LBrace) {
        if matches!(cur.peek2(), Some(t) if t.tok == Tok::Word("PERM".into())) {
            let value = parse_perm_set_expr(cur)?;
            return Ok(SpannedStmtKind::LetPermSet {
                name,
                name_span,
                value,
            });
        }
        cur.expect(&Tok::LBrace)?;
        let expr = parse_filter_expr_spanned(cur)?;
        cur.expect(&Tok::RBrace)?;
        return Ok(SpannedStmtKind::LetFilter {
            name,
            name_span,
            expr,
        });
    }
    let value = parse_perm_set_expr(cur)?;
    Ok(SpannedStmtKind::LetPermSet {
        name,
        name_span,
        value,
    })
}

/// Parses an assertion (`EITHER …` or a boolean expression over
/// comparisons).
fn parse_assertion(cur: &mut Cursor) -> Result<SpannedAssertion, SyntaxError> {
    if cur.peek_word("EITHER") {
        let span = cur.peek_span();
        cur.next();
        let a = parse_perm_set_expr(cur)?;
        cur.expect_word("OR")?;
        let b = parse_perm_set_expr(cur)?;
        return Ok(SpannedAssertion::Either(a, b, span));
    }
    parse_assert_or(cur)
}

fn parse_assert_or(cur: &mut Cursor) -> Result<SpannedAssertion, SyntaxError> {
    let mut lhs = parse_assert_and(cur)?;
    while cur.eat_word("OR") {
        let rhs = parse_assert_and(cur)?;
        lhs = match lhs {
            SpannedAssertion::Or(mut xs) => {
                xs.push(rhs);
                SpannedAssertion::Or(xs)
            }
            other => SpannedAssertion::Or(vec![other, rhs]),
        };
    }
    Ok(lhs)
}

fn parse_assert_and(cur: &mut Cursor) -> Result<SpannedAssertion, SyntaxError> {
    let mut lhs = parse_assert_unary(cur)?;
    while cur.eat_word("AND") {
        let rhs = parse_assert_unary(cur)?;
        lhs = match lhs {
            SpannedAssertion::And(mut xs) => {
                xs.push(rhs);
                SpannedAssertion::And(xs)
            }
            other => SpannedAssertion::And(vec![other, rhs]),
        };
    }
    Ok(lhs)
}

fn parse_assert_unary(cur: &mut Cursor) -> Result<SpannedAssertion, SyntaxError> {
    if cur.peek_word("NOT") {
        let span = cur.peek_span();
        cur.next();
        return Ok(SpannedAssertion::Not(
            Box::new(parse_assert_unary(cur)?),
            span,
        ));
    }
    // Parenthesized assertion vs parenthesized perm-expr: try assertion
    // first by scanning for a comparison operator before the matching close.
    if cur.peek().map(|t| &t.tok) == Some(&Tok::LParen) && paren_wraps_assertion(cur) {
        cur.expect(&Tok::LParen)?;
        let inner = parse_assert_or(cur)?;
        cur.expect(&Tok::RParen)?;
        return Ok(inner);
    }
    let lhs = parse_perm_set_expr(cur)?;
    let op_span = cur.peek_span();
    let op = parse_cmp_op(cur)?;
    let rhs = parse_perm_set_expr(cur)?;
    Ok(SpannedAssertion::Compare {
        lhs,
        op,
        op_span,
        rhs,
    })
}

/// Lookahead: does the parenthesis at the cursor enclose a comparison (an
/// assertion) rather than a permission expression?
fn paren_wraps_assertion(cur: &Cursor) -> bool {
    // Scan forward to the matching close; comparison operators cannot occur
    // anywhere inside a permission expression, so one at any depth (e.g.
    // behind further parens: `( ( a <= b ) )`) means an assertion.
    let mut depth = 0usize;
    let mut idx = 0usize;
    loop {
        let Some(t) = cur.peek_at(idx) else {
            return false;
        };
        match &t.tok {
            Tok::LParen | Tok::LBrace => depth += 1,
            Tok::RParen | Tok::RBrace => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return false;
                }
            }
            Tok::Op(_) => return true,
            _ => {}
        }
        idx += 1;
    }
}

fn parse_cmp_op(cur: &mut Cursor) -> Result<CmpOp, SyntaxError> {
    match cur.next() {
        Some(t) => match &t.tok {
            Tok::Op("<") => Ok(CmpOp::Lt),
            Tok::Op("<=") => Ok(CmpOp::Le),
            Tok::Op(">") => Ok(CmpOp::Gt),
            Tok::Op(">=") => Ok(CmpOp::Ge),
            Tok::Op("=") => Ok(CmpOp::Eq),
            other => Err(SyntaxError::at(
                format!("expected a comparison operator, found {other}"),
                &t,
            )),
        },
        None => Err(cur.eof_err("expected a comparison operator")),
    }
}

/// Parses a permission-set expression with left-associative MEET/JOIN.
fn parse_perm_set_expr(cur: &mut Cursor) -> Result<SpannedPermSetExpr, SyntaxError> {
    let mut lhs = parse_perm_set_atom(cur)?;
    loop {
        if cur.eat_word("MEET") {
            let rhs = parse_perm_set_atom(cur)?;
            lhs = SpannedPermSetExpr::Meet(Box::new(lhs), Box::new(rhs));
        } else if cur.eat_word("JOIN") {
            let rhs = parse_perm_set_atom(cur)?;
            lhs = SpannedPermSetExpr::Join(Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_perm_set_atom(cur: &mut Cursor) -> Result<SpannedPermSetExpr, SyntaxError> {
    if cur.eat(&Tok::LParen) {
        let inner = parse_perm_set_expr(cur)?;
        cur.expect(&Tok::RParen)?;
        return Ok(inner);
    }
    let brace_span = cur.peek_span();
    if cur.eat(&Tok::LBrace) {
        let mut perms = Vec::new();
        while cur.peek_word("PERM") {
            perms.push(parse_perm_spanned(cur)?);
        }
        cur.expect(&Tok::RBrace)?;
        return Ok(SpannedPermSetExpr::Literal(perms, brace_span));
    }
    if cur.eat_word("APP") {
        let (app, app_span) = cur.expect_any_word_spanned()?;
        return Ok(SpannedPermSetExpr::App(app, app_span));
    }
    let (name, name_span) = cur.expect_any_word_spanned()?;
    Ok(SpannedPermSetExpr::Var(name, name_span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::PermissionToken;

    #[test]
    fn mutual_exclusion_example() {
        // §V-A mutual exclusion.
        let p = parse_policy("ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }")
            .unwrap();
        match &p.stmts[0] {
            PolicyStmt::Assert(Assertion::Either(
                PermSetExpr::Literal(a),
                PermSetExpr::Literal(b),
            )) => {
                assert!(a.contains_token(PermissionToken::HostNetwork));
                assert!(b.contains_token(PermissionToken::SendPktOut));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn boundary_template_example() {
        // §V-A permission boundary for monitoring apps.
        let p = parse_policy(
            "LET templatePerm = {\n\
             PERM read_topology\n\
             PERM read_statistics LIMITING PORT_LEVEL\n\
             PERM network_access LIMITING \\\n IP_DST 192.168.0.0 MASK 255.255.0.0\n\
             }\n\
             LET monitorAppPerm = APP monitoring_app\n\
             ASSERT monitorAppPerm <= templatePerm",
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[0] {
            PolicyStmt::LetPermSet {
                name,
                value: PermSetExpr::Literal(set),
            } => {
                assert_eq!(name, "templatePerm");
                assert_eq!(set.len(), 3);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
        match &p.stmts[2] {
            PolicyStmt::Assert(Assertion::Compare {
                lhs: PermSetExpr::Var(l),
                op: CmpOp::Le,
                rhs: PermSetExpr::Var(r),
            }) => {
                assert_eq!(l, "monitorAppPerm");
                assert_eq!(r, "templatePerm");
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn scenario1_policy() {
        // §VII scenario 1: stub completions + mutual exclusion.
        let p = parse_policy(
            "LET LocalTopo = { SWITCH 0,1 LINK 0-1 }\n\
             LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
             ASSERT EITHER { PERM network_access } OR { PERM insert_flow }",
        )
        .unwrap();
        let macros: Vec<_> = p.filter_macros().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(macros, vec!["LocalTopo", "AdminRange"]);
        assert_eq!(p.constraints().count(), 1);
    }

    #[test]
    fn meet_join_expressions() {
        let p = parse_policy(
            "LET a = { PERM insert_flow }\n\
             LET b = { PERM delete_flow }\n\
             LET c = a MEET b JOIN { PERM read_statistics }\n\
             ASSERT c <= a",
        )
        .unwrap();
        match &p.stmts[2] {
            PolicyStmt::LetPermSet {
                value: PermSetExpr::Join(inner, _),
                ..
            } => {
                assert!(matches!(**inner, PermSetExpr::Meet(_, _)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn boolean_assertions() {
        let p = parse_policy(
            "LET a = APP x\n\
             LET t = { PERM read_statistics }\n\
             ASSERT NOT a >= t AND ( a <= t OR a = t )",
        )
        .unwrap();
        match &p.stmts[2] {
            PolicyStmt::Assert(Assertion::And(parts)) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Assertion::Not(_)));
                assert!(matches!(parts[1], Assertion::Or(_)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn app_references_tracked() {
        let e = PermSetExpr::Meet(
            Box::new(PermSetExpr::App("monitor".into())),
            Box::new(PermSetExpr::Var("x".into())),
        );
        assert!(e.references_app("monitor"));
        assert!(!e.references_app("router"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_policy("LET = { PERM insert_flow }").is_err());
        assert!(parse_policy("ASSERT EITHER { PERM insert_flow }").is_err());
        assert!(parse_policy("FROB x").is_err());
        assert!(parse_policy("ASSERT a ~ b").is_err());
        assert!(parse_policy("LET x = { PERM bogus_token }").is_err());
    }

    #[test]
    fn all_cmp_ops_parse() {
        for (src, op) in [
            ("ASSERT a < b", CmpOp::Lt),
            ("ASSERT a <= b", CmpOp::Le),
            ("ASSERT a > b", CmpOp::Gt),
            ("ASSERT a >= b", CmpOp::Ge),
            ("ASSERT a = b", CmpOp::Eq),
        ] {
            let p = parse_policy(src).unwrap();
            match &p.stmts[0] {
                PolicyStmt::Assert(Assertion::Compare { op: got, .. }) => assert_eq!(*got, op),
                other => panic!("unexpected stmt {other:?}"),
            }
        }
    }
}
