//! Shared lexer for the SDNShield permission language (Appendix A) and
//! security-policy language (Appendix B).
//!
//! The languages are line-oriented in the paper's examples but keyword-
//! delimited in their grammars; the lexer therefore treats newlines as plain
//! whitespace, honors `\`-continuations (by ignoring the backslash), and
//! strips `#`-comments.

use std::fmt;

use sdnshield_openflow::types::{EthAddr, Ipv4};

/// A half-open source region: a start position plus a length in characters.
///
/// Spans are carried by every [`Token`] and threaded through the parsers'
/// spanned ASTs so downstream tooling (the `shieldcheck` analyzer, error
/// rendering) can point at the exact offending characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Length in characters (at least 1 for rendering purposes).
    pub len: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        Span { line, col, len }
    }

    /// The column one past the end of the span.
    pub fn end_col(&self) -> u32 {
        self.col + self.len.max(1)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Length of the token's source text in characters.
    pub len: u32,
}

impl Token {
    /// The token's source span.
    pub fn span(&self) -> Span {
        Span::new(self.line, self.col, self.len)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A bare word: keyword, permission-token name, or identifier.
    Word(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A dotted-quad IPv4 literal.
    Ip(Ipv4),
    /// A colon-separated MAC literal.
    Mac(EthAddr),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `-`
    Dash,
    /// An operator: `=`, `<`, `>`, `<=`, `>=`.
    Op(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Ip(ip) => write!(f, "`{ip}`"),
            Tok::Mac(m) => write!(f, "`{m}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dash => write!(f, "`-`"),
            Tok::Op(op) => write!(f, "`{op}`"),
        }
    }
}

/// A lexing or parsing error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl SyntaxError {
    /// Creates an error at a position.
    pub fn new(message: impl Into<String>, line: u32, col: u32) -> Self {
        SyntaxError {
            message: message.into(),
            line,
            col,
        }
    }

    /// Creates an error at a token's position.
    pub fn at(message: impl Into<String>, token: &Token) -> Self {
        Self::new(message, token.line, token.col)
    }

    /// Creates an error at end of input, carrying the end-of-input position
    /// so EOF errors render with a real line/column like every other
    /// diagnostic (parsers obtain the position from [`Cursor::eof_pos`]).
    pub fn eof(message: impl Into<String>, line: u32, col: u32) -> Self {
        Self::new(message, line, col)
    }

    /// The error's source span (EOF and lex errors are one column wide).
    pub fn span(&self) -> Span {
        Span::new(self.line, self.col, 1)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "syntax error at end of input: {}", self.message)
        } else {
            write!(
                f,
                "syntax error at line {}, column {}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for SyntaxError {}

/// Tokenizes source text.
///
/// # Errors
///
/// Returns [`SyntaxError`] on unexpected characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' | '\\' => {
                chars.next();
                bump!(c);
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    bump!(c);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' | '{' | '}' | ',' | ';' | '-' => {
                chars.next();
                bump!(c);
                out.push(Token {
                    tok: match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        ',' => Tok::Comma,
                        ';' => Tok::Semi,
                        _ => Tok::Dash,
                    },
                    line: tline,
                    col: tcol,
                    len: 1,
                });
            }
            '<' | '>' | '=' => {
                chars.next();
                bump!(c);
                let op = if c == '=' {
                    "="
                } else if chars.peek() == Some(&'=') {
                    let e = chars.next().unwrap();
                    bump!(e);
                    if c == '<' {
                        "<="
                    } else {
                        ">="
                    }
                } else if c == '<' {
                    "<"
                } else {
                    ">"
                };
                out.push(Token {
                    tok: Tok::Op(op),
                    line: tline,
                    col: tcol,
                    len: op.len() as u32,
                });
            }
            c if c.is_ascii_digit() || c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':' {
                        word.push(c);
                        chars.next();
                        bump!(c);
                    } else {
                        break;
                    }
                }
                let len = word.chars().count() as u32;
                out.push(Token {
                    tok: classify_word(&word, tline, tcol)?,
                    line: tline,
                    col: tcol,
                    len,
                });
            }
            other => {
                return Err(SyntaxError::new(
                    format!("unexpected character `{other}`"),
                    tline,
                    tcol,
                ));
            }
        }
    }
    Ok(out)
}

fn classify_word(word: &str, line: u32, col: u32) -> Result<Tok, SyntaxError> {
    if word.contains(':') {
        return word
            .parse::<EthAddr>()
            .map(Tok::Mac)
            .map_err(|e| SyntaxError::new(format!("bad MAC literal `{word}`: {e}"), line, col));
    }
    if word.contains('.') {
        return word
            .parse::<Ipv4>()
            .map(Tok::Ip)
            .map_err(|e| SyntaxError::new(format!("bad IPv4 literal `{word}`: {e}"), line, col));
    }
    if word.chars().all(|c| c.is_ascii_digit()) {
        return word
            .parse::<u64>()
            .map(Tok::Int)
            .map_err(|e| SyntaxError::new(format!("bad integer `{word}`: {e}"), line, col));
    }
    if let Some(hex) = word.strip_prefix("0x") {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return Ok(Tok::Int(v));
        }
    }
    Ok(Tok::Word(word.to_owned()))
}

/// A token cursor shared by the two parsers.
#[derive(Debug)]
pub struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
    /// Position one past the final token, for EOF diagnostics.
    end: (u32, u32),
}

impl Cursor {
    /// Wraps a token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        let end = tokens
            .last()
            .map(|t| (t.line, t.col + t.len))
            .unwrap_or((1, 1));
        Cursor {
            tokens,
            pos: 0,
            end,
        }
    }

    /// The end-of-input position `(line, col)`: one column past the last
    /// token (or `(1, 1)` for an empty stream).
    pub fn eof_pos(&self) -> (u32, u32) {
        self.end
    }

    /// Builds a [`SyntaxError`] at the end-of-input position.
    pub fn eof_err(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError::eof(message, self.end.0, self.end.1)
    }

    /// The next token, without consuming.
    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// The token after the next, without consuming.
    pub fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    /// The token `offset` positions ahead, without consuming.
    pub fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    /// Consumes and returns the next token.
    #[allow(clippy::should_implement_trait)] // a cursor, not an iterator
    pub fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the next token this exact word?
    pub fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Word(s), .. }) if s == w)
    }

    /// Consumes the next token if it is this word.
    pub fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it matches.
    pub fn eat(&mut self, t: &Tok) -> bool {
        if self.peek().map(|x| &x.tok) == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires the next token to be this word.
    ///
    /// # Errors
    ///
    /// [`SyntaxError`] naming the expectation.
    pub fn expect_word(&mut self, w: &str) -> Result<(), SyntaxError> {
        match self.next() {
            Some(Token {
                tok: Tok::Word(s), ..
            }) if s == w => Ok(()),
            Some(t) => Err(SyntaxError::at(
                format!("expected `{w}`, found {}", t.tok),
                &t,
            )),
            None => Err(self.eof_err(format!("expected `{w}`"))),
        }
    }

    /// Requires and returns an integer literal.
    ///
    /// # Errors
    ///
    /// [`SyntaxError`] when the next token is not an integer.
    pub fn expect_int(&mut self) -> Result<u64, SyntaxError> {
        match self.next() {
            Some(Token {
                tok: Tok::Int(n), ..
            }) => Ok(n),
            Some(t) => Err(SyntaxError::at(
                format!("expected integer, found {}", t.tok),
                &t,
            )),
            None => Err(self.eof_err("expected integer")),
        }
    }

    /// Requires and returns a word token.
    ///
    /// # Errors
    ///
    /// [`SyntaxError`] when the next token is not a word.
    pub fn expect_any_word(&mut self) -> Result<String, SyntaxError> {
        match self.next() {
            Some(Token {
                tok: Tok::Word(s), ..
            }) => Ok(s),
            Some(t) => Err(SyntaxError::at(
                format!("expected identifier, found {}", t.tok),
                &t,
            )),
            None => Err(self.eof_err("expected identifier")),
        }
    }

    /// Requires and returns a word token together with its span.
    ///
    /// # Errors
    ///
    /// [`SyntaxError`] when the next token is not a word.
    pub fn expect_any_word_spanned(&mut self) -> Result<(String, Span), SyntaxError> {
        match self.next() {
            Some(Token {
                tok: Tok::Word(s),
                line,
                col,
                len,
            }) => Ok((s, Span::new(line, col, len))),
            Some(t) => Err(SyntaxError::at(
                format!("expected identifier, found {}", t.tok),
                &t,
            )),
            None => Err(self.eof_err("expected identifier")),
        }
    }

    /// The span of the next token, or a one-column span at end of input.
    pub fn peek_span(&self) -> Span {
        match self.peek() {
            Some(t) => t.span(),
            None => Span::new(self.end.0, self.end.1, 1),
        }
    }

    /// Requires a specific structural token.
    ///
    /// # Errors
    ///
    /// [`SyntaxError`] when the next token differs.
    pub fn expect(&mut self, t: &Tok) -> Result<(), SyntaxError> {
        match self.next() {
            Some(x) if x.tok == *t => Ok(()),
            Some(x) => Err(SyntaxError::at(
                format!("expected {t}, found {}", x.tok),
                &x,
            )),
            None => Err(self.eof_err(format!("expected {t}"))),
        }
    }

    /// True when all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_ints_ips_macs() {
        assert_eq!(
            toks("PERM insert_flow 42 10.13.0.0 00:11:22:33:44:55"),
            vec![
                Tok::Word("PERM".into()),
                Tok::Word("insert_flow".into()),
                Tok::Int(42),
                Tok::Ip(Ipv4::new(10, 13, 0, 0)),
                Tok::Mac("00:11:22:33:44:55".parse().unwrap()),
            ]
        );
    }

    #[test]
    fn continuations_and_comments() {
        let src = "PERM read_flow_table LIMITING \\\n  IP_DST 10.13.0.0 MASK 255.255.0.0 # visible subnet\nPERM read_statistics";
        let t = toks(src);
        assert!(t.contains(&Tok::Word("MASK".into())));
        assert!(!t
            .iter()
            .any(|t| matches!(t, Tok::Word(w) if w.contains("visible"))));
        assert_eq!(t.last(), Some(&Tok::Word("read_statistics".into())));
    }

    #[test]
    fn punctuation_and_ops() {
        assert_eq!(
            toks("( ) { } , ; - <= >= < > ="),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Comma,
                Tok::Semi,
                Tok::Dash,
                Tok::Op("<="),
                Tok::Op(">="),
                Tok::Op("<"),
                Tok::Op(">"),
                Tok::Op("="),
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let tokens = lex("PERM\n  insert_flow").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn spans_cover_token_text() {
        let tokens = lex("PERM insert_flow <=").unwrap();
        assert_eq!(tokens[0].span(), Span::new(1, 1, 4));
        assert_eq!(tokens[1].span(), Span::new(1, 6, 11));
        assert_eq!(tokens[2].span(), Span::new(1, 18, 2));
    }

    #[test]
    fn eof_errors_carry_end_position() {
        let mut cur = Cursor::new(lex("PERM insert_flow").unwrap());
        cur.next();
        cur.next();
        let err = cur.expect_any_word().unwrap_err();
        assert_eq!((err.line, err.col), (1, 17));
        let empty = Cursor::new(Vec::new());
        assert_eq!(empty.eof_pos(), (1, 1));
    }

    #[test]
    fn bad_literals_rejected() {
        assert!(lex("10.13.0").is_err());
        assert!(lex("0z:00:00:00:00:00").is_err());
        assert!(lex("PERM @").is_err());
    }
}
