//! Permissions and permission sets (manifests).
//!
//! A [`Permission`] pairs a coarse token with a fine filter expression; a
//! [`PermissionSet`] is an app's manifest. Because tokens are orthogonal,
//! set-like questions on permission sets reduce to per-token filter algebra
//! (paper §V-B1): inclusion compares filters token-by-token, MEET intersects
//! filters with AND, JOIN unions them with OR.

use std::collections::BTreeMap;
use std::fmt;

use crate::algebra;
use crate::filter::FilterExpr;
use crate::token::PermissionToken;

/// One granted/requested permission: token + filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Permission {
    /// The coarse-grained token.
    pub token: PermissionToken,
    /// The fine-grained filter (`FilterExpr::True` when unfiltered).
    pub filter: FilterExpr,
}

impl Permission {
    /// An unfiltered permission for a token.
    pub fn unrestricted(token: PermissionToken) -> Self {
        Permission {
            token,
            filter: FilterExpr::True,
        }
    }

    /// A permission limited by a filter expression.
    pub fn limited(token: PermissionToken, filter: FilterExpr) -> Self {
        Permission { token, filter }
    }

    /// Does this permission allow everything `other` allows?
    ///
    /// `false` for different tokens (tokens are orthogonal).
    pub fn includes(&self, other: &Permission) -> bool {
        self.token == other.token && algebra::includes(&self.filter, &other.filter)
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.filter {
            FilterExpr::True => write!(f, "PERM {}", self.token),
            expr => write!(f, "PERM {} LIMITING {}", self.token, expr),
        }
    }
}

/// An app's permission manifest: at most one (token → filter) entry; granting
/// the same token twice ORs the filters (either grant suffices).
///
/// # Examples
///
/// ```
/// use sdnshield_core::perm::{Permission, PermissionSet};
/// use sdnshield_core::token::PermissionToken;
///
/// let mut manifest = PermissionSet::new();
/// manifest.insert(Permission::unrestricted(PermissionToken::ReadStatistics));
/// assert!(manifest.contains_token(PermissionToken::ReadStatistics));
/// assert!(!manifest.contains_token(PermissionToken::InsertFlow));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PermissionSet {
    entries: BTreeMap<PermissionToken, FilterExpr>,
}

impl PermissionSet {
    /// An empty manifest (no privileges at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from permissions.
    pub fn from_permissions(perms: impl IntoIterator<Item = Permission>) -> Self {
        let mut set = Self::new();
        for p in perms {
            set.insert(p);
        }
        set
    }

    /// Adds a permission; repeated tokens OR their filters.
    pub fn insert(&mut self, perm: Permission) {
        match self.entries.remove(&perm.token) {
            Some(existing) => {
                self.entries.insert(perm.token, existing.or(perm.filter));
            }
            None => {
                self.entries.insert(perm.token, perm.filter);
            }
        }
    }

    /// Removes a token entirely, returning its filter if present.
    pub fn remove(&mut self, token: PermissionToken) -> Option<FilterExpr> {
        self.entries.remove(&token)
    }

    /// Replaces the filter of an existing token (no-op if absent).
    pub fn restrict(&mut self, token: PermissionToken, filter: FilterExpr) {
        if let Some(entry) = self.entries.get_mut(&token) {
            let existing = std::mem::replace(entry, FilterExpr::True);
            *entry = existing.and(filter);
        }
    }

    /// The filter for a token, if granted.
    pub fn filter(&self, token: PermissionToken) -> Option<&FilterExpr> {
        self.entries.get(&token)
    }

    /// Is the token granted (with any filter)?
    pub fn contains_token(&self, token: PermissionToken) -> bool {
        self.entries.contains_key(&token)
    }

    /// Number of granted tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the manifest empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(token, filter)` entries in token order.
    pub fn iter(&self) -> impl Iterator<Item = (PermissionToken, &FilterExpr)> {
        self.entries.iter().map(|(t, f)| (*t, f))
    }

    /// The granted tokens in order.
    pub fn tokens(&self) -> impl Iterator<Item = PermissionToken> + '_ {
        self.entries.keys().copied()
    }

    /// MEET (intersection): behaviors allowed by *both* sets. Tokens present
    /// in only one operand disappear; shared tokens AND their filters.
    pub fn meet(&self, other: &PermissionSet) -> PermissionSet {
        let mut out = PermissionSet::new();
        for (token, f) in &self.entries {
            if let Some(g) = other.entries.get(token) {
                out.entries.insert(*token, f.clone().and(g.clone()));
            }
        }
        out
    }

    /// JOIN (union): behaviors allowed by *either* set.
    pub fn join(&self, other: &PermissionSet) -> PermissionSet {
        let mut out = self.clone();
        for (token, g) in &other.entries {
            match out.entries.remove(token) {
                Some(f) => {
                    out.entries.insert(*token, f.or(g.clone()));
                }
                None => {
                    out.entries.insert(*token, g.clone());
                }
            }
        }
        out
    }

    /// Set inclusion: does this set allow everything `other` allows?
    ///
    /// Sound, not complete (inherits [`algebra::includes`]'s conservatism).
    pub fn includes(&self, other: &PermissionSet) -> bool {
        other.entries.iter().all(|(token, g)| {
            self.entries
                .get(token)
                .is_some_and(|f| algebra::includes(f, g))
        })
    }

    /// Names of unexpanded stub macros anywhere in the manifest.
    pub fn stub_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .values()
            .flat_map(|f| f.stub_names().into_iter().map(str::to_owned))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Expands one stub macro throughout the manifest. Returns whether any
    /// occurrence was replaced.
    pub fn expand_stub(&mut self, name: &str, replacement: &FilterExpr) -> bool {
        let mut any = false;
        for filter in self.entries.values_mut() {
            let (expanded, hit) = filter.expand_stub(name, replacement);
            if hit {
                *filter = expanded;
                any = true;
            }
        }
        any
    }
}

impl FromIterator<Permission> for PermissionSet {
    fn from_iter<I: IntoIterator<Item = Permission>>(iter: I) -> Self {
        Self::from_permissions(iter)
    }
}

impl Extend<Permission> for PermissionSet {
    fn extend<I: IntoIterator<Item = Permission>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Display for PermissionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (token, filter) in &self.entries {
            match filter {
                FilterExpr::True => writeln!(f, "PERM {token}")?,
                expr => writeln!(f, "PERM {token} LIMITING {expr}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Ownership, SingletonFilter};
    use sdnshield_openflow::types::Ipv4;

    fn ip(prefix: u8) -> FilterExpr {
        FilterExpr::atom(SingletonFilter::ip_dst_prefix(
            Ipv4::new(10, 13, 0, 0),
            prefix,
        ))
    }

    #[test]
    fn insert_ors_duplicate_tokens() {
        let mut s = PermissionSet::new();
        s.insert(Permission::limited(PermissionToken::InsertFlow, ip(16)));
        s.insert(Permission::limited(
            PermissionToken::InsertFlow,
            FilterExpr::atom(SingletonFilter::Ownership(Ownership::OwnFlows)),
        ));
        assert_eq!(s.len(), 1);
        let f = s.filter(PermissionToken::InsertFlow).unwrap();
        assert!(matches!(f, FilterExpr::Or(_)));
        // The OR is wider than either grant.
        assert!(algebra::includes(f, &ip(16)));
    }

    #[test]
    fn restrict_narrows() {
        let mut s = PermissionSet::new();
        s.insert(Permission::unrestricted(PermissionToken::InsertFlow));
        s.restrict(PermissionToken::InsertFlow, ip(16));
        let f = s.filter(PermissionToken::InsertFlow).unwrap();
        assert!(algebra::equivalent(f, &ip(16)));
        // Restricting an absent token is a no-op.
        s.restrict(PermissionToken::DeleteFlow, ip(16));
        assert!(!s.contains_token(PermissionToken::DeleteFlow));
    }

    #[test]
    fn meet_keeps_shared_tokens_only() {
        let a = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, ip(16)),
            Permission::unrestricted(PermissionToken::ReadStatistics),
        ]);
        let b = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, ip(8)),
            Permission::unrestricted(PermissionToken::HostNetwork),
        ]);
        let m = a.meet(&b);
        assert_eq!(m.len(), 1);
        // meet's filter is the AND, equivalent to the narrower 10.13/16.
        assert!(algebra::equivalent(
            m.filter(PermissionToken::InsertFlow).unwrap(),
            &ip(16)
        ));
    }

    #[test]
    fn join_unions_tokens() {
        let a = PermissionSet::from_permissions([Permission::limited(
            PermissionToken::InsertFlow,
            ip(24),
        )]);
        let b = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, ip(16)),
            Permission::unrestricted(PermissionToken::HostNetwork),
        ]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert!(algebra::equivalent(
            j.filter(PermissionToken::InsertFlow).unwrap(),
            &ip(16)
        ));
    }

    #[test]
    fn set_inclusion() {
        let template = PermissionSet::from_permissions([
            Permission::unrestricted(PermissionToken::VisibleTopology),
            Permission::limited(PermissionToken::HostNetwork, ip(16)),
        ]);
        let within = PermissionSet::from_permissions([Permission::limited(
            PermissionToken::HostNetwork,
            ip(24),
        )]);
        let beyond_filter = PermissionSet::from_permissions([Permission::unrestricted(
            PermissionToken::HostNetwork,
        )]);
        let beyond_token = PermissionSet::from_permissions([Permission::unrestricted(
            PermissionToken::InsertFlow,
        )]);
        assert!(template.includes(&within));
        assert!(template.includes(&template));
        assert!(!template.includes(&beyond_filter));
        assert!(!template.includes(&beyond_token));
        // The empty set is included in everything and includes nothing
        // nonempty.
        assert!(template.includes(&PermissionSet::new()));
        assert!(!PermissionSet::new().includes(&within));
    }

    #[test]
    fn meet_result_is_included_in_both() {
        let a = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, ip(16)),
            Permission::unrestricted(PermissionToken::ReadStatistics),
        ]);
        let b = PermissionSet::from_permissions([
            Permission::unrestricted(PermissionToken::InsertFlow),
            Permission::unrestricted(PermissionToken::ReadStatistics),
        ]);
        let m = a.meet(&b);
        assert!(a.includes(&m));
        assert!(b.includes(&m));
        let j = a.join(&b);
        assert!(j.includes(&a));
        assert!(j.includes(&b));
    }

    #[test]
    fn stub_management() {
        let mut s = PermissionSet::from_permissions([Permission::limited(
            PermissionToken::HostNetwork,
            FilterExpr::atom(SingletonFilter::Stub("AdminRange".into())),
        )]);
        assert_eq!(s.stub_names(), vec!["AdminRange".to_owned()]);
        assert!(s.expand_stub("AdminRange", &ip(16)));
        assert!(s.stub_names().is_empty());
        assert!(!s.expand_stub("AdminRange", &ip(16)), "already expanded");
    }

    #[test]
    fn display_roundtrips_visually() {
        let s = PermissionSet::from_permissions([
            Permission::unrestricted(PermissionToken::ReadStatistics),
            Permission::limited(PermissionToken::InsertFlow, ip(16)),
        ]);
        let text = s.to_string();
        assert!(text.contains("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"));
        assert!(text.contains("PERM read_statistics\n"));
    }
}
