//! Permission filters: the fine-grained layer of SDNShield's two-level
//! permission abstraction (paper §IV-B).
//!
//! A *singleton filter* labels an API call true or false according to one
//! attribute of the call (its flow predicate, its actions, its priority, …).
//! Filters compose with AND / OR / NOT into [`FilterExpr`]s; a permission is
//! a token plus a filter expression (`PERM token LIMITING expr`).
//!
//! Two relations matter:
//! * **evaluation** against a concrete [`crate::api::ApiCall`] (see
//!   [`crate::eval`]);
//! * **inclusion** between filters, which powers policy reconciliation (see
//!   [`crate::algebra`]). Singleton inclusion is defined here, per
//!   dimension.

use std::collections::BTreeSet;
use std::fmt;

use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::types::{DatapathId, Ipv4};

use crate::vtopo::VirtualTopologySpec;

/// A packet header field named by predicate / wildcard / modify filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// Ingress port.
    InPort,
    /// Ethernet source.
    EthSrc,
    /// Ethernet destination.
    EthDst,
    /// EtherType.
    EthType,
    /// VLAN id.
    VlanId,
    /// IPv4 source.
    IpSrc,
    /// IPv4 destination.
    IpDst,
    /// IP protocol.
    IpProto,
    /// TCP/UDP source port.
    TpSrc,
    /// TCP/UDP destination port.
    TpDst,
}

impl Field {
    /// The language keyword for this field.
    pub fn keyword(self) -> &'static str {
        match self {
            Field::InPort => "IN_PORT",
            Field::EthSrc => "ETH_SRC",
            Field::EthDst => "ETH_DST",
            Field::EthType => "ETH_TYPE",
            Field::VlanId => "VLAN_ID",
            Field::IpSrc => "IP_SRC",
            Field::IpDst => "IP_DST",
            Field::IpProto => "IP_PROTO",
            Field::TpSrc => "TCP_SRC",
            Field::TpDst => "TCP_DST",
        }
    }

    /// Parses a field keyword (accepting both `TCP_*` and `TP_*` spellings).
    pub fn from_keyword(s: &str) -> Option<Field> {
        Some(match s {
            "IN_PORT" => Field::InPort,
            "ETH_SRC" | "DL_SRC" => Field::EthSrc,
            "ETH_DST" | "DL_DST" => Field::EthDst,
            "ETH_TYPE" | "DL_TYPE" => Field::EthType,
            "VLAN_ID" => Field::VlanId,
            "IP_SRC" | "NW_SRC" => Field::IpSrc,
            "IP_DST" | "NW_DST" => Field::IpDst,
            "IP_PROTO" | "NW_PROTO" => Field::IpProto,
            "TCP_SRC" | "TP_SRC" | "UDP_SRC" => Field::TpSrc,
            "TCP_DST" | "TP_DST" | "UDP_DST" => Field::TpDst,
            _ => return None,
        })
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Action constraints (`action_f := DROP | FORWARD | MODIFY field`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionConstraint {
    /// The rule must drop (no forwarding, no rewrites).
    Drop,
    /// The rule must purely forward (no header rewrites).
    Forward,
    /// The rule may rewrite only this field (forwarding allowed).
    Modify(Field),
}

/// Ownership filters (`owner_f := OWN_FLOWS | ALL_FLOWS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ownership {
    /// The call may only touch flows the calling app installed.
    OwnFlows,
    /// No ownership restriction.
    AllFlows,
}

/// Packet-out provenance filters (`pkt_out_f := FROM_PKT_IN | ARBITRARY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PktOutSource {
    /// Payload must be (a copy of) a packet-in previously delivered to the
    /// app — prevents fabricated injections.
    FromPktIn,
    /// Any payload.
    Arbitrary,
}

/// Event-callback capabilities (`callback_f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallbackCap {
    /// The app may consume events before other apps (interception).
    EventInterception,
    /// The app may change its position in the event order.
    ModifyEventOrder,
}

/// Statistics granularity (`statistics_f`), ordered from coarse to fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StatsLevel {
    /// Whole-switch (table) counters only.
    SwitchLevel,
    /// Per-port counters.
    PortLevel,
    /// Per-flow counters (finest).
    FlowLevel,
}

/// A physical-topology filter: the switches and links an app may see/touch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhysTopoFilter {
    /// Visible switch datapath ids.
    pub switches: BTreeSet<u64>,
    /// Visible undirected links, as (smaller, larger) dpid pairs.
    pub links: BTreeSet<(u64, u64)>,
}

impl PhysTopoFilter {
    /// Builds a filter from switch ids and link endpoint pairs (order of the
    /// endpoints is normalized).
    pub fn new(
        switches: impl IntoIterator<Item = u64>,
        links: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        PhysTopoFilter {
            switches: switches.into_iter().collect(),
            links: links
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect(),
        }
    }

    /// Is the switch visible?
    pub fn contains_switch(&self, dpid: DatapathId) -> bool {
        self.switches.contains(&dpid.0)
    }

    /// Is the link visible?
    pub fn contains_link(&self, a: DatapathId, b: DatapathId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.links.contains(&key)
    }

    /// Does this filter expose at least everything `other` exposes?
    pub fn includes(&self, other: &PhysTopoFilter) -> bool {
        self.switches.is_superset(&other.switches) && self.links.is_superset(&other.links)
    }
}

/// The dimension a singleton filter inspects. Filters on different
/// dimensions are independent: neither can include the other (paper's
/// Algorithm 1, step 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Flow predicate (any combination of match fields).
    Predicate,
    /// Wildcard requirement on one field.
    Wildcard(Field),
    /// Action constraint.
    Action,
    /// Rule ownership.
    Ownership,
    /// Maximum rule priority.
    MaxPriority,
    /// Minimum rule priority.
    MinPriority,
    /// Rule-count quota.
    RuleCount,
    /// Packet-out provenance.
    PktOut,
    /// Physical topology visibility.
    PhysTopo,
    /// Virtual topology mapping.
    VirtTopo,
    /// Callback capability.
    Callback,
    /// Statistics granularity.
    Stats,
    /// An unexpanded stub macro (no defined dimension until expanded).
    Stub(String),
}

/// A singleton filter: one constraint on one attribute of an API call
/// (paper §IV-B-a).
#[derive(Debug, Clone, PartialEq)]
pub enum SingletonFilter {
    /// Predicate filter: the call's flow space must stay within this match.
    Pred(FlowMatch),
    /// Wildcard filter: the given bits of `field` must remain wildcarded in
    /// issued rules (paper's load-balancer example).
    Wildcard {
        /// The constrained field (IP fields support partial masks).
        field: Field,
        /// Bits that must NOT be matched on (1 = must stay wildcard).
        mask: u32,
    },
    /// Action filter.
    Action(ActionConstraint),
    /// Ownership filter.
    Ownership(Ownership),
    /// Upper bound on rule priority.
    MaxPriority(u16),
    /// Lower bound on rule priority.
    MinPriority(u16),
    /// Per-app, per-switch rule-count quota.
    MaxRuleCount(u32),
    /// Packet-out provenance filter.
    PktOut(PktOutSource),
    /// Physical topology filter.
    PhysTopo(PhysTopoFilter),
    /// Virtual topology filter (big switches).
    VirtTopo(VirtualTopologySpec),
    /// Callback capability filter.
    Callback(CallbackCap),
    /// Statistics granularity filter.
    Stats(StatsLevel),
    /// An administrator-completed stub macro (paper §V-A "Permission
    /// Customization"). Must be expanded before evaluation.
    Stub(String),
}

impl SingletonFilter {
    /// The dimension this filter inspects.
    pub fn dimension(&self) -> Dimension {
        match self {
            SingletonFilter::Pred(_) => Dimension::Predicate,
            SingletonFilter::Wildcard { field, .. } => Dimension::Wildcard(*field),
            SingletonFilter::Action(_) => Dimension::Action,
            SingletonFilter::Ownership(_) => Dimension::Ownership,
            SingletonFilter::MaxPriority(_) => Dimension::MaxPriority,
            SingletonFilter::MinPriority(_) => Dimension::MinPriority,
            SingletonFilter::MaxRuleCount(_) => Dimension::RuleCount,
            SingletonFilter::PktOut(_) => Dimension::PktOut,
            SingletonFilter::PhysTopo(_) => Dimension::PhysTopo,
            SingletonFilter::VirtTopo(_) => Dimension::VirtTopo,
            SingletonFilter::Callback(_) => Dimension::Callback,
            SingletonFilter::Stats(_) => Dimension::Stats,
            SingletonFilter::Stub(name) => Dimension::Stub(name.clone()),
        }
    }

    /// Does this filter allow everything `other` allows?
    ///
    /// Only defined within a dimension; filters on different dimensions are
    /// independent and the answer is `false`. The relation is *sound*: a
    /// `true` answer guarantees set inclusion of the allowed behaviors.
    pub fn includes(&self, other: &SingletonFilter) -> bool {
        use SingletonFilter::*;
        match (self, other) {
            (Pred(a), Pred(b)) => a.subsumes(b),
            (
                Wildcard {
                    field: fa,
                    mask: ma,
                },
                Wildcard {
                    field: fb,
                    mask: mb,
                },
            ) => {
                // Fewer required-wildcard bits = more rules pass.
                fa == fb && (ma & mb) == *ma
            }
            (Action(a), Action(b)) => a == b,
            (Ownership(a), Ownership(b)) => {
                a == b || (*a == self::Ownership::AllFlows && *b == self::Ownership::OwnFlows)
            }
            (MaxPriority(a), MaxPriority(b)) => a >= b,
            (MinPriority(a), MinPriority(b)) => a <= b,
            (MaxRuleCount(a), MaxRuleCount(b)) => a >= b,
            (PktOut(a), PktOut(b)) => {
                a == b || (*a == PktOutSource::Arbitrary && *b == PktOutSource::FromPktIn)
            }
            (PhysTopo(a), PhysTopo(b)) => a.includes(b),
            (VirtTopo(a), VirtTopo(b)) => a == b,
            (Callback(a), Callback(b)) => a == b,
            (Stats(a), Stats(b)) => a >= b,
            // Unexpanded stubs cannot be compared.
            _ => false,
        }
    }

    /// Are the allowed sets of `self` and `other` provably disjoint?
    ///
    /// Used when checking whether `NOT a` includes `b`. Sound, not complete:
    /// `false` means "unknown".
    pub fn disjoint_with(&self, other: &SingletonFilter) -> bool {
        use SingletonFilter::*;
        match (self, other) {
            (Pred(a), Pred(b)) => !a.overlaps(b),
            (MaxPriority(a), MinPriority(b)) => b > a,
            (MinPriority(a), MaxPriority(b)) => a > b,
            (Action(a), Action(b)) => a != b,
            (Stats(_), Stats(_)) => false, // levels are nested, never disjoint
            (PhysTopo(a), PhysTopo(b)) => {
                a.switches.is_disjoint(&b.switches) && a.links.is_disjoint(&b.links)
            }
            _ => false,
        }
    }

    /// Convenience constructor: a predicate on an exact IPv4 destination
    /// subnet, the most common filter in the paper's examples.
    ///
    /// Unlike the data-plane match builders, this constrains *only* the
    /// `ip_dst` field (no implicit EtherType pin): a permission predicate
    /// bounds one attribute, it does not describe a concrete packet.
    pub fn ip_dst_prefix(addr: Ipv4, prefix: u8) -> Self {
        SingletonFilter::Pred(FlowMatch {
            ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                addr, prefix,
            )),
            ..FlowMatch::default()
        })
    }

    /// Like [`SingletonFilter::ip_dst_prefix`] but for the source address.
    pub fn ip_src_prefix(addr: Ipv4, prefix: u8) -> Self {
        SingletonFilter::Pred(FlowMatch {
            ip_src: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                addr, prefix,
            )),
            ..FlowMatch::default()
        })
    }
}

impl fmt::Display for SingletonFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SingletonFilter::*;
        match self {
            Pred(m) => write_pred(m, f),
            Wildcard { field, mask } => {
                write!(f, "WILDCARD {} {}", field, Ipv4(*mask))
            }
            Action(ActionConstraint::Drop) => write!(f, "ACTION DROP"),
            Action(ActionConstraint::Forward) => write!(f, "ACTION FORWARD"),
            Action(ActionConstraint::Modify(field)) => write!(f, "ACTION MODIFY {field}"),
            Ownership(self::Ownership::OwnFlows) => write!(f, "OWN_FLOWS"),
            Ownership(self::Ownership::AllFlows) => write!(f, "ALL_FLOWS"),
            MaxPriority(p) => write!(f, "MAX_PRIORITY {p}"),
            MinPriority(p) => write!(f, "MIN_PRIORITY {p}"),
            MaxRuleCount(n) => write!(f, "MAX_RULE_COUNT {n}"),
            PktOut(PktOutSource::FromPktIn) => write!(f, "FROM_PKT_IN"),
            PktOut(PktOutSource::Arbitrary) => write!(f, "ARBITRARY"),
            PhysTopo(t) => {
                write!(f, "SWITCH ")?;
                write_list(f, t.switches.iter())?;
                if !t.links.is_empty() {
                    write!(f, " LINK ")?;
                    let mut sep = "";
                    for (a, b) in &t.links {
                        write!(f, "{sep}{a}-{b}")?;
                        sep = ",";
                    }
                }
                Ok(())
            }
            VirtTopo(spec) => write!(f, "{spec}"),
            Callback(CallbackCap::EventInterception) => write!(f, "EVENT_INTERCEPTION"),
            Callback(CallbackCap::ModifyEventOrder) => write!(f, "MODIFY_EVENT_ORDER"),
            Stats(StatsLevel::FlowLevel) => write!(f, "FLOW_LEVEL"),
            Stats(StatsLevel::PortLevel) => write!(f, "PORT_LEVEL"),
            Stats(StatsLevel::SwitchLevel) => write!(f, "SWITCH_LEVEL"),
            Stub(name) => write!(f, "{name}"),
        }
    }
}

fn write_list<'a>(f: &mut fmt::Formatter<'_>, items: impl Iterator<Item = &'a u64>) -> fmt::Result {
    let mut sep = "";
    for item in items {
        write!(f, "{sep}{item}")?;
        sep = ",";
    }
    Ok(())
}

/// Renders a predicate filter in the language's `FIELD value [MASK mask]`
/// shape, joining multiple constrained fields with AND.
fn write_pred(m: &FlowMatch, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut sep = "";
    macro_rules! emit {
        ($fmt:expr, $($args:expr),*) => {{
            write!(f, "{sep}")?;
            write!(f, $fmt, $($args),*)?;
            sep = " AND ";
        }};
    }
    if let Some(p) = m.in_port {
        emit!("IN_PORT {}", p.0);
    }
    if let Some(a) = m.eth_src {
        emit!("ETH_SRC {}", a);
    }
    if let Some(a) = m.eth_dst {
        emit!("ETH_DST {}", a);
    }
    if let Some(t) = m.eth_type {
        emit!("ETH_TYPE {}", t);
    }
    if let Some(v) = m.vlan_id {
        emit!("VLAN_ID {}", v);
    }
    if let Some(ip) = m.ip_src {
        if ip.mask.0 == u32::MAX {
            emit!("IP_SRC {}", ip.addr);
        } else {
            emit!("IP_SRC {} MASK {}", ip.addr, ip.mask);
        }
    }
    if let Some(ip) = m.ip_dst {
        if ip.mask.0 == u32::MAX {
            emit!("IP_DST {}", ip.addr);
        } else {
            emit!("IP_DST {} MASK {}", ip.addr, ip.mask);
        }
    }
    if let Some(p) = m.ip_proto {
        emit!("IP_PROTO {}", p);
    }
    if let Some(p) = m.tp_src {
        emit!("TCP_SRC {}", p);
    }
    if let Some(p) = m.tp_dst {
        emit!("TCP_DST {}", p);
    }
    if sep.is_empty() {
        // An unconstrained predicate: print a no-op that parses back.
        write!(f, "ANY")?;
    }
    Ok(())
}

/// A filter expression: singleton filters composed with AND / OR / NOT
/// (paper §IV-B-b).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// Passes every call (an unfiltered permission).
    True,
    /// A singleton filter.
    Atom(SingletonFilter),
    /// Conjunction: passes iff all operands pass.
    And(Vec<FilterExpr>),
    /// Disjunction: passes iff any operand passes.
    Or(Vec<FilterExpr>),
    /// Negation.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// A singleton atom.
    pub fn atom(f: SingletonFilter) -> Self {
        FilterExpr::Atom(f)
    }

    /// Conjunction of two expressions, flattening nested ANDs.
    pub fn and(self, other: FilterExpr) -> Self {
        match (self, other) {
            (FilterExpr::True, x) | (x, FilterExpr::True) => x,
            (FilterExpr::And(mut a), FilterExpr::And(b)) => {
                a.extend(b);
                FilterExpr::And(a)
            }
            (FilterExpr::And(mut a), x) => {
                a.push(x);
                FilterExpr::And(a)
            }
            (x, FilterExpr::And(mut b)) => {
                b.insert(0, x);
                FilterExpr::And(b)
            }
            (a, b) => FilterExpr::And(vec![a, b]),
        }
    }

    /// Disjunction of two expressions, flattening nested ORs.
    pub fn or(self, other: FilterExpr) -> Self {
        match (self, other) {
            (FilterExpr::True, _) | (_, FilterExpr::True) => FilterExpr::True,
            (FilterExpr::Or(mut a), FilterExpr::Or(b)) => {
                a.extend(b);
                FilterExpr::Or(a)
            }
            (FilterExpr::Or(mut a), x) => {
                a.push(x);
                FilterExpr::Or(a)
            }
            (x, FilterExpr::Or(mut b)) => {
                b.insert(0, x);
                FilterExpr::Or(b)
            }
            (a, b) => FilterExpr::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        FilterExpr::Not(Box::new(self))
    }

    /// All singleton atoms in the expression.
    pub fn atoms(&self) -> Vec<&SingletonFilter> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a SingletonFilter>) {
        match self {
            FilterExpr::True => {}
            FilterExpr::Atom(a) => out.push(a),
            FilterExpr::And(xs) | FilterExpr::Or(xs) => {
                for x in xs {
                    x.collect_atoms(out);
                }
            }
            FilterExpr::Not(x) => x.collect_atoms(out),
        }
    }

    /// Names of unexpanded stub macros in the expression.
    pub fn stub_names(&self) -> Vec<&str> {
        self.atoms()
            .into_iter()
            .filter_map(|a| match a {
                SingletonFilter::Stub(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Replaces stub macros by the given expansion. Returns the rewritten
    /// expression and whether anything was replaced.
    pub fn expand_stub(&self, name: &str, replacement: &FilterExpr) -> (FilterExpr, bool) {
        match self {
            FilterExpr::Atom(SingletonFilter::Stub(n)) if n == name => (replacement.clone(), true),
            FilterExpr::True | FilterExpr::Atom(_) => (self.clone(), false),
            FilterExpr::And(xs) => {
                let mut any = false;
                let parts = xs
                    .iter()
                    .map(|x| {
                        let (e, hit) = x.expand_stub(name, replacement);
                        any |= hit;
                        e
                    })
                    .collect();
                (FilterExpr::And(parts), any)
            }
            FilterExpr::Or(xs) => {
                let mut any = false;
                let parts = xs
                    .iter()
                    .map(|x| {
                        let (e, hit) = x.expand_stub(name, replacement);
                        any |= hit;
                        e
                    })
                    .collect();
                (FilterExpr::Or(parts), any)
            }
            FilterExpr::Not(x) => {
                let (e, hit) = x.expand_stub(name, replacement);
                (FilterExpr::Not(Box::new(e)), hit)
            }
        }
    }

    /// Approximate expression size (number of atoms), for workload scaling.
    pub fn size(&self) -> usize {
        match self {
            FilterExpr::True => 0,
            FilterExpr::Atom(_) => 1,
            FilterExpr::And(xs) | FilterExpr::Or(xs) => xs.iter().map(FilterExpr::size).sum(),
            FilterExpr::Not(x) => x.size(),
        }
    }
}

impl From<SingletonFilter> for FilterExpr {
    fn from(f: SingletonFilter) -> Self {
        FilterExpr::Atom(f)
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::True => write!(f, "ANY"),
            FilterExpr::Atom(a) => write!(f, "{a}"),
            FilterExpr::And(xs) => {
                let mut sep = "";
                for x in xs {
                    write!(f, "{sep}")?;
                    if matches!(x, FilterExpr::Or(_)) {
                        write!(f, "( {x} )")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                    sep = " AND ";
                }
                Ok(())
            }
            FilterExpr::Or(xs) => {
                let mut sep = "";
                for x in xs {
                    write!(f, "{sep}")?;
                    if matches!(x, FilterExpr::And(_)) {
                        write!(f, "( {x} )")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                    sep = " OR ";
                }
                Ok(())
            }
            FilterExpr::Not(x) => {
                if matches!(**x, FilterExpr::Atom(_) | FilterExpr::True) {
                    write!(f, "NOT {x}")
                } else {
                    write!(f, "NOT ( {x} )")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(prefix: u8) -> SingletonFilter {
        SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), prefix)
    }

    #[test]
    fn pred_inclusion_follows_subsumption() {
        assert!(pred(8).includes(&pred(16)));
        assert!(!pred(16).includes(&pred(8)));
        assert!(pred(16).includes(&pred(16)));
    }

    #[test]
    fn different_dimensions_never_include() {
        let a = pred(16);
        let b = SingletonFilter::MaxPriority(10);
        assert!(!a.includes(&b));
        assert!(!b.includes(&a));
        assert_ne!(a.dimension(), b.dimension());
    }

    #[test]
    fn wildcard_inclusion() {
        let loose = SingletonFilter::Wildcard {
            field: Field::IpDst,
            mask: 0xff00_0000,
        };
        let strict = SingletonFilter::Wildcard {
            field: Field::IpDst,
            mask: 0xffff_ff00,
        };
        // Requiring fewer wildcard bits admits more rules.
        assert!(loose.includes(&strict));
        assert!(!strict.includes(&loose));
        let other_field = SingletonFilter::Wildcard {
            field: Field::IpSrc,
            mask: 0xff00_0000,
        };
        assert!(!loose.includes(&other_field));
    }

    #[test]
    fn ownership_and_pktout_lattices() {
        use SingletonFilter::*;
        assert!(
            Ownership(self::Ownership::AllFlows).includes(&Ownership(self::Ownership::OwnFlows))
        );
        assert!(
            !Ownership(self::Ownership::OwnFlows).includes(&Ownership(self::Ownership::AllFlows))
        );
        assert!(PktOut(PktOutSource::Arbitrary).includes(&PktOut(PktOutSource::FromPktIn)));
        assert!(!PktOut(PktOutSource::FromPktIn).includes(&PktOut(PktOutSource::Arbitrary)));
    }

    #[test]
    fn priority_and_quota_inclusion() {
        use SingletonFilter::*;
        assert!(MaxPriority(100).includes(&MaxPriority(50)));
        assert!(!MaxPriority(50).includes(&MaxPriority(100)));
        assert!(MinPriority(10).includes(&MinPriority(20)));
        assert!(MaxRuleCount(1000).includes(&MaxRuleCount(10)));
    }

    #[test]
    fn stats_level_lattice() {
        use SingletonFilter::Stats;
        assert!(Stats(StatsLevel::FlowLevel).includes(&Stats(StatsLevel::PortLevel)));
        assert!(Stats(StatsLevel::PortLevel).includes(&Stats(StatsLevel::SwitchLevel)));
        assert!(Stats(StatsLevel::FlowLevel).includes(&Stats(StatsLevel::SwitchLevel)));
        assert!(!Stats(StatsLevel::SwitchLevel).includes(&Stats(StatsLevel::FlowLevel)));
    }

    #[test]
    fn phys_topo_inclusion() {
        let big = SingletonFilter::PhysTopo(PhysTopoFilter::new([1, 2, 3], [(1, 2), (2, 3)]));
        let small = SingletonFilter::PhysTopo(PhysTopoFilter::new([1, 2], [(1, 2)]));
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
        // Link order is normalized.
        let reversed = SingletonFilter::PhysTopo(PhysTopoFilter::new([1, 2], [(2, 1)]));
        assert!(big.includes(&reversed));
    }

    #[test]
    fn stub_never_includes() {
        let s = SingletonFilter::Stub("AdminRange".into());
        assert!(!s.includes(&s.clone()));
        assert_eq!(s.dimension(), Dimension::Stub("AdminRange".into()));
    }

    #[test]
    fn disjointness() {
        let a = SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let b = SingletonFilter::ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 16);
        assert!(a.disjoint_with(&b));
        assert!(!a.disjoint_with(&a.clone()));
        assert!(SingletonFilter::MaxPriority(5).disjoint_with(&SingletonFilter::MinPriority(6)));
        assert!(!SingletonFilter::MaxPriority(5).disjoint_with(&SingletonFilter::MinPriority(5)));
    }

    #[test]
    fn expr_construction_flattens() {
        let e = FilterExpr::atom(pred(16))
            .and(FilterExpr::atom(SingletonFilter::MaxPriority(10)))
            .and(FilterExpr::atom(SingletonFilter::Ownership(
                Ownership::OwnFlows,
            )));
        match &e {
            FilterExpr::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(e.size(), 3);
        // True is the identity of AND and absorbing for OR.
        assert_eq!(FilterExpr::True.and(FilterExpr::atom(pred(8))).size(), 1);
        assert_eq!(
            FilterExpr::True.or(FilterExpr::atom(pred(8))),
            FilterExpr::True
        );
    }

    #[test]
    fn stub_expansion() {
        let e = FilterExpr::atom(SingletonFilter::Stub("AdminRange".into()))
            .and(FilterExpr::atom(SingletonFilter::MaxPriority(10)));
        assert_eq!(e.stub_names(), vec!["AdminRange"]);
        let replacement = FilterExpr::atom(pred(16));
        let (expanded, hit) = e.expand_stub("AdminRange", &replacement);
        assert!(hit);
        assert!(expanded.stub_names().is_empty());
        let (_, miss) = e.expand_stub("Nope", &replacement);
        assert!(!miss);
    }

    #[test]
    fn display_shapes() {
        let e = FilterExpr::atom(SingletonFilter::Ownership(Ownership::OwnFlows))
            .or(FilterExpr::atom(pred(16)).and(FilterExpr::atom(SingletonFilter::MaxPriority(7))));
        let s = e.to_string();
        assert!(
            s.contains("OWN_FLOWS OR ( IP_DST 10.13.0.0 MASK 255.255.0.0 AND MAX_PRIORITY 7 )"),
            "{s}"
        );
        let n = FilterExpr::atom(pred(16)).not();
        assert_eq!(n.to_string(), "NOT IP_DST 10.13.0.0 MASK 255.255.0.0");
    }
}
