//! Runtime evaluation of filter expressions against API calls.
//!
//! Evaluation follows the paper's semantics: a singleton filter inspects one
//! attribute of the call; a filter that inspects an attribute the call does
//! not have is vacuously satisfied ("an individual singleton filter is only
//! effective to modify a subset of permissions that contain the specific
//! attributes it inspects", §IV-B).
//!
//! Some filters are *stateful* — ownership, rule-count quotas, and packet-out
//! provenance depend on book-keeping the permission engine maintains. That
//! state is abstracted behind [`CheckContext`] so the hot evaluation path
//! stays stateless and parallelizable (paper §IX-B2).

use bytes::Bytes;

use crate::api::{ApiCall, ApiCallKind, AppId};
use crate::filter::{
    ActionConstraint, FilterExpr, Ownership, PktOutSource, SingletonFilter, StatsLevel,
};
use sdnshield_openflow::messages::StatsRequest;
use sdnshield_openflow::types::DatapathId;

/// Book-keeping the stateful filters consult.
///
/// Implementations live in the permission engine; [`NullContext`] provides
/// permissive defaults for purely static checking.
pub trait CheckContext {
    /// Would this call read or modify flows owned by a *different* app?
    ///
    /// Consulted by the `OWN_FLOWS` ownership filter on flow-table calls.
    fn touches_foreign_flows(&self, call: &ApiCall) -> bool {
        let _ = call;
        false
    }

    /// Rules currently installed by `app` on `dpid` (for `MAX_RULE_COUNT`).
    fn rule_count(&self, app: AppId, dpid: DatapathId) -> u32 {
        let _ = (app, dpid);
        0
    }

    /// Was `payload` recently delivered to `app` in a packet-in
    /// (for `FROM_PKT_IN`)?
    fn is_from_pkt_in(&self, app: AppId, payload: &Bytes) -> bool {
        let _ = (app, payload);
        false
    }

    /// A counter that advances whenever the answers of the other methods may
    /// have changed (tracker/quota mutations). The engine's decision cache
    /// keys entries on this epoch; a stale epoch is a cache miss, never a
    /// stale answer. Contexts whose state never changes may keep the
    /// default constant.
    fn epoch(&self) -> u64 {
        0
    }
}

/// A [`CheckContext`] with permissive defaults: no foreign flows, zero rule
/// counts, and every packet-out treated as replayed from a packet-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullContext;

impl CheckContext for NullContext {
    fn is_from_pkt_in(&self, _app: AppId, _payload: &Bytes) -> bool {
        true
    }
}

/// A [`CheckContext`] carrying only an epoch observation — the app-side
/// read fast path's context.
///
/// Call-only check plans never consult the stateful methods, so the
/// (deliberately restrictive) defaults below are unreachable on that path;
/// the epoch keys the engine's decision cache exactly as the kernel-side
/// tracker context would at the same instant. Callers that cannot prove a
/// plan is call-only must use a real tracker-backed context instead.
#[derive(Debug, Clone, Copy)]
pub struct EpochContext(pub u64);

impl CheckContext for EpochContext {
    fn epoch(&self) -> u64 {
        self.0
    }
}

/// Why a filter rejected a call (carried in deny decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterViolation {
    /// Human-readable rendering of the violated filter.
    pub filter: String,
}

/// Evaluates a filter expression against a call.
///
/// Returns `true` when the call passes. Unexpanded stub macros always fail
/// (a manifest must be reconciled before enforcement).
pub fn eval(expr: &FilterExpr, call: &ApiCall, ctx: &dyn CheckContext) -> bool {
    match expr {
        FilterExpr::True => true,
        FilterExpr::Atom(f) => eval_singleton(f, call, ctx),
        FilterExpr::And(xs) => xs.iter().all(|x| eval(x, call, ctx)),
        FilterExpr::Or(xs) => xs.iter().any(|x| eval(x, call, ctx)),
        FilterExpr::Not(x) => !eval(x, call, ctx),
    }
}

/// Evaluates one singleton filter against a call.
pub fn eval_singleton(f: &SingletonFilter, call: &ApiCall, ctx: &dyn CheckContext) -> bool {
    match f {
        SingletonFilter::Pred(granted) => match call.kind.flow_space() {
            Some(space) => {
                if is_read_call(&call.kind) {
                    // Reads may query broadly; results are filtered to the
                    // visible space by the kernel. The call passes if any
                    // visible flow could satisfy it.
                    granted.overlaps(&space)
                } else {
                    // Writes must stay strictly inside the granted space.
                    granted.subsumes(&space)
                }
            }
            None => true,
        },
        SingletonFilter::Wildcard { field, mask } => match &call.kind {
            ApiCallKind::InsertFlow { flow_mod, .. } | ApiCallKind::DeleteFlow { flow_mod, .. } => {
                let matched_bits = matched_bits_of(&flow_mod.flow_match, *field);
                matched_bits & mask == 0
            }
            _ => true,
        },
        SingletonFilter::Action(constraint) => match &call.kind {
            ApiCallKind::InsertFlow { flow_mod, .. } => {
                action_list_conforms(&flow_mod.actions, constraint)
            }
            ApiCallKind::SendPacketOut { packet_out, .. } => {
                action_list_conforms(&packet_out.actions, constraint)
            }
            _ => true,
        },
        SingletonFilter::Ownership(Ownership::AllFlows) => true,
        SingletonFilter::Ownership(Ownership::OwnFlows) => match &call.kind {
            ApiCallKind::ReadFlowTable { .. }
            | ApiCallKind::InsertFlow { .. }
            | ApiCallKind::DeleteFlow { .. } => !ctx.touches_foreign_flows(call),
            _ => true,
        },
        SingletonFilter::MaxPriority(max) => match call.kind.priority() {
            Some(p) => p.0 <= *max,
            None => true,
        },
        SingletonFilter::MinPriority(min) => match call.kind.priority() {
            Some(p) => p.0 >= *min,
            None => true,
        },
        SingletonFilter::MaxRuleCount(quota) => match &call.kind {
            ApiCallKind::InsertFlow { dpid, .. } => ctx.rule_count(call.app, *dpid) < *quota,
            _ => true,
        },
        SingletonFilter::PktOut(PktOutSource::Arbitrary) => true,
        SingletonFilter::PktOut(PktOutSource::FromPktIn) => match call.kind.pkt_out_payload() {
            Some(payload) => ctx.is_from_pkt_in(call.app, payload),
            None => true,
        },
        SingletonFilter::PhysTopo(topo) => match call.kind.dpid() {
            Some(dpid) => topo.contains_switch(dpid),
            None => true,
        },
        SingletonFilter::VirtTopo(_) => {
            // The virtual-topology filter rewrites rather than rejects; the
            // kernel translates dpids via `vtopo`. At check time the only
            // requirement is structural and enforced there.
            true
        }
        SingletonFilter::Callback(_) => true,
        SingletonFilter::Stats(level) => match &call.kind {
            ApiCallKind::ReadStatistics { request, .. } => required_stats_level(request) <= *level,
            _ => true,
        },
        // Unexpanded stubs deny: manifests must be reconciled first.
        SingletonFilter::Stub(_) => false,
    }
}

/// How much of the evaluation environment a singleton filter consults —
/// the compile-time classification behind the engine's check plans
/// (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralClass {
    /// Decidable from the manifest alone: [`eval_singleton`] returns the
    /// carried constant for every call and every context, so plan
    /// compilation folds the literal out.
    Static(bool),
    /// Depends only on the call's own attributes — a pure function of the
    /// [`ApiCall`], cacheable per call shape.
    CallOnly,
    /// Reads the kernel's [`CheckContext`] (ownership, quotas, packet-in
    /// provenance). Never cached: the answer can change between calls.
    Stateful,
}

/// Classifies a singleton filter by what [`eval_singleton`] consults.
///
/// The classification must stay conservative with respect to the evaluator:
/// a filter marked [`LiteralClass::CallOnly`] must never read the context,
/// and one marked [`LiteralClass::Static`] must evaluate to the carried
/// constant for *every* call. The plan/cache ≡ interpreted property test
/// enforces this end to end.
pub fn classify(f: &SingletonFilter) -> LiteralClass {
    match f {
        // Constant-true: the evaluator accepts these unconditionally.
        SingletonFilter::Ownership(Ownership::AllFlows)
        | SingletonFilter::PktOut(PktOutSource::Arbitrary)
        | SingletonFilter::VirtTopo(_)
        | SingletonFilter::Callback(_) => LiteralClass::Static(true),
        // Constant-false: unexpanded stubs always deny.
        SingletonFilter::Stub(_) => LiteralClass::Static(false),
        SingletonFilter::Pred(_)
        | SingletonFilter::Wildcard { .. }
        | SingletonFilter::Action(_)
        | SingletonFilter::MaxPriority(_)
        | SingletonFilter::MinPriority(_)
        | SingletonFilter::PhysTopo(_)
        | SingletonFilter::Stats(_) => LiteralClass::CallOnly,
        SingletonFilter::Ownership(Ownership::OwnFlows)
        | SingletonFilter::MaxRuleCount(_)
        | SingletonFilter::PktOut(PktOutSource::FromPktIn) => LiteralClass::Stateful,
    }
}

/// Relative evaluation cost of a singleton filter, for cheapest-first
/// ordering inside check plans. Only the order matters, not the scale:
/// integer comparisons < set probes < flow-match algebra < context reads
/// (which scan tracker state).
pub fn cost_rank(f: &SingletonFilter) -> u8 {
    match f {
        SingletonFilter::MaxPriority(_) | SingletonFilter::MinPriority(_) => 0,
        SingletonFilter::Stats(_) => 1,
        SingletonFilter::PhysTopo(_) => 2,
        SingletonFilter::Wildcard { .. } => 3,
        SingletonFilter::Action(_) => 4,
        SingletonFilter::Pred(_) => 5,
        // Constants fold out of plans; ranked only for completeness.
        SingletonFilter::Ownership(Ownership::AllFlows)
        | SingletonFilter::PktOut(PktOutSource::Arbitrary)
        | SingletonFilter::VirtTopo(_)
        | SingletonFilter::Callback(_)
        | SingletonFilter::Stub(_) => 0,
        // Stateful reads walk tracker state (rule lists, payload windows).
        SingletonFilter::MaxRuleCount(_) => 6,
        SingletonFilter::PktOut(PktOutSource::FromPktIn) => 7,
        SingletonFilter::Ownership(Ownership::OwnFlows) => 8,
    }
}

/// The statistics granularity a call demands, exposed for the engine's
/// canonical call shape (the decision-cache key must capture every call
/// attribute a call-only filter can observe).
pub(crate) fn stats_level_of(kind: &ApiCallKind) -> Option<StatsLevel> {
    match kind {
        ApiCallKind::ReadStatistics { request, .. } => Some(required_stats_level(request)),
        _ => None,
    }
}

/// Is this call a read (result-filterable) as opposed to a write?
fn is_read_call(kind: &ApiCallKind) -> bool {
    matches!(
        kind,
        ApiCallKind::ReadFlowTable { .. }
            | ApiCallKind::ReadTopology
            | ApiCallKind::ReadStatistics { .. }
            | ApiCallKind::ReadPayload { .. }
    )
}

/// Bits of `field` that the match *constrains* (is not wildcarding).
fn matched_bits_of(
    m: &sdnshield_openflow::flow_match::FlowMatch,
    field: crate::filter::Field,
) -> u32 {
    use crate::filter::Field;
    match field {
        Field::IpSrc => m.ip_src.map(|x| x.mask.0).unwrap_or(0),
        Field::IpDst => m.ip_dst.map(|x| x.mask.0).unwrap_or(0),
        Field::InPort => m.in_port.map(|_| u32::MAX).unwrap_or(0),
        Field::EthSrc => m.eth_src.map(|_| u32::MAX).unwrap_or(0),
        Field::EthDst => m.eth_dst.map(|_| u32::MAX).unwrap_or(0),
        Field::EthType => m.eth_type.map(|_| u32::MAX).unwrap_or(0),
        Field::VlanId => m.vlan_id.map(|_| u32::MAX).unwrap_or(0),
        Field::IpProto => m.ip_proto.map(|_| u32::MAX).unwrap_or(0),
        Field::TpSrc => m.tp_src.map(|_| u32::MAX).unwrap_or(0),
        Field::TpDst => m.tp_dst.map(|_| u32::MAX).unwrap_or(0),
    }
}

/// Does an action list conform to a single action constraint?
fn action_list_conforms(
    actions: &sdnshield_openflow::actions::ActionList,
    constraint: &ActionConstraint,
) -> bool {
    match constraint {
        ActionConstraint::Drop => actions.is_drop() && !actions.modifies_headers(),
        ActionConstraint::Forward => !actions.is_drop() && !actions.modifies_headers(),
        ActionConstraint::Modify(field) => {
            // May rewrite only `field`; forwarding allowed alongside.
            actions.iter().all(|a| match a.modified_field() {
                None => true,
                Some(f) => field_name_matches(*field, f),
            })
        }
    }
}

fn field_name_matches(field: crate::filter::Field, action_field: &str) -> bool {
    use crate::filter::Field;
    matches!(
        (field, action_field),
        (Field::EthSrc, "eth_src")
            | (Field::EthDst, "eth_dst")
            | (Field::IpSrc, "ip_src")
            | (Field::IpDst, "ip_dst")
            | (Field::TpSrc, "tp_src")
            | (Field::TpDst, "tp_dst")
            | (Field::VlanId, "vlan")
    )
}

/// The statistics granularity a request needs.
fn required_stats_level(request: &StatsRequest) -> StatsLevel {
    match request {
        StatsRequest::Flow(_) | StatsRequest::Aggregate(_) => StatsLevel::FlowLevel,
        StatsRequest::Port(_) => StatsLevel::PortLevel,
        StatsRequest::Table => StatsLevel::SwitchLevel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Field, PhysTopoFilter};
    use sdnshield_openflow::actions::{Action, ActionList};
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::messages::{FlowMod, PacketOut};
    use sdnshield_openflow::types::{BufferId, Ipv4, PortNo, Priority};

    fn insert(m: FlowMatch, prio: u16, actions: ActionList) -> ApiCall {
        ApiCall::new(
            AppId(1),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::add(m, Priority(prio), actions),
            },
        )
    }

    fn fwd(m: FlowMatch) -> ApiCall {
        insert(m, 100, ActionList::output(PortNo(2)))
    }

    #[test]
    fn pred_filter_gates_writes_by_subsumption() {
        let granted = SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let inside = fwd(FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 7, 0), 24));
        let outside = fwd(FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 24));
        let broader = fwd(FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 0, 0, 0), 8));
        assert!(eval_singleton(&granted, &inside, &NullContext));
        assert!(!eval_singleton(&granted, &outside, &NullContext));
        assert!(
            !eval_singleton(&granted, &broader, &NullContext),
            "write may not exceed grant"
        );
    }

    #[test]
    fn pred_filter_gates_reads_by_overlap() {
        let granted = SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let broad_query = ApiCall::new(
            AppId(1),
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::any(),
            },
        );
        // Broad reads pass (results get filtered); disjoint reads fail.
        assert!(eval_singleton(&granted, &broad_query, &NullContext));
        let disjoint_query = ApiCall::new(
            AppId(1),
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 16),
            },
        );
        assert!(!eval_singleton(&granted, &disjoint_query, &NullContext));
    }

    #[test]
    fn pred_filter_vacuous_on_attribute_free_calls() {
        let granted = SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16);
        let topo = ApiCall::new(AppId(1), ApiCallKind::ReadTopology);
        assert!(eval_singleton(&granted, &topo, &NullContext));
    }

    #[test]
    fn wildcard_filter_enforces_wildcarded_bits() {
        // Load-balancer example (§IV): upper 24 bits of IP_DST must stay
        // wildcarded; the app may only match the low 8 bits.
        let f = SingletonFilter::Wildcard {
            field: Field::IpDst,
            mask: 0xffff_ff00,
        };
        let low8 = fwd(FlowMatch {
            ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::new(
                Ipv4::new(0, 0, 0, 5),
                Ipv4::new(0, 0, 0, 255),
            )),
            ..FlowMatch::default()
        });
        assert!(eval_singleton(&f, &low8, &NullContext));
        let exact = fwd(FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 5)));
        assert!(!eval_singleton(&f, &exact, &NullContext));
        let fully_wild = fwd(FlowMatch::default().with_tp_dst(80));
        assert!(eval_singleton(&f, &fully_wild, &NullContext));
    }

    #[test]
    fn action_filters() {
        let forward_only = SingletonFilter::Action(ActionConstraint::Forward);
        assert!(eval_singleton(
            &forward_only,
            &fwd(FlowMatch::any()),
            &NullContext
        ));
        let dropping = insert(FlowMatch::any(), 1, ActionList::drop());
        assert!(!eval_singleton(&forward_only, &dropping, &NullContext));
        let rewriting = insert(
            FlowMatch::any(),
            1,
            ActionList(vec![
                Action::SetIpDst(Ipv4::new(1, 1, 1, 1)),
                Action::Output(PortNo(2)),
            ]),
        );
        assert!(!eval_singleton(&forward_only, &rewriting, &NullContext));
        let drop_only = SingletonFilter::Action(ActionConstraint::Drop);
        assert!(eval_singleton(&drop_only, &dropping, &NullContext));
        assert!(!eval_singleton(
            &drop_only,
            &fwd(FlowMatch::any()),
            &NullContext
        ));
        let modify_ipdst = SingletonFilter::Action(ActionConstraint::Modify(Field::IpDst));
        assert!(eval_singleton(&modify_ipdst, &rewriting, &NullContext));
        let rewriting_tp = insert(
            FlowMatch::any(),
            1,
            ActionList(vec![Action::SetTpDst(8080), Action::Output(PortNo(2))]),
        );
        assert!(!eval_singleton(&modify_ipdst, &rewriting_tp, &NullContext));
    }

    #[test]
    fn priority_and_quota_filters() {
        let call = insert(FlowMatch::any(), 100, ActionList::output(PortNo(1)));
        assert!(eval_singleton(
            &SingletonFilter::MaxPriority(100),
            &call,
            &NullContext
        ));
        assert!(!eval_singleton(
            &SingletonFilter::MaxPriority(99),
            &call,
            &NullContext
        ));
        assert!(eval_singleton(
            &SingletonFilter::MinPriority(100),
            &call,
            &NullContext
        ));
        assert!(!eval_singleton(
            &SingletonFilter::MinPriority(101),
            &call,
            &NullContext
        ));

        struct Quota(u32);
        impl CheckContext for Quota {
            fn rule_count(&self, _app: AppId, _dpid: DatapathId) -> u32 {
                self.0
            }
        }
        assert!(eval_singleton(
            &SingletonFilter::MaxRuleCount(10),
            &call,
            &Quota(9)
        ));
        assert!(!eval_singleton(
            &SingletonFilter::MaxRuleCount(10),
            &call,
            &Quota(10)
        ));
    }

    #[test]
    fn ownership_filter_consults_context() {
        struct Foreign;
        impl CheckContext for Foreign {
            fn touches_foreign_flows(&self, _call: &ApiCall) -> bool {
                true
            }
        }
        let own = SingletonFilter::Ownership(Ownership::OwnFlows);
        let call = fwd(FlowMatch::any());
        assert!(!eval_singleton(&own, &call, &Foreign));
        assert!(eval_singleton(&own, &call, &NullContext));
        let all = SingletonFilter::Ownership(Ownership::AllFlows);
        assert!(eval_singleton(&all, &call, &Foreign));
    }

    #[test]
    fn pkt_out_provenance() {
        struct NoReplay;
        impl CheckContext for NoReplay {}
        let po = ApiCall::new(
            AppId(1),
            ApiCallKind::SendPacketOut {
                dpid: DatapathId(1),
                packet_out: PacketOut {
                    buffer_id: BufferId::NO_BUFFER,
                    in_port: PortNo::NONE,
                    actions: ActionList::output(PortNo(1)),
                    payload: Bytes::from_static(b"fabricated"),
                },
            },
        );
        let from_pkt_in = SingletonFilter::PktOut(PktOutSource::FromPktIn);
        assert!(!eval_singleton(&from_pkt_in, &po, &NoReplay));
        assert!(eval_singleton(&from_pkt_in, &po, &NullContext));
        assert!(eval_singleton(
            &SingletonFilter::PktOut(PktOutSource::Arbitrary),
            &po,
            &NoReplay
        ));
    }

    #[test]
    fn phys_topo_gates_by_dpid() {
        let topo = SingletonFilter::PhysTopo(PhysTopoFilter::new([1, 2], [(1, 2)]));
        let on1 = fwd(FlowMatch::any());
        assert!(eval_singleton(&topo, &on1, &NullContext));
        let on9 = ApiCall::new(
            AppId(1),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(9),
                flow_mod: FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop()),
            },
        );
        assert!(!eval_singleton(&topo, &on9, &NullContext));
    }

    #[test]
    fn stats_level_gating() {
        let port_level = SingletonFilter::Stats(StatsLevel::PortLevel);
        let flow_req = ApiCall::new(
            AppId(1),
            ApiCallKind::ReadStatistics {
                dpid: DatapathId(1),
                request: StatsRequest::Flow(FlowMatch::any()),
            },
        );
        let port_req = ApiCall::new(
            AppId(1),
            ApiCallKind::ReadStatistics {
                dpid: DatapathId(1),
                request: StatsRequest::Port(PortNo::NONE),
            },
        );
        let table_req = ApiCall::new(
            AppId(1),
            ApiCallKind::ReadStatistics {
                dpid: DatapathId(1),
                request: StatsRequest::Table,
            },
        );
        assert!(!eval(
            &FilterExpr::atom(port_level.clone()),
            &flow_req,
            &NullContext
        ));
        assert!(eval(
            &FilterExpr::atom(port_level.clone()),
            &port_req,
            &NullContext
        ));
        assert!(eval(
            &FilterExpr::atom(port_level),
            &table_req,
            &NullContext
        ));
    }

    #[test]
    fn stub_always_denies() {
        let stub = SingletonFilter::Stub("AdminRange".into());
        assert!(!eval_singleton(&stub, &fwd(FlowMatch::any()), &NullContext));
    }

    #[test]
    fn composition_semantics() {
        let a = FilterExpr::atom(SingletonFilter::MaxPriority(10));
        let b = FilterExpr::atom(SingletonFilter::ip_dst_prefix(Ipv4::new(10, 13, 0, 0), 16));
        let call_ok = insert(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 13, 1, 1)),
            5,
            ActionList::output(PortNo(1)),
        );
        let call_high_prio = insert(
            FlowMatch::default().with_ip_dst(Ipv4::new(10, 13, 1, 1)),
            50,
            ActionList::output(PortNo(1)),
        );
        let and = a.clone().and(b.clone());
        let or = a.clone().or(b.clone());
        assert!(eval(&and, &call_ok, &NullContext));
        assert!(!eval(&and, &call_high_prio, &NullContext));
        assert!(
            eval(&or, &call_high_prio, &NullContext),
            "ip matches even though prio fails"
        );
        assert!(!eval(&a.clone().not(), &call_ok, &NullContext));
        assert!(eval(&FilterExpr::True, &call_high_prio, &NullContext));
    }
}
