//! The runtime permission engine (paper §VI-B).
//!
//! When an app is loaded, its reconciled manifest is *compiled* into a
//! per-token checking structure; every API call the app issues is then
//! checked in two steps:
//!
//! 1. **token gate** — O(1) lookup: is the required token granted at all?
//! 2. **filter evaluation** — the compiled filter for that token is
//!    evaluated against the call's attributes (short-circuit DNF when the
//!    filter normalizes compactly, AST interpretation otherwise).
//!
//! Checking is stateless per call — the stateful inputs (ownership,
//! quotas, packet-in provenance) come from a [`CheckContext`] the kernel
//! maintains — so engines scale out across deputy threads (paper §IX-B2).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bytes::Bytes;

use crate::algebra::{to_dnf, Literal};
use crate::api::{ApiCall, ApiCallKind, AppId};
use crate::eval::{
    classify, cost_rank, eval, eval_singleton, stats_level_of, CheckContext, EpochContext,
    LiteralClass,
};
use crate::filter::{FilterExpr, Ownership, SingletonFilter, StatsLevel};
use crate::perm::PermissionSet;
use crate::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::flow_table::FlowEntry;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand};
use sdnshield_openflow::types::{DatapathId, Priority};

/// The outcome of a permission check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The call may proceed.
    Allowed,
    /// The call is denied.
    Denied {
        /// The token the call required.
        token: PermissionToken,
        /// Why it was denied.
        reason: DenyReason,
    },
}

impl Decision {
    /// Is the decision an allow?
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allowed)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allowed => write!(f, "allowed"),
            Decision::Denied { token, reason } => write!(f, "denied {token}: {reason}"),
        }
    }
}

/// Why a call was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenyReason {
    /// The token is not granted at all (loading-time check catches most of
    /// these; runtime re-checks defensively).
    MissingToken,
    /// The token is granted but the filter rejected the call's attributes.
    FilterRejected,
    /// The manifest still carries an unexpanded stub macro. The name is
    /// shared out of the compiled entry — denying is allocation-free.
    UnexpandedStub(Arc<str>),
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::MissingToken => write!(f, "permission token not granted"),
            DenyReason::FilterRejected => write!(f, "permission filter rejected the call"),
            DenyReason::UnexpandedStub(s) => write!(f, "unexpanded stub macro `{s}`"),
        }
    }
}

/// One token's compiled checker.
#[derive(Debug, Clone)]
struct CompiledEntry {
    /// The original expression (kept for interpretation and visibility
    /// filtering).
    original: FilterExpr,
    /// Short-circuit DNF, when the filter normalizes within bounds: the call
    /// passes if all literals of any term pass.
    dnf: Option<Vec<Vec<Literal>>>,
    /// The check plan compiled from the DNF: static literals folded out,
    /// terms and literals ordered cheapest-first. `None` when the DNF blew
    /// up (checking falls back to AST interpretation).
    plan: Option<CheckPlan>,
    /// Unexpanded stub names (deny-fast with a useful reason, shared into
    /// the decision without allocating).
    stubs: Vec<Arc<str>>,
}

/// One literal of a plan term, with its class precomputed.
#[derive(Debug, Clone)]
struct PlanLiteral {
    filter: SingletonFilter,
    negated: bool,
    /// Reads the [`CheckContext`]; evaluated last and never cached.
    stateful: bool,
}

impl PlanLiteral {
    fn eval(&self, call: &ApiCall, ctx: &dyn CheckContext) -> bool {
        eval_singleton(&self.filter, call, ctx) != self.negated
    }
}

/// A compiled check plan (DESIGN.md §5): the token's filter in DNF with
/// every *static* literal — one that evaluates to a constant for all calls
/// and contexts — folded out at compile time, and the surviving terms and
/// literals sorted cheapest-first so short-circuiting does the least work.
#[derive(Debug, Clone)]
struct CheckPlan {
    /// `Some(v)` when folding decided the whole filter: a term emptied by
    /// folding makes it constant-true, all terms dying makes it
    /// constant-false.
    constant: Option<bool>,
    /// Surviving DNF terms, cheapest first; a call passes if every literal
    /// of any term passes.
    terms: Vec<Vec<PlanLiteral>>,
    /// No stateful literal survives anywhere: the outcome is a pure
    /// function of the call shape, so decisions may be cached.
    call_only: bool,
}

impl CheckPlan {
    /// Compiles the plan from a DNF clause set.
    fn compile(dnf: &[Vec<Literal>]) -> CheckPlan {
        let mut terms: Vec<Vec<PlanLiteral>> = Vec::new();
        for term in dnf {
            let mut lits = Vec::new();
            let mut term_dead = false;
            for lit in term {
                match classify(&lit.filter) {
                    LiteralClass::Static(v) => {
                        if v == lit.negated {
                            // The literal fails every call: the whole
                            // conjunction is unsatisfiable.
                            term_dead = true;
                            break;
                        }
                        // Always passes: fold it out.
                    }
                    class => lits.push(PlanLiteral {
                        filter: lit.filter.clone(),
                        negated: lit.negated,
                        stateful: class == LiteralClass::Stateful,
                    }),
                }
            }
            if term_dead {
                continue;
            }
            if lits.is_empty() {
                // A term true for every call and context (also covers a DNF
                // that normalized to `true`, i.e. contains an empty term).
                return CheckPlan {
                    constant: Some(true),
                    terms: Vec::new(),
                    call_only: true,
                };
            }
            lits.sort_by_key(|l| (l.stateful, cost_rank(&l.filter)));
            terms.push(lits);
        }
        if terms.is_empty() {
            return CheckPlan {
                constant: Some(false),
                terms: Vec::new(),
                call_only: true,
            };
        }
        let call_only = terms.iter().all(|t| t.iter().all(|l| !l.stateful));
        terms.sort_by_key(|t| {
            (
                t.iter().any(|l| l.stateful),
                t.iter()
                    .map(|l| 1 + cost_rank(&l.filter) as u32)
                    .sum::<u32>(),
            )
        });
        CheckPlan {
            constant: None,
            terms,
            call_only,
        }
    }

    /// Evaluates the plan against a call.
    fn eval(&self, call: &ApiCall, ctx: &dyn CheckContext) -> bool {
        match self.constant {
            Some(v) => v,
            None => self
                .terms
                .iter()
                .any(|term| term.iter().all(|lit| lit.eval(call, ctx))),
        }
    }
}

/// Canonical shape of a call for the decision cache: the token plus every
/// call attribute a *call-only* literal can observe (flow space, priority,
/// dpid, actions, statistics granularity). Two calls with equal shapes get
/// the same answer from any call-only plan, so shape equality — not a lossy
/// hash — is the cache key; a 64-bit fingerprint collision can therefore
/// never change a decision (the fingerprint only picks the slot, and the
/// stored shape is compared field-exactly on every probe).
#[derive(Debug, Clone, PartialEq, Eq)]
struct CallShape {
    token: usize,
    kind: u8,
    dpid: Option<DatapathId>,
    priority: Option<Priority>,
    command: Option<FlowModCommand>,
    flow_space: Option<FlowMatch>,
    actions: Option<ActionList>,
    stats: Option<StatsLevel>,
}

/// Discriminant tag of the call kind (the shape must distinguish, say, an
/// insert from a delete with identical attributes).
fn kind_tag(kind: &ApiCallKind) -> u8 {
    match kind {
        ApiCallKind::ReadFlowTable { .. } => 0,
        ApiCallKind::InsertFlow { .. } => 1,
        ApiCallKind::DeleteFlow { .. } => 2,
        ApiCallKind::ReadTopology => 3,
        ApiCallKind::ModifyTopology { .. } => 4,
        ApiCallKind::ReadStatistics { .. } => 5,
        ApiCallKind::ReadPayload { .. } => 6,
        ApiCallKind::SendPacketOut { .. } => 7,
        ApiCallKind::Subscribe { .. } => 8,
        ApiCallKind::HostConnect { .. } => 9,
        ApiCallKind::HostSend { .. } => 10,
        ApiCallKind::FileOpen { .. } => 11,
        ApiCallKind::ProcessExec { .. } => 12,
    }
}

/// The flow-mod command and a *borrowed* action list, when present — the
/// hot lookup path must not clone the actions vector.
fn shape_parts(kind: &ApiCallKind) -> (Option<FlowModCommand>, Option<&ActionList>) {
    match kind {
        ApiCallKind::InsertFlow { flow_mod, .. } | ApiCallKind::DeleteFlow { flow_mod, .. } => {
            (Some(flow_mod.command), Some(&flow_mod.actions))
        }
        ApiCallKind::SendPacketOut { packet_out, .. } => (None, Some(&packet_out.actions)),
        _ => (None, None),
    }
}

impl CallShape {
    /// Materializes the shape (cloning the actions) — paid only when a miss
    /// installs a new cache entry.
    fn of(token: usize, call: &ApiCall) -> CallShape {
        let (command, actions) = shape_parts(&call.kind);
        CallShape {
            token,
            kind: kind_tag(&call.kind),
            dpid: call.kind.dpid(),
            priority: call.kind.priority(),
            command,
            flow_space: call.kind.flow_space(),
            actions: actions.cloned(),
            stats: stats_level_of(&call.kind),
        }
    }

    /// Field-exact comparison against a borrowed call — no allocation.
    fn matches(&self, token: usize, call: &ApiCall) -> bool {
        let (command, actions) = shape_parts(&call.kind);
        self.token == token
            && self.kind == kind_tag(&call.kind)
            && self.dpid == call.kind.dpid()
            && self.priority == call.kind.priority()
            && self.command == command
            && self.actions.as_ref() == actions
            && self.stats == stats_level_of(&call.kind)
            && self.flow_space == call.kind.flow_space()
    }
}

/// FxHash-style multiply-xor hasher for shape fingerprints. Quality only
/// affects slot distribution, never decisions (probes compare shapes
/// field-exactly), so the cheapest adequate mix wins.
struct ShapeHasher(u64);

impl ShapeHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for ShapeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// The canonical shape fingerprint, computed from borrowed call attributes
/// (no `CallShape` is built on the lookup path). Must hash exactly the
/// attributes [`CallShape::matches`] compares.
fn shape_hash(token: usize, call: &ApiCall) -> u64 {
    let (command, actions) = shape_parts(&call.kind);
    let mut h = ShapeHasher(ShapeHasher::SEED);
    token.hash(&mut h);
    kind_tag(&call.kind).hash(&mut h);
    call.kind.dpid().hash(&mut h);
    call.kind.priority().hash(&mut h);
    command.hash(&mut h);
    actions.hash(&mut h);
    stats_level_of(&call.kind).hash(&mut h);
    call.kind.flow_space().hash(&mut h);
    h.finish()
}

const CACHE_SHARDS: usize = 8;
/// Direct-mapped slots per shard (power of two: low fingerprint bits pick
/// the slot). Collisions overwrite — bounded memory with no eviction scans.
const CACHE_SLOTS: usize = 1024;
/// Misses before the admission heuristic considers bypassing the cache.
const BYPASS_PROBE_MISSES: u64 = 4096;
/// Checks served cache-free after the heuristic trips, before re-probing.
const BYPASS_WINDOW: u64 = 65_536;

/// The per-app decision cache: call-only filter outcomes in a sharded,
/// direct-mapped table keyed by canonical call shape, each entry stamped
/// with the context epoch it was computed under. An epoch mismatch is a
/// miss (defense in depth — call-only decisions cannot actually go stale,
/// and stateful literals are never cached, so the accepted staleness bound
/// is zero).
///
/// An admission heuristic guards the miss cost: when shapes are not
/// repeating (hit rate under 1/8 after [`BYPASS_PROBE_MISSES`] misses), the
/// cache steps aside for [`BYPASS_WINDOW`] checks — unique-shape floods pay
/// two relaxed atomic ops per check instead of hash + install, then the
/// cache probes again in case the workload turned repetitive.
#[derive(Debug, Default)]
struct DecisionCache {
    shards: [Mutex<Vec<Option<Slot>>>; CACHE_SHARDS],
    /// Checks issued (fingerprint for bypass windows, all relaxed — the
    /// counters are a heuristic; correctness never reads them).
    checks: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Bypass active while `checks < bypass_until`.
    bypass_until: AtomicU64,
}

#[derive(Debug)]
struct Slot {
    hash: u64,
    shape: CallShape,
    outcome: CachedOutcome,
}

#[derive(Debug, Clone, Copy)]
struct CachedOutcome {
    epoch: u64,
    passed: bool,
}

/// Outcome of a cache probe.
enum CacheQuery {
    /// Cached decision for an identical shape at the current epoch.
    Hit(bool),
    /// Not cached; carries the shape fingerprint so the caller's insert
    /// doesn't rehash.
    Miss(u64),
    /// The admission heuristic is holding the cache out of the hot path.
    Bypass,
}

impl DecisionCache {
    fn shard_of(hash: u64) -> usize {
        (hash >> 32) as usize & (CACHE_SHARDS - 1)
    }

    fn slot_of(hash: u64) -> usize {
        hash as usize & (CACHE_SLOTS - 1)
    }

    fn query(&self, token: usize, call: &ApiCall, epoch: u64) -> CacheQuery {
        let n = self.checks.fetch_add(1, Ordering::Relaxed);
        let until = self.bypass_until.load(Ordering::Relaxed);
        if n < until {
            return CacheQuery::Bypass;
        }
        if until != 0 && n == until {
            // A bypass window just ended: fresh counters for the re-probe.
            self.hits.store(0, Ordering::Relaxed);
            self.misses.store(0, Ordering::Relaxed);
        }
        let hash = shape_hash(token, call);
        let shard = self.shards[Self::shard_of(hash)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(Some(slot)) = shard.get(Self::slot_of(hash)) {
            if slot.hash == hash && slot.outcome.epoch == epoch && slot.shape.matches(token, call) {
                let passed = slot.outcome.passed;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return CacheQuery::Hit(passed);
            }
        }
        drop(shard);
        let m = self.misses.fetch_add(1, Ordering::Relaxed) + 1;
        if m >= BYPASS_PROBE_MISSES && self.hits.load(Ordering::Relaxed) * 8 < m {
            self.bypass_until
                .store(n.wrapping_add(BYPASS_WINDOW), Ordering::Relaxed);
        }
        CacheQuery::Miss(hash)
    }

    fn insert(&self, token: usize, call: &ApiCall, hash: u64, epoch: u64, passed: bool) {
        let mut shard = self.shards[Self::shard_of(hash)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if shard.is_empty() {
            // Slots allocate lazily: engines whose plans never cache (or
            // that stay bypassed) pay nothing.
            shard.resize_with(CACHE_SLOTS, || None);
        }
        shard[Self::slot_of(hash)] = Some(Slot {
            hash,
            shape: CallShape::of(token, call),
            outcome: CachedOutcome { epoch, passed },
        });
    }
}

/// A compiled per-app permission checker.
///
/// # Examples
///
/// ```
/// use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
/// use sdnshield_core::engine::PermissionEngine;
/// use sdnshield_core::eval::NullContext;
/// use sdnshield_core::lang::parse_manifest;
///
/// let manifest = parse_manifest("PERM read_topology")?;
/// let engine = PermissionEngine::compile(&manifest);
/// let call = ApiCall::new(AppId(1), ApiCallKind::ReadTopology);
/// assert!(engine.check(&call, &NullContext).is_allowed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PermissionEngine {
    entries: [Option<CompiledEntry>; PermissionToken::ALL.len()],
    cache: DecisionCache,
}

impl Clone for PermissionEngine {
    /// Clones the compiled entries; the clone starts with a cold cache.
    fn clone(&self) -> Self {
        PermissionEngine {
            entries: self.entries.clone(),
            cache: DecisionCache::default(),
        }
    }
}

impl PermissionEngine {
    /// Compiles a manifest into a runtime checker.
    pub fn compile(manifest: &PermissionSet) -> Self {
        const NONE: Option<CompiledEntry> = None;
        let mut entries = [NONE; PermissionToken::ALL.len()];
        for (token, filter) in manifest.iter() {
            let stubs = filter.stub_names().iter().map(|s| Arc::from(*s)).collect();
            let dnf = to_dnf(filter);
            let plan = dnf.as_deref().map(CheckPlan::compile);
            entries[token_index(token)] = Some(CompiledEntry {
                original: filter.clone(),
                dnf,
                plan,
                stubs,
            });
        }
        PermissionEngine {
            entries,
            cache: DecisionCache::default(),
        }
    }

    /// The granted filter for a token, if any.
    pub fn filter_for(&self, token: PermissionToken) -> Option<&FilterExpr> {
        self.entries[token_index(token)]
            .as_ref()
            .map(|e| &e.original)
    }

    /// Is the token granted at all (the loading-time check, paper §VIII-B:
    /// OSGi-level gating when "the app does not have the required permission
    /// tokens at all")?
    pub fn has_token(&self, token: PermissionToken) -> bool {
        self.entries[token_index(token)].is_some()
    }

    /// Token gate + stub gate shared by every checking tier.
    fn gate(&self, token: PermissionToken) -> Result<&CompiledEntry, Decision> {
        let Some(entry) = self.entries[token_index(token)].as_ref() else {
            return Err(Decision::Denied {
                token,
                reason: DenyReason::MissingToken,
            });
        };
        if let Some(stub) = entry.stubs.first() {
            return Err(Decision::Denied {
                token,
                reason: DenyReason::UnexpandedStub(Arc::clone(stub)),
            });
        }
        Ok(entry)
    }

    fn verdict(token: PermissionToken, passed: bool) -> Decision {
        if passed {
            Decision::Allowed
        } else {
            Decision::Denied {
                token,
                reason: DenyReason::FilterRejected,
            }
        }
    }

    /// Checks a call on the fast path: compiled plan plus the epoch-keyed
    /// decision cache for call-only plans. This is the production entry
    /// point; the other tiers exist as ablation baselines (DESIGN.md §5).
    pub fn check(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let entry = match self.gate(token) {
            Ok(e) => e,
            Err(d) => return d,
        };
        let passed = match &entry.plan {
            Some(plan) if plan.constant.is_some() => plan.constant.unwrap_or(false),
            Some(plan) if plan.call_only => {
                let token_idx = token.index();
                let epoch = ctx.epoch();
                match self.cache.query(token_idx, call, epoch) {
                    CacheQuery::Hit(p) => p,
                    CacheQuery::Miss(hash) => {
                        let p = plan.eval(call, ctx);
                        self.cache.insert(token_idx, call, hash, epoch, p);
                        p
                    }
                    CacheQuery::Bypass => plan.eval(call, ctx),
                }
            }
            Some(plan) => plan.eval(call, ctx),
            None => eval(&entry.original, call, ctx),
        };
        Self::verdict(token, passed)
    }

    /// Checks a call *only when* the decision is a pure function of the
    /// call: token gate, stub gate, constant-folded plans, and call-only
    /// plans (through the same epoch-keyed decision cache as
    /// [`PermissionEngine::check`]). Returns `None` whenever the granted
    /// filter retains a stateful literal after folding (or its DNF blew
    /// up), i.e. whenever the decision could depend on tracker state beyond
    /// what the epoch fingerprints — the caller must then route the call
    /// through a context that can answer stateful queries.
    ///
    /// This is the app-side read fast path's entry point: the app thread
    /// passes the kernel's observed context epoch, and a `Some` decision is
    /// identical to what [`PermissionEngine::check`] would return against a
    /// tracker context at that epoch.
    pub fn check_call_only(&self, call: &ApiCall, epoch: u64) -> Option<Decision> {
        let token = call.required_token();
        let entry = match self.gate(token) {
            Ok(e) => e,
            Err(d) => return Some(d),
        };
        let plan = entry.plan.as_ref()?;
        if let Some(constant) = plan.constant {
            return Some(Self::verdict(token, constant));
        }
        if !plan.call_only {
            return None;
        }
        let ctx = EpochContext(epoch);
        let token_idx = token.index();
        let passed = match self.cache.query(token_idx, call, epoch) {
            CacheQuery::Hit(p) => p,
            CacheQuery::Miss(hash) => {
                let p = plan.eval(call, &ctx);
                self.cache.insert(token_idx, call, hash, epoch, p);
                p
            }
            CacheQuery::Bypass => plan.eval(call, &ctx),
        };
        Some(Self::verdict(token, passed))
    }

    /// Two-phase check against a pinned epoch: resolves the decision
    /// lock-free via [`PermissionEngine::check_call_only`] whenever it is a
    /// pure function of the call, and only materializes a stateful context
    /// (by invoking `stateful`, which typically takes the tracker's read
    /// lock) when the granted filter retains a stateful literal.
    ///
    /// Equivalent to [`PermissionEngine::check`] against a tracker at
    /// `epoch`: for call-only plans both paths consult the same epoch-keyed
    /// cache, and for stateful plans this delegates to `check` outright.
    pub fn check_with<C, G>(&self, call: &ApiCall, epoch: u64, stateful: G) -> Decision
    where
        C: std::ops::Deref,
        C::Target: CheckContext + Sized,
        G: FnOnce() -> C,
    {
        match self.check_call_only(call, epoch) {
            Some(decision) => decision,
            None => self.check(call, &*stateful()),
        }
    }

    /// Checks a call through the compiled plan without consulting the
    /// decision cache — the "plan" ablation tier.
    pub fn check_uncached(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let entry = match self.gate(token) {
            Ok(e) => e,
            Err(d) => return d,
        };
        let passed = match &entry.plan {
            Some(plan) => plan.eval(call, ctx),
            None => eval(&entry.original, call, ctx),
        };
        Self::verdict(token, passed)
    }

    /// Checks a call using the raw DNF short-circuit (the pre-plan compiled
    /// path) — the "dnf" ablation tier.
    pub fn check_dnf(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let entry = match self.gate(token) {
            Ok(e) => e,
            Err(d) => return d,
        };
        let passed = match &entry.dnf {
            Some(terms) => terms.iter().any(|term| {
                term.iter().all(|lit| {
                    let v = eval_singleton(&lit.filter, call, ctx);
                    v != lit.negated
                })
            }),
            None => eval(&entry.original, call, ctx),
        };
        Self::verdict(token, passed)
    }

    /// Checks a call by interpreting the original AST — the ablation
    /// baseline for the compiled paths (DESIGN.md §5).
    pub fn check_interpreted(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let entry = match self.gate(token) {
            Ok(e) => e,
            Err(d) => return d,
        };
        Self::verdict(token, eval(&entry.original, call, ctx))
    }

    /// Is the token's compiled plan a pure function of the call (no
    /// stateful literal survived folding)? `false` when the token is not
    /// granted or its DNF blew up. Exposed for tests and benches.
    pub fn plan_cacheable(&self, token: PermissionToken) -> bool {
        self.entries[token_index(token)]
            .as_ref()
            .and_then(|e| e.plan.as_ref())
            .is_some_and(|p| p.call_only)
    }

    /// Visibility filtering for read results (paper §IV: a predicate on
    /// `read_flow_table` "allows the app to see the flow entries targeting
    /// the subnet"): is a concrete flow entry inside the granted space?
    ///
    /// `caller_owns` states whether the entry was installed by the caller
    /// (for `OWN_FLOWS` visibility).
    pub fn entry_visible(
        &self,
        token: PermissionToken,
        entry_match: &FlowMatch,
        dpid: DatapathId,
        caller_owns: bool,
    ) -> bool {
        match self.filter_for(token) {
            None => false,
            Some(filter) => visible(filter, entry_match, dpid, caller_owns),
        }
    }
}

/// Constant-time token slot: the discriminant cast, which agrees with the
/// position in `PermissionToken::ALL` (asserted by `token_index_agrees`).
fn token_index(t: PermissionToken) -> usize {
    t.index()
}

/// Structural visibility walk: which atoms constrain what an entry looks
/// like, as opposed to how a call behaves.
fn visible(filter: &FilterExpr, m: &FlowMatch, dpid: DatapathId, caller_owns: bool) -> bool {
    match filter {
        FilterExpr::True => true,
        FilterExpr::And(xs) => xs.iter().all(|x| visible(x, m, dpid, caller_owns)),
        FilterExpr::Or(xs) => xs.iter().any(|x| visible(x, m, dpid, caller_owns)),
        FilterExpr::Not(x) => !visible(x, m, dpid, caller_owns),
        FilterExpr::Atom(a) => match a {
            SingletonFilter::Pred(granted) => granted.subsumes(m),
            SingletonFilter::Ownership(Ownership::OwnFlows) => caller_owns,
            SingletonFilter::Ownership(Ownership::AllFlows) => true,
            SingletonFilter::PhysTopo(t) => t.contains_switch(dpid),
            SingletonFilter::Stub(_) => false,
            // Behavioral filters do not constrain entry visibility.
            _ => true,
        },
    }
}

/// A record of one installed rule and its owner.
#[derive(Debug, Clone, PartialEq)]
struct RuleRecord {
    app: AppId,
    flow_match: FlowMatch,
    priority: Priority,
}

/// Kernel-side book-keeping backing the stateful filters: rule ownership,
/// per-app rule quotas, and packet-in provenance (paper §IV-B "Ownership
/// filter inspects and keeps track of the issuers of all the existing
/// flows").
#[derive(Debug, Default)]
pub struct OwnershipTracker {
    /// dpid → installed rules with owners.
    rules: BTreeMap<DatapathId, Vec<RuleRecord>>,
    /// Recent packet-in payload hashes delivered to each app.
    pkt_in_seen: HashMap<AppId, VecDeque<u64>>,
    /// How many packet-in hashes to remember per app.
    pkt_in_window: usize,
    /// Context epoch: advances on every mutation so engine decision caches
    /// keyed on it invalidate (see [`CheckContext::epoch`]). The kernel
    /// routes all tracker mutations through the `record_*` methods, which
    /// bump it unconditionally.
    epoch: u64,
}

impl OwnershipTracker {
    /// Creates a tracker remembering the default window of 1024 packet-in
    /// payloads per app.
    pub fn new() -> Self {
        OwnershipTracker {
            rules: BTreeMap::new(),
            pkt_in_seen: HashMap::new(),
            pkt_in_window: 1024,
            epoch: 0,
        }
    }

    /// The current context epoch (see [`CheckContext::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Records a successful flow-mod by `app` on `dpid`.
    pub fn record_flow_mod(&mut self, app: AppId, dpid: DatapathId, fm: &FlowMod) {
        self.bump_epoch();
        let rules = self.rules.entry(dpid).or_default();
        match fm.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                // Replace an identical own rule, else append.
                if let Some(existing) = rules
                    .iter_mut()
                    .find(|r| r.flow_match == fm.flow_match && r.priority == fm.priority)
                {
                    existing.app = app;
                } else {
                    rules.push(RuleRecord {
                        app,
                        flow_match: fm.flow_match.clone(),
                        priority: fm.priority,
                    });
                }
            }
            FlowModCommand::Delete => {
                rules.retain(|r| !fm.flow_match.subsumes(&r.flow_match));
            }
            FlowModCommand::DeleteStrict => {
                rules.retain(|r| !(r.priority == fm.priority && r.flow_match == fm.flow_match));
            }
        }
    }

    /// Records a rule expiry (flow-removed from the switch).
    pub fn record_expiry(&mut self, dpid: DatapathId, flow_match: &FlowMatch, priority: Priority) {
        self.bump_epoch();
        if let Some(rules) = self.rules.get_mut(&dpid) {
            rules.retain(|r| !(r.priority == priority && &r.flow_match == flow_match));
        }
    }

    /// Records a packet-in payload delivered to an app.
    pub fn record_pkt_in(&mut self, app: AppId, payload: &Bytes) {
        self.bump_epoch();
        let window = self.pkt_in_window;
        let seen = self.pkt_in_seen.entry(app).or_default();
        seen.push_back(hash_payload(payload));
        while seen.len() > window {
            seen.pop_front();
        }
    }

    /// Does `app` own the rule `(flow_match, priority)` on `dpid`?
    pub fn owns(
        &self,
        app: AppId,
        dpid: DatapathId,
        flow_match: &FlowMatch,
        priority: Priority,
    ) -> bool {
        self.rules.get(&dpid).is_some_and(|rules| {
            rules
                .iter()
                .any(|r| r.app == app && r.priority == priority && &r.flow_match == flow_match)
        })
    }

    /// Number of rules recorded for `(app, dpid)`.
    pub fn count(&self, app: AppId, dpid: DatapathId) -> u32 {
        self.rules
            .get(&dpid)
            .map(|rules| rules.iter().filter(|r| r.app == app).count() as u32)
            .unwrap_or(0)
    }

    /// Captures the full tracker state in a plain-data form a durability
    /// layer can serialize and later hand back to
    /// [`OwnershipTracker::restore`]. Rule records keep their in-vector
    /// order (ownership replacement scans depend on it); packet-in windows
    /// are sorted by app so two snapshots of identical state compare equal.
    pub fn snapshot(&self) -> TrackerSnapshot {
        let rules = self
            .rules
            .iter()
            .map(|(dpid, records)| {
                (
                    *dpid,
                    records
                        .iter()
                        .map(|r| (r.app, r.flow_match.clone(), r.priority))
                        .collect(),
                )
            })
            .collect();
        let mut pkt_in_seen: Vec<(AppId, Vec<u64>)> = self
            .pkt_in_seen
            .iter()
            .map(|(app, seen)| (*app, seen.iter().copied().collect()))
            .collect();
        pkt_in_seen.sort_by_key(|(app, _)| *app);
        TrackerSnapshot {
            epoch: self.epoch,
            pkt_in_window: self.pkt_in_window,
            rules,
            pkt_in_seen,
        }
    }

    /// Rebuilds a tracker from a snapshot, restoring the epoch exactly so
    /// decision caches keyed on it behave identically after recovery.
    pub fn restore(snapshot: &TrackerSnapshot) -> Self {
        OwnershipTracker {
            rules: snapshot
                .rules
                .iter()
                .map(|(dpid, records)| {
                    (
                        *dpid,
                        records
                            .iter()
                            .map(|(app, flow_match, priority)| RuleRecord {
                                app: *app,
                                flow_match: flow_match.clone(),
                                priority: *priority,
                            })
                            .collect(),
                    )
                })
                .collect(),
            pkt_in_seen: snapshot
                .pkt_in_seen
                .iter()
                .map(|(app, seen)| (*app, seen.iter().copied().collect()))
                .collect(),
            pkt_in_window: snapshot.pkt_in_window,
            epoch: snapshot.epoch,
        }
    }
}

/// One switch's tracker-recorded rules: `(owner, match, priority)` per
/// entry, in tracker order.
pub type TrackedRules = Vec<(AppId, FlowMatch, Priority)>;

/// Serializable image of an [`OwnershipTracker`] (see
/// [`OwnershipTracker::snapshot`]). Doubles as an equivalence digest: two
/// trackers with equal snapshots are observationally identical to every
/// stateful filter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrackerSnapshot {
    /// The context epoch at capture time.
    pub epoch: u64,
    /// Packet-in window size.
    pub pkt_in_window: usize,
    /// Per-switch rule records in tracker order.
    pub rules: Vec<(DatapathId, TrackedRules)>,
    /// Per-app packet-in payload hashes, oldest first, sorted by app.
    pub pkt_in_seen: Vec<(AppId, Vec<u64>)>,
}

fn hash_payload(payload: &Bytes) -> u64 {
    // FNV-1a: cheap, deterministic, adequate for replay matching.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CheckContext for OwnershipTracker {
    fn touches_foreign_flows(&self, call: &ApiCall) -> bool {
        match &call.kind {
            // Reads are visibility-filtered by the kernel, not denied here.
            ApiCallKind::ReadFlowTable { .. } => false,
            ApiCallKind::InsertFlow { dpid, flow_mod } => {
                // Inserting a rule that could shadow a foreign rule counts
                // as touching it: overlapping match at >= priority.
                self.rules.get(dpid).is_some_and(|rules| {
                    rules.iter().any(|r| {
                        r.app != call.app
                            && flow_mod.priority >= r.priority
                            && flow_mod.flow_match.overlaps(&r.flow_match)
                    })
                })
            }
            ApiCallKind::DeleteFlow { dpid, flow_mod } => {
                self.rules.get(dpid).is_some_and(|rules| {
                    rules.iter().any(|r| {
                        r.app != call.app
                            && match flow_mod.command {
                                FlowModCommand::DeleteStrict => {
                                    r.priority == flow_mod.priority
                                        && r.flow_match == flow_mod.flow_match
                                }
                                _ => flow_mod.flow_match.subsumes(&r.flow_match),
                            }
                    })
                })
            }
            _ => false,
        }
    }

    fn rule_count(&self, app: AppId, dpid: DatapathId) -> u32 {
        self.count(app, dpid)
    }

    fn is_from_pkt_in(&self, app: AppId, payload: &Bytes) -> bool {
        self.pkt_in_seen
            .get(&app)
            .is_some_and(|seen| seen.contains(&hash_payload(payload)))
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Convenience: check whether a flow entry (from the switch) is owned by an
/// app according to the cookie convention.
pub fn entry_owned_by(entry: &FlowEntry, app: AppId) -> bool {
    entry.cookie.owner() == app.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullContext;
    use crate::lang::parse_manifest;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::types::{Ipv4, PortNo};

    fn insert_call(app: u16, dst: Ipv4, prefix: u8, prio: u16) -> ApiCall {
        ApiCall::new(
            AppId(app),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::add(
                    FlowMatch {
                        ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                            dst, prefix,
                        )),
                        ..FlowMatch::default()
                    },
                    Priority(prio),
                    ActionList::output(PortNo(2)),
                ),
            },
        )
    }

    #[test]
    fn missing_token_denied() {
        let engine = PermissionEngine::compile(&parse_manifest("PERM read_statistics").unwrap());
        let d = engine.check(&insert_call(1, Ipv4::new(10, 0, 0, 0), 8, 1), &NullContext);
        assert_eq!(
            d,
            Decision::Denied {
                token: PermissionToken::InsertFlow,
                reason: DenyReason::MissingToken,
            }
        );
        assert!(!engine.has_token(PermissionToken::InsertFlow));
        assert!(engine.has_token(PermissionToken::ReadStatistics));
    }

    #[test]
    fn filter_allows_and_denies() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        );
        assert!(engine
            .check(
                &insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 1),
                &NullContext
            )
            .is_allowed());
        let d = engine.check(
            &insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 1),
            &NullContext,
        );
        assert_eq!(
            d,
            Decision::Denied {
                token: PermissionToken::InsertFlow,
                reason: DenyReason::FilterRejected,
            }
        );
    }

    #[test]
    fn compiled_and_interpreted_agree() {
        let manifest = parse_manifest(
            "PERM insert_flow LIMITING ( IP_DST 10.13.0.0 MASK 255.255.0.0 AND MAX_PRIORITY 100 ) \
             OR ( IP_DST 10.14.0.0 MASK 255.255.0.0 AND NOT MIN_PRIORITY 50 )",
        )
        .unwrap();
        let engine = PermissionEngine::compile(&manifest);
        let calls = [
            insert_call(1, Ipv4::new(10, 13, 0, 0), 24, 10),
            insert_call(1, Ipv4::new(10, 13, 0, 0), 24, 200),
            insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 10),
            insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 60),
            insert_call(1, Ipv4::new(10, 15, 0, 0), 24, 10),
        ];
        for call in &calls {
            assert_eq!(
                engine.check(call, &NullContext),
                engine.check_interpreted(call, &NullContext),
                "paths disagree on {call}"
            );
        }
        // Sanity on expected outcomes.
        assert!(engine.check(&calls[0], &NullContext).is_allowed());
        assert!(!engine.check(&calls[1], &NullContext).is_allowed());
        assert!(engine.check(&calls[2], &NullContext).is_allowed());
        assert!(!engine.check(&calls[3], &NullContext).is_allowed());
        assert!(!engine.check(&calls[4], &NullContext).is_allowed());
    }

    #[test]
    fn stub_denied_with_reason() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM network_access LIMITING AdminRange").unwrap(),
        );
        let call = ApiCall::new(
            AppId(1),
            ApiCallKind::HostConnect {
                dst_ip: Ipv4::new(10, 1, 0, 1),
                dst_port: 80,
            },
        );
        match engine.check(&call, &NullContext) {
            Decision::Denied {
                reason: DenyReason::UnexpandedStub(s),
                ..
            } => assert_eq!(&*s, "AdminRange"),
            other => panic!("expected stub denial, got {other:?}"),
        }
    }

    #[test]
    fn ownership_tracking_blocks_foreign_overrides() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING OWN_FLOWS").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        // App 2 installs a rule on dpid 1 at priority 50.
        let foreign = insert_call(2, Ipv4::new(10, 13, 0, 0), 16, 50);
        if let ApiCallKind::InsertFlow { dpid, flow_mod } = &foreign.kind {
            tracker.record_flow_mod(AppId(2), *dpid, flow_mod);
        }
        // App 1 overlapping at higher priority → denied.
        let shadowing = insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 60);
        assert!(!engine.check(&shadowing, &tracker).is_allowed());
        // App 1 at lower priority (cannot shadow) → allowed.
        let lower = insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 10);
        assert!(engine.check(&lower, &tracker).is_allowed());
        // Disjoint space → allowed.
        let disjoint = insert_call(1, Ipv4::new(10, 99, 0, 0), 16, 60);
        assert!(engine.check(&disjoint, &tracker).is_allowed());
    }

    #[test]
    fn delete_ownership_semantics() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM delete_flow LIMITING OWN_FLOWS").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        let own_rule = FlowMod::add(
            FlowMatch::default().with_tp_dst(80),
            Priority(5),
            ActionList::drop(),
        );
        let foreign_rule = FlowMod::add(
            FlowMatch::default().with_tp_dst(443),
            Priority(5),
            ActionList::drop(),
        );
        tracker.record_flow_mod(AppId(1), DatapathId(1), &own_rule);
        tracker.record_flow_mod(AppId(2), DatapathId(1), &foreign_rule);
        // Deleting own flows is fine.
        let del_own = ApiCall::new(
            AppId(1),
            ApiCallKind::DeleteFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::delete(FlowMatch::default().with_tp_dst(80)),
            },
        );
        assert!(engine.check(&del_own, &tracker).is_allowed());
        // A wildcard delete would hit app 2's rule → denied.
        let del_all = ApiCall::new(
            AppId(1),
            ApiCallKind::DeleteFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::delete(FlowMatch::any()),
            },
        );
        assert!(!engine.check(&del_all, &tracker).is_allowed());
    }

    #[test]
    fn quota_enforced_through_tracker() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING MAX_RULE_COUNT 2").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        for port in [1u16, 2] {
            let call = ApiCall::new(
                AppId(1),
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_tp_dst(port),
                        Priority(5),
                        ActionList::drop(),
                    ),
                },
            );
            assert!(engine.check(&call, &tracker).is_allowed());
            if let ApiCallKind::InsertFlow { dpid, flow_mod } = &call.kind {
                tracker.record_flow_mod(AppId(1), *dpid, flow_mod);
            }
        }
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 2);
        let third = insert_call(1, Ipv4::new(10, 0, 0, 0), 8, 5);
        assert!(!engine.check(&third, &tracker).is_allowed());
        // Deleting frees quota.
        tracker.record_flow_mod(
            AppId(1),
            DatapathId(1),
            &FlowMod::delete(FlowMatch::default().with_tp_dst(1)),
        );
        assert!(engine.check(&third, &tracker).is_allowed());
    }

    #[test]
    fn pkt_in_provenance_window() {
        let mut tracker = OwnershipTracker::new();
        let payload = Bytes::from_static(b"the packet");
        assert!(!tracker.is_from_pkt_in(AppId(1), &payload));
        tracker.record_pkt_in(AppId(1), &payload);
        assert!(tracker.is_from_pkt_in(AppId(1), &payload));
        // Another app did not see it.
        assert!(!tracker.is_from_pkt_in(AppId(2), &payload));
    }

    #[test]
    fn expiry_removes_records() {
        let mut tracker = OwnershipTracker::new();
        let fm = FlowMod::add(
            FlowMatch::default().with_tp_dst(80),
            Priority(5),
            ActionList::drop(),
        );
        tracker.record_flow_mod(AppId(1), DatapathId(1), &fm);
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 1);
        tracker.record_expiry(DatapathId(1), &fm.flow_match, fm.priority);
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 0);
    }

    #[test]
    fn visibility_filtering() {
        let engine = PermissionEngine::compile(
            &parse_manifest(
                "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0",
            )
            .unwrap(),
        );
        let inside = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 7, 0), 24);
        let outside = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 24);
        // Inside the subnet: visible regardless of ownership.
        assert!(engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &inside,
            DatapathId(1),
            false
        ));
        // Outside: visible only when owned.
        assert!(!engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &outside,
            DatapathId(1),
            false
        ));
        assert!(engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &outside,
            DatapathId(1),
            true
        ));
        // No grant at all: nothing visible.
        assert!(!engine.entry_visible(
            PermissionToken::ReadStatistics,
            &inside,
            DatapathId(1),
            false
        ));
    }

    #[test]
    fn cookie_ownership_convention() {
        use sdnshield_openflow::types::Cookie;
        let entry = FlowEntry {
            flow_match: FlowMatch::any(),
            priority: Priority(1),
            actions: ActionList::drop(),
            cookie: Cookie::with_owner(7, 0),
            idle_timeout: 0,
            hard_timeout: 0,
            notify_when_removed: false,
            installed_at: 0,
            last_hit_at: 0,
            packet_count: 0,
            byte_count: 0,
        };
        assert!(entry_owned_by(&entry, AppId(7)));
        assert!(!entry_owned_by(&entry, AppId(8)));
    }

    #[test]
    fn token_index_agrees() {
        for (pos, &token) in PermissionToken::ALL.iter().enumerate() {
            assert_eq!(
                token.index(),
                pos,
                "{token:?} discriminant disagrees with its position in ALL"
            );
            assert_eq!(PermissionToken::ALL[token.index()], token);
            assert_eq!(token_index(token), pos);
        }
    }

    #[test]
    fn plan_folds_static_literals_to_constants() {
        // ALL_FLOWS is static-true: the whole filter folds to constant-true
        // and the plan stays cacheable.
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING ALL_FLOWS").unwrap(),
        );
        assert!(engine.plan_cacheable(PermissionToken::InsertFlow));
        assert!(engine
            .check(&insert_call(1, Ipv4::new(1, 2, 3, 4), 32, 1), &NullContext)
            .is_allowed());

        // NOT ALL_FLOWS kills its only term: constant-false.
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING NOT ALL_FLOWS").unwrap(),
        );
        assert!(engine.plan_cacheable(PermissionToken::InsertFlow));
        let call = insert_call(1, Ipv4::new(1, 2, 3, 4), 32, 1);
        assert!(!engine.check(&call, &NullContext).is_allowed());
        assert_eq!(
            engine.check(&call, &NullContext),
            engine.check_interpreted(&call, &NullContext)
        );
    }

    #[test]
    fn stateful_plans_are_not_cacheable() {
        let engine = PermissionEngine::compile(
            &parse_manifest(
                "PERM insert_flow LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0",
            )
            .unwrap(),
        );
        assert!(!engine.plan_cacheable(PermissionToken::InsertFlow));
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        );
        assert!(engine.plan_cacheable(PermissionToken::InsertFlow));
    }

    /// A context whose epoch the test can bump, to observe invalidation.
    struct EpochCtx(u64);
    impl CheckContext for EpochCtx {
        fn epoch(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn decision_cache_hits_and_epoch_invalidation() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        );
        let hit = insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 5);
        let miss = insert_call(1, Ipv4::new(10, 99, 0, 0), 24, 5);
        for epoch in [0u64, 1, 2, u64::MAX] {
            let ctx = EpochCtx(epoch);
            // First call populates, second must hit and agree; every answer
            // must match the uncached tiers regardless of epoch churn.
            for call in [&hit, &miss] {
                let first = engine.check(call, &ctx);
                let second = engine.check(call, &ctx);
                assert_eq!(first, second);
                assert_eq!(first, engine.check_uncached(call, &ctx));
                assert_eq!(first, engine.check_dnf(call, &ctx));
                assert_eq!(first, engine.check_interpreted(call, &ctx));
            }
            assert!(engine.check(&hit, &ctx).is_allowed());
            assert!(!engine.check(&miss, &ctx).is_allowed());
        }
    }

    #[test]
    fn tracker_epoch_advances_on_every_mutation() {
        let mut tracker = OwnershipTracker::new();
        let e0 = tracker.epoch();
        let fm = FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop());
        tracker.record_flow_mod(AppId(1), DatapathId(1), &fm);
        let e1 = tracker.epoch();
        assert_ne!(e0, e1);
        tracker.record_expiry(DatapathId(1), &fm.flow_match, fm.priority);
        let e2 = tracker.epoch();
        assert_ne!(e1, e2);
        tracker.record_pkt_in(AppId(1), &Bytes::from_static(b"pkt"));
        assert_ne!(e2, tracker.epoch());
        // The trait surface exposes the same counter.
        let ctx: &dyn CheckContext = &tracker;
        assert_eq!(ctx.epoch(), tracker.epoch());
    }
}
