//! The runtime permission engine (paper §VI-B).
//!
//! When an app is loaded, its reconciled manifest is *compiled* into a
//! per-token checking structure; every API call the app issues is then
//! checked in two steps:
//!
//! 1. **token gate** — O(1) lookup: is the required token granted at all?
//! 2. **filter evaluation** — the compiled filter for that token is
//!    evaluated against the call's attributes (short-circuit DNF when the
//!    filter normalizes compactly, AST interpretation otherwise).
//!
//! Checking is stateless per call — the stateful inputs (ownership,
//! quotas, packet-in provenance) come from a [`CheckContext`] the kernel
//! maintains — so engines scale out across deputy threads (paper §IX-B2).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use bytes::Bytes;

use crate::algebra::{to_dnf, Literal};
use crate::api::{ApiCall, ApiCallKind, AppId};
use crate::eval::{eval, eval_singleton, CheckContext};
use crate::filter::{FilterExpr, Ownership, SingletonFilter};
use crate::perm::PermissionSet;
use crate::token::PermissionToken;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::flow_table::FlowEntry;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand};
use sdnshield_openflow::types::{DatapathId, Priority};

/// The outcome of a permission check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The call may proceed.
    Allowed,
    /// The call is denied.
    Denied {
        /// The token the call required.
        token: PermissionToken,
        /// Why it was denied.
        reason: DenyReason,
    },
}

impl Decision {
    /// Is the decision an allow?
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allowed)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allowed => write!(f, "allowed"),
            Decision::Denied { token, reason } => write!(f, "denied {token}: {reason}"),
        }
    }
}

/// Why a call was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenyReason {
    /// The token is not granted at all (loading-time check catches most of
    /// these; runtime re-checks defensively).
    MissingToken,
    /// The token is granted but the filter rejected the call's attributes.
    FilterRejected,
    /// The manifest still carries an unexpanded stub macro.
    UnexpandedStub(String),
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::MissingToken => write!(f, "permission token not granted"),
            DenyReason::FilterRejected => write!(f, "permission filter rejected the call"),
            DenyReason::UnexpandedStub(s) => write!(f, "unexpanded stub macro `{s}`"),
        }
    }
}

/// One token's compiled checker.
#[derive(Debug, Clone)]
struct CompiledEntry {
    /// The original expression (kept for interpretation and visibility
    /// filtering).
    original: FilterExpr,
    /// Short-circuit DNF, when the filter normalizes within bounds: the call
    /// passes if all literals of any term pass.
    dnf: Option<Vec<Vec<Literal>>>,
    /// Unexpanded stub names (deny-fast with a useful reason).
    stubs: Vec<String>,
}

/// A compiled per-app permission checker.
///
/// # Examples
///
/// ```
/// use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
/// use sdnshield_core::engine::PermissionEngine;
/// use sdnshield_core::eval::NullContext;
/// use sdnshield_core::lang::parse_manifest;
///
/// let manifest = parse_manifest("PERM read_topology")?;
/// let engine = PermissionEngine::compile(&manifest);
/// let call = ApiCall::new(AppId(1), ApiCallKind::ReadTopology);
/// assert!(engine.check(&call, &NullContext).is_allowed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PermissionEngine {
    entries: [Option<CompiledEntry>; PermissionToken::ALL.len()],
}

impl PermissionEngine {
    /// Compiles a manifest into a runtime checker.
    pub fn compile(manifest: &PermissionSet) -> Self {
        const NONE: Option<CompiledEntry> = None;
        let mut entries = [NONE; PermissionToken::ALL.len()];
        for (token, filter) in manifest.iter() {
            let stubs = filter.stub_names().iter().map(|s| s.to_string()).collect();
            entries[token_index(token)] = Some(CompiledEntry {
                original: filter.clone(),
                dnf: to_dnf(filter),
                stubs,
            });
        }
        PermissionEngine { entries }
    }

    /// The granted filter for a token, if any.
    pub fn filter_for(&self, token: PermissionToken) -> Option<&FilterExpr> {
        self.entries[token_index(token)]
            .as_ref()
            .map(|e| &e.original)
    }

    /// Is the token granted at all (the loading-time check, paper §VIII-B:
    /// OSGi-level gating when "the app does not have the required permission
    /// tokens at all")?
    pub fn has_token(&self, token: PermissionToken) -> bool {
        self.entries[token_index(token)].is_some()
    }

    /// Checks a call using the compiled (DNF short-circuit) path.
    pub fn check(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let Some(entry) = self.entries[token_index(token)].as_ref() else {
            return Decision::Denied {
                token,
                reason: DenyReason::MissingToken,
            };
        };
        if let Some(stub) = entry.stubs.first() {
            return Decision::Denied {
                token,
                reason: DenyReason::UnexpandedStub(stub.clone()),
            };
        }
        let passed = match &entry.dnf {
            Some(terms) => terms.iter().any(|term| {
                term.iter().all(|lit| {
                    let v = eval_singleton(&lit.filter, call, ctx);
                    v != lit.negated
                })
            }),
            None => eval(&entry.original, call, ctx),
        };
        if passed {
            Decision::Allowed
        } else {
            Decision::Denied {
                token,
                reason: DenyReason::FilterRejected,
            }
        }
    }

    /// Checks a call by interpreting the original AST — the ablation
    /// baseline for the compiled path (DESIGN.md §5).
    pub fn check_interpreted(&self, call: &ApiCall, ctx: &dyn CheckContext) -> Decision {
        let token = call.required_token();
        let Some(entry) = self.entries[token_index(token)].as_ref() else {
            return Decision::Denied {
                token,
                reason: DenyReason::MissingToken,
            };
        };
        if let Some(stub) = entry.stubs.first() {
            return Decision::Denied {
                token,
                reason: DenyReason::UnexpandedStub(stub.clone()),
            };
        }
        if eval(&entry.original, call, ctx) {
            Decision::Allowed
        } else {
            Decision::Denied {
                token,
                reason: DenyReason::FilterRejected,
            }
        }
    }

    /// Visibility filtering for read results (paper §IV: a predicate on
    /// `read_flow_table` "allows the app to see the flow entries targeting
    /// the subnet"): is a concrete flow entry inside the granted space?
    ///
    /// `caller_owns` states whether the entry was installed by the caller
    /// (for `OWN_FLOWS` visibility).
    pub fn entry_visible(
        &self,
        token: PermissionToken,
        entry_match: &FlowMatch,
        dpid: DatapathId,
        caller_owns: bool,
    ) -> bool {
        match self.filter_for(token) {
            None => false,
            Some(filter) => visible(filter, entry_match, dpid, caller_owns),
        }
    }
}

fn token_index(t: PermissionToken) -> usize {
    PermissionToken::ALL
        .iter()
        .position(|x| *x == t)
        .expect("token in ALL")
}

/// Structural visibility walk: which atoms constrain what an entry looks
/// like, as opposed to how a call behaves.
fn visible(filter: &FilterExpr, m: &FlowMatch, dpid: DatapathId, caller_owns: bool) -> bool {
    match filter {
        FilterExpr::True => true,
        FilterExpr::And(xs) => xs.iter().all(|x| visible(x, m, dpid, caller_owns)),
        FilterExpr::Or(xs) => xs.iter().any(|x| visible(x, m, dpid, caller_owns)),
        FilterExpr::Not(x) => !visible(x, m, dpid, caller_owns),
        FilterExpr::Atom(a) => match a {
            SingletonFilter::Pred(granted) => granted.subsumes(m),
            SingletonFilter::Ownership(Ownership::OwnFlows) => caller_owns,
            SingletonFilter::Ownership(Ownership::AllFlows) => true,
            SingletonFilter::PhysTopo(t) => t.contains_switch(dpid),
            SingletonFilter::Stub(_) => false,
            // Behavioral filters do not constrain entry visibility.
            _ => true,
        },
    }
}

/// A record of one installed rule and its owner.
#[derive(Debug, Clone, PartialEq)]
struct RuleRecord {
    app: AppId,
    flow_match: FlowMatch,
    priority: Priority,
}

/// Kernel-side book-keeping backing the stateful filters: rule ownership,
/// per-app rule quotas, and packet-in provenance (paper §IV-B "Ownership
/// filter inspects and keeps track of the issuers of all the existing
/// flows").
#[derive(Debug, Default)]
pub struct OwnershipTracker {
    /// dpid → installed rules with owners.
    rules: BTreeMap<DatapathId, Vec<RuleRecord>>,
    /// Recent packet-in payload hashes delivered to each app.
    pkt_in_seen: HashMap<AppId, VecDeque<u64>>,
    /// How many packet-in hashes to remember per app.
    pkt_in_window: usize,
}

impl OwnershipTracker {
    /// Creates a tracker remembering the default window of 1024 packet-in
    /// payloads per app.
    pub fn new() -> Self {
        OwnershipTracker {
            rules: BTreeMap::new(),
            pkt_in_seen: HashMap::new(),
            pkt_in_window: 1024,
        }
    }

    /// Records a successful flow-mod by `app` on `dpid`.
    pub fn record_flow_mod(&mut self, app: AppId, dpid: DatapathId, fm: &FlowMod) {
        let rules = self.rules.entry(dpid).or_default();
        match fm.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                // Replace an identical own rule, else append.
                if let Some(existing) = rules
                    .iter_mut()
                    .find(|r| r.flow_match == fm.flow_match && r.priority == fm.priority)
                {
                    existing.app = app;
                } else {
                    rules.push(RuleRecord {
                        app,
                        flow_match: fm.flow_match.clone(),
                        priority: fm.priority,
                    });
                }
            }
            FlowModCommand::Delete => {
                rules.retain(|r| !fm.flow_match.subsumes(&r.flow_match));
            }
            FlowModCommand::DeleteStrict => {
                rules.retain(|r| !(r.priority == fm.priority && r.flow_match == fm.flow_match));
            }
        }
    }

    /// Records a rule expiry (flow-removed from the switch).
    pub fn record_expiry(&mut self, dpid: DatapathId, flow_match: &FlowMatch, priority: Priority) {
        if let Some(rules) = self.rules.get_mut(&dpid) {
            rules.retain(|r| !(r.priority == priority && &r.flow_match == flow_match));
        }
    }

    /// Records a packet-in payload delivered to an app.
    pub fn record_pkt_in(&mut self, app: AppId, payload: &Bytes) {
        let window = self.pkt_in_window;
        let seen = self.pkt_in_seen.entry(app).or_default();
        seen.push_back(hash_payload(payload));
        while seen.len() > window {
            seen.pop_front();
        }
    }

    /// Does `app` own the rule `(flow_match, priority)` on `dpid`?
    pub fn owns(
        &self,
        app: AppId,
        dpid: DatapathId,
        flow_match: &FlowMatch,
        priority: Priority,
    ) -> bool {
        self.rules.get(&dpid).is_some_and(|rules| {
            rules
                .iter()
                .any(|r| r.app == app && r.priority == priority && &r.flow_match == flow_match)
        })
    }

    /// Number of rules recorded for `(app, dpid)`.
    pub fn count(&self, app: AppId, dpid: DatapathId) -> u32 {
        self.rules
            .get(&dpid)
            .map(|rules| rules.iter().filter(|r| r.app == app).count() as u32)
            .unwrap_or(0)
    }
}

fn hash_payload(payload: &Bytes) -> u64 {
    // FNV-1a: cheap, deterministic, adequate for replay matching.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CheckContext for OwnershipTracker {
    fn touches_foreign_flows(&self, call: &ApiCall) -> bool {
        match &call.kind {
            // Reads are visibility-filtered by the kernel, not denied here.
            ApiCallKind::ReadFlowTable { .. } => false,
            ApiCallKind::InsertFlow { dpid, flow_mod } => {
                // Inserting a rule that could shadow a foreign rule counts
                // as touching it: overlapping match at >= priority.
                self.rules.get(dpid).is_some_and(|rules| {
                    rules.iter().any(|r| {
                        r.app != call.app
                            && flow_mod.priority >= r.priority
                            && flow_mod.flow_match.overlaps(&r.flow_match)
                    })
                })
            }
            ApiCallKind::DeleteFlow { dpid, flow_mod } => {
                self.rules.get(dpid).is_some_and(|rules| {
                    rules.iter().any(|r| {
                        r.app != call.app
                            && match flow_mod.command {
                                FlowModCommand::DeleteStrict => {
                                    r.priority == flow_mod.priority
                                        && r.flow_match == flow_mod.flow_match
                                }
                                _ => flow_mod.flow_match.subsumes(&r.flow_match),
                            }
                    })
                })
            }
            _ => false,
        }
    }

    fn rule_count(&self, app: AppId, dpid: DatapathId) -> u32 {
        self.count(app, dpid)
    }

    fn is_from_pkt_in(&self, app: AppId, payload: &Bytes) -> bool {
        self.pkt_in_seen
            .get(&app)
            .is_some_and(|seen| seen.contains(&hash_payload(payload)))
    }
}

/// Convenience: check whether a flow entry (from the switch) is owned by an
/// app according to the cookie convention.
pub fn entry_owned_by(entry: &FlowEntry, app: AppId) -> bool {
    entry.cookie.owner() == app.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::NullContext;
    use crate::lang::parse_manifest;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::types::{Ipv4, PortNo};

    fn insert_call(app: u16, dst: Ipv4, prefix: u8, prio: u16) -> ApiCall {
        ApiCall::new(
            AppId(app),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::add(
                    FlowMatch {
                        ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                            dst, prefix,
                        )),
                        ..FlowMatch::default()
                    },
                    Priority(prio),
                    ActionList::output(PortNo(2)),
                ),
            },
        )
    }

    #[test]
    fn missing_token_denied() {
        let engine = PermissionEngine::compile(&parse_manifest("PERM read_statistics").unwrap());
        let d = engine.check(&insert_call(1, Ipv4::new(10, 0, 0, 0), 8, 1), &NullContext);
        assert_eq!(
            d,
            Decision::Denied {
                token: PermissionToken::InsertFlow,
                reason: DenyReason::MissingToken,
            }
        );
        assert!(!engine.has_token(PermissionToken::InsertFlow));
        assert!(engine.has_token(PermissionToken::ReadStatistics));
    }

    #[test]
    fn filter_allows_and_denies() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        );
        assert!(engine
            .check(
                &insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 1),
                &NullContext
            )
            .is_allowed());
        let d = engine.check(
            &insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 1),
            &NullContext,
        );
        assert_eq!(
            d,
            Decision::Denied {
                token: PermissionToken::InsertFlow,
                reason: DenyReason::FilterRejected,
            }
        );
    }

    #[test]
    fn compiled_and_interpreted_agree() {
        let manifest = parse_manifest(
            "PERM insert_flow LIMITING ( IP_DST 10.13.0.0 MASK 255.255.0.0 AND MAX_PRIORITY 100 ) \
             OR ( IP_DST 10.14.0.0 MASK 255.255.0.0 AND NOT MIN_PRIORITY 50 )",
        )
        .unwrap();
        let engine = PermissionEngine::compile(&manifest);
        let calls = [
            insert_call(1, Ipv4::new(10, 13, 0, 0), 24, 10),
            insert_call(1, Ipv4::new(10, 13, 0, 0), 24, 200),
            insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 10),
            insert_call(1, Ipv4::new(10, 14, 0, 0), 24, 60),
            insert_call(1, Ipv4::new(10, 15, 0, 0), 24, 10),
        ];
        for call in &calls {
            assert_eq!(
                engine.check(call, &NullContext),
                engine.check_interpreted(call, &NullContext),
                "paths disagree on {call}"
            );
        }
        // Sanity on expected outcomes.
        assert!(engine.check(&calls[0], &NullContext).is_allowed());
        assert!(!engine.check(&calls[1], &NullContext).is_allowed());
        assert!(engine.check(&calls[2], &NullContext).is_allowed());
        assert!(!engine.check(&calls[3], &NullContext).is_allowed());
        assert!(!engine.check(&calls[4], &NullContext).is_allowed());
    }

    #[test]
    fn stub_denied_with_reason() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM network_access LIMITING AdminRange").unwrap(),
        );
        let call = ApiCall::new(
            AppId(1),
            ApiCallKind::HostConnect {
                dst_ip: Ipv4::new(10, 1, 0, 1),
                dst_port: 80,
            },
        );
        match engine.check(&call, &NullContext) {
            Decision::Denied {
                reason: DenyReason::UnexpandedStub(s),
                ..
            } => assert_eq!(s, "AdminRange"),
            other => panic!("expected stub denial, got {other:?}"),
        }
    }

    #[test]
    fn ownership_tracking_blocks_foreign_overrides() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING OWN_FLOWS").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        // App 2 installs a rule on dpid 1 at priority 50.
        let foreign = insert_call(2, Ipv4::new(10, 13, 0, 0), 16, 50);
        if let ApiCallKind::InsertFlow { dpid, flow_mod } = &foreign.kind {
            tracker.record_flow_mod(AppId(2), *dpid, flow_mod);
        }
        // App 1 overlapping at higher priority → denied.
        let shadowing = insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 60);
        assert!(!engine.check(&shadowing, &tracker).is_allowed());
        // App 1 at lower priority (cannot shadow) → allowed.
        let lower = insert_call(1, Ipv4::new(10, 13, 7, 0), 24, 10);
        assert!(engine.check(&lower, &tracker).is_allowed());
        // Disjoint space → allowed.
        let disjoint = insert_call(1, Ipv4::new(10, 99, 0, 0), 16, 60);
        assert!(engine.check(&disjoint, &tracker).is_allowed());
    }

    #[test]
    fn delete_ownership_semantics() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM delete_flow LIMITING OWN_FLOWS").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        let own_rule = FlowMod::add(
            FlowMatch::default().with_tp_dst(80),
            Priority(5),
            ActionList::drop(),
        );
        let foreign_rule = FlowMod::add(
            FlowMatch::default().with_tp_dst(443),
            Priority(5),
            ActionList::drop(),
        );
        tracker.record_flow_mod(AppId(1), DatapathId(1), &own_rule);
        tracker.record_flow_mod(AppId(2), DatapathId(1), &foreign_rule);
        // Deleting own flows is fine.
        let del_own = ApiCall::new(
            AppId(1),
            ApiCallKind::DeleteFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::delete(FlowMatch::default().with_tp_dst(80)),
            },
        );
        assert!(engine.check(&del_own, &tracker).is_allowed());
        // A wildcard delete would hit app 2's rule → denied.
        let del_all = ApiCall::new(
            AppId(1),
            ApiCallKind::DeleteFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::delete(FlowMatch::any()),
            },
        );
        assert!(!engine.check(&del_all, &tracker).is_allowed());
    }

    #[test]
    fn quota_enforced_through_tracker() {
        let engine = PermissionEngine::compile(
            &parse_manifest("PERM insert_flow LIMITING MAX_RULE_COUNT 2").unwrap(),
        );
        let mut tracker = OwnershipTracker::new();
        for port in [1u16, 2] {
            let call = ApiCall::new(
                AppId(1),
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_tp_dst(port),
                        Priority(5),
                        ActionList::drop(),
                    ),
                },
            );
            assert!(engine.check(&call, &tracker).is_allowed());
            if let ApiCallKind::InsertFlow { dpid, flow_mod } = &call.kind {
                tracker.record_flow_mod(AppId(1), *dpid, flow_mod);
            }
        }
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 2);
        let third = insert_call(1, Ipv4::new(10, 0, 0, 0), 8, 5);
        assert!(!engine.check(&third, &tracker).is_allowed());
        // Deleting frees quota.
        tracker.record_flow_mod(
            AppId(1),
            DatapathId(1),
            &FlowMod::delete(FlowMatch::default().with_tp_dst(1)),
        );
        assert!(engine.check(&third, &tracker).is_allowed());
    }

    #[test]
    fn pkt_in_provenance_window() {
        let mut tracker = OwnershipTracker::new();
        let payload = Bytes::from_static(b"the packet");
        assert!(!tracker.is_from_pkt_in(AppId(1), &payload));
        tracker.record_pkt_in(AppId(1), &payload);
        assert!(tracker.is_from_pkt_in(AppId(1), &payload));
        // Another app did not see it.
        assert!(!tracker.is_from_pkt_in(AppId(2), &payload));
    }

    #[test]
    fn expiry_removes_records() {
        let mut tracker = OwnershipTracker::new();
        let fm = FlowMod::add(
            FlowMatch::default().with_tp_dst(80),
            Priority(5),
            ActionList::drop(),
        );
        tracker.record_flow_mod(AppId(1), DatapathId(1), &fm);
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 1);
        tracker.record_expiry(DatapathId(1), &fm.flow_match, fm.priority);
        assert_eq!(tracker.count(AppId(1), DatapathId(1)), 0);
    }

    #[test]
    fn visibility_filtering() {
        let engine = PermissionEngine::compile(
            &parse_manifest(
                "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0",
            )
            .unwrap(),
        );
        let inside = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 13, 7, 0), 24);
        let outside = FlowMatch::default().with_ip_dst_prefix(Ipv4::new(10, 14, 0, 0), 24);
        // Inside the subnet: visible regardless of ownership.
        assert!(engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &inside,
            DatapathId(1),
            false
        ));
        // Outside: visible only when owned.
        assert!(!engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &outside,
            DatapathId(1),
            false
        ));
        assert!(engine.entry_visible(
            PermissionToken::ReadFlowTable,
            &outside,
            DatapathId(1),
            true
        ));
        // No grant at all: nothing visible.
        assert!(!engine.entry_visible(
            PermissionToken::ReadStatistics,
            &inside,
            DatapathId(1),
            false
        ));
    }

    #[test]
    fn cookie_ownership_convention() {
        use sdnshield_openflow::types::Cookie;
        let entry = FlowEntry {
            flow_match: FlowMatch::any(),
            priority: Priority(1),
            actions: ActionList::drop(),
            cookie: Cookie::with_owner(7, 0),
            idle_timeout: 0,
            hard_timeout: 0,
            notify_when_removed: false,
            installed_at: 0,
            last_hit_at: 0,
            packet_count: 0,
            byte_count: 0,
        };
        assert!(entry_owned_by(&entry, AppId(7)));
        assert!(!entry_owned_by(&entry, AppId(8)));
    }
}
