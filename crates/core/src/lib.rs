//! SDNShield core — the permission-control system of the DSN'16 paper
//! *SDNShield: Reconciliating Configurable Application Permissions for SDN
//! App Markets*.
//!
//! The crate implements the paper's primary contribution:
//!
//! * [`token`] + [`filter`] — the two-level permission abstraction: coarse
//!   permission tokens (Table II) refined by composable permission filters
//!   (§IV), with per-dimension inclusion relations.
//! * [`lang`] — the permission language parser (Appendix A).
//! * [`algebra`] — CNF/DNF normalization and the filter-inclusion decision
//!   procedure (Algorithm 1).
//! * [`perm`] — permission sets with MEET / JOIN / inclusion (§V-B1).
//! * [`policy`] — the security-policy language parser (Appendix B).
//! * [`reconcile`] — the reconciliation engine: stub customization, mutual
//!   exclusion, permission boundaries (§V).
//! * [`api`] + [`eval`] + [`engine`] — the runtime permission engine that
//!   mediates API calls (§VI-B), with stateful ownership/quota/provenance
//!   book-keeping.
//! * [`vtopo`] — abstract (virtual big-switch) topology translation (§VI-B1).
//!
//! # Examples
//!
//! The full pipeline — parse a manifest, reconcile it against a policy,
//! compile it, and check a call:
//!
//! ```
//! use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
//! use sdnshield_core::engine::PermissionEngine;
//! use sdnshield_core::eval::NullContext;
//! use sdnshield_core::lang::parse_manifest;
//! use sdnshield_core::policy::parse_policy;
//! use sdnshield_core::reconcile::Reconciler;
//!
//! let manifest = parse_manifest("PERM read_topology\nPERM insert_flow\nPERM network_access")?;
//! let policy = parse_policy("ASSERT EITHER { PERM network_access } OR { PERM insert_flow }")?;
//! let mut reconciler = Reconciler::new(policy);
//! reconciler.register_app("monitor", manifest);
//! let report = reconciler.reconcile("monitor").unwrap();
//!
//! let engine = PermissionEngine::compile(&report.reconciled);
//! let call = ApiCall::new(AppId(1), ApiCallKind::ReadTopology);
//! assert!(engine.check(&call, &NullContext).is_allowed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod api;
pub mod engine;
pub mod eval;
pub mod filter;
pub mod hll;
pub mod lang;
pub mod lex;
pub mod perm;
pub mod policy;
pub mod reconcile;
pub mod sat;
pub mod templates;
pub mod token;
pub mod trace;
pub mod vtopo;

pub use api::{ApiCall, ApiCallKind, AppId};
pub use engine::{Decision, DenyReason, OwnershipTracker, PermissionEngine};
pub use eval::{CheckContext, NullContext};
pub use filter::{FilterExpr, SingletonFilter};
pub use lang::{
    parse_filter, parse_filter_spanned, parse_manifest, parse_manifest_spanned, SpannedExpr,
    SpannedManifest, SpannedPerm,
};
pub use lex::{Span, SyntaxError};
pub use perm::{Permission, PermissionSet};
pub use policy::{parse_policy, parse_policy_spanned, SpannedPolicy};
pub use reconcile::{ReconcileReport, Reconciler};
pub use token::PermissionToken;
