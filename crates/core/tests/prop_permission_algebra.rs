//! Property-based tests of the soundness contract binding the three layers
//! of SDNShield's permission system together:
//!
//! * **inclusion soundness** — if `algebra::includes(a, b)` then every API
//!   call passing filter `b` passes filter `a` (this is what makes
//!   reconciliation's boundary checks meaningful);
//! * **MEET/JOIN semantics** — set operations on permission sets behave as
//!   intersection/union of allowed behaviors;
//! * **engine consistency** — the compiled DNF fast path and the interpreted
//!   AST path always agree.

use proptest::prelude::*;

use sdnshield_core::algebra;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::engine::PermissionEngine;
use sdnshield_core::eval::{eval, NullContext};
use sdnshield_core::filter::{
    ActionConstraint, FilterExpr, Ownership, SingletonFilter, StatsLevel,
};
use sdnshield_core::perm::{Permission, PermissionSet};
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, StatsRequest};
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// Singleton filters over a small attribute space, so random calls exercise
/// both passes and rejections.
fn arb_singleton() -> impl Strategy<Value = SingletonFilter> {
    prop_oneof![
        (0u32..4, 8u8..=24).prop_map(|(net, len)| {
            SingletonFilter::Pred(FlowMatch {
                ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
                ..FlowMatch::default()
            })
        }),
        (0u16..200).prop_map(SingletonFilter::MaxPriority),
        (0u16..200).prop_map(SingletonFilter::MinPriority),
        prop_oneof![
            Just(SingletonFilter::Action(ActionConstraint::Forward)),
            Just(SingletonFilter::Action(ActionConstraint::Drop)),
        ],
        prop_oneof![
            Just(SingletonFilter::Ownership(Ownership::OwnFlows)),
            Just(SingletonFilter::Ownership(Ownership::AllFlows)),
        ],
        prop_oneof![
            Just(SingletonFilter::Stats(StatsLevel::FlowLevel)),
            Just(SingletonFilter::Stats(StatsLevel::PortLevel)),
            Just(SingletonFilter::Stats(StatsLevel::SwitchLevel)),
        ],
    ]
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let leaf = prop_oneof![
        Just(FilterExpr::True),
        arb_singleton().prop_map(FilterExpr::Atom),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::Or),
            inner.prop_map(|x| FilterExpr::Not(Box::new(x))),
        ]
    })
}

/// Random API calls covering the attributes the filters above inspect.
fn arb_call() -> impl Strategy<Value = ApiCall> {
    prop_oneof![
        // insert_flow with varying subnet, priority, actions.
        (0u32..4, 8u8..=32, 0u16..200, any::<bool>()).prop_map(|(net, len, prio, drop)| {
            let actions = if drop {
                ActionList::drop()
            } else {
                ActionList::output(PortNo(1))
            };
            ApiCall::new(
                AppId(1),
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch {
                            ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
                            ..FlowMatch::default()
                        },
                        Priority(prio),
                        actions,
                    ),
                },
            )
        }),
        // read_statistics at each level.
        (0u8..3).prop_map(|lvl| {
            let request = match lvl {
                0 => StatsRequest::Flow(FlowMatch::any()),
                1 => StatsRequest::Port(PortNo::NONE),
                _ => StatsRequest::Table,
            };
            ApiCall::new(
                AppId(1),
                ApiCallKind::ReadStatistics {
                    dpid: DatapathId(1),
                    request,
                },
            )
        }),
        Just(ApiCall::new(AppId(1), ApiCallKind::ReadTopology)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The central soundness theorem: inclusion implies behavioral
    /// containment.
    #[test]
    fn inclusion_implies_containment(a in arb_filter(), b in arb_filter(), call in arb_call()) {
        if algebra::includes(&a, &b) && eval(&b, &call, &NullContext) {
            prop_assert!(
                eval(&a, &call, &NullContext),
                "includes({a}, {b}) held but call {call} passed b and failed a"
            );
        }
    }

    /// Inclusion is reflexive on stub-free filters.
    #[test]
    fn inclusion_reflexive(a in arb_filter()) {
        prop_assert!(algebra::includes(&a, &a.clone().and(a.clone())));
    }

    /// `a AND b` is included in both; both are included in `a OR b`.
    #[test]
    fn lattice_shape(a in arb_filter(), b in arb_filter()) {
        let and = a.clone().and(b.clone());
        let or = a.clone().or(b.clone());
        prop_assert!(algebra::includes(&a, &and));
        prop_assert!(algebra::includes(&b, &and));
        prop_assert!(algebra::includes(&or, &a));
        prop_assert!(algebra::includes(&or, &b));
    }

    /// AND/OR evaluation matches boolean semantics of the operands.
    #[test]
    fn eval_composes(a in arb_filter(), b in arb_filter(), call in arb_call()) {
        let ea = eval(&a, &call, &NullContext);
        let eb = eval(&b, &call, &NullContext);
        prop_assert_eq!(eval(&a.clone().and(b.clone()), &call, &NullContext), ea && eb);
        prop_assert_eq!(eval(&a.clone().or(b.clone()), &call, &NullContext), ea || eb);
        prop_assert_eq!(eval(&a.clone().not(), &call, &NullContext), !ea);
    }

    /// Compiled (DNF) and interpreted engine paths agree on every call.
    #[test]
    fn engine_paths_agree(f in arb_filter(), call in arb_call()) {
        let manifest = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, f.clone()),
            Permission::limited(PermissionToken::ReadStatistics, f.clone()),
            Permission::limited(PermissionToken::VisibleTopology, f),
        ]);
        let engine = PermissionEngine::compile(&manifest);
        prop_assert_eq!(
            engine.check(&call, &NullContext),
            engine.check_interpreted(&call, &NullContext)
        );
    }

    /// MEET behaves as behavioral intersection; JOIN as union.
    #[test]
    fn meet_join_semantics(fa in arb_filter(), fb in arb_filter(), call in arb_call()) {
        let a = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, fa),
        ]);
        let b = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, fb),
        ]);
        let allowed = |s: &PermissionSet| {
            s.filter(PermissionToken::InsertFlow)
                .map(|f| eval(f, &call, &NullContext))
                .unwrap_or(false)
        };
        if matches!(call.kind, ApiCallKind::InsertFlow { .. }) {
            prop_assert_eq!(allowed(&a.meet(&b)), allowed(&a) && allowed(&b));
            prop_assert_eq!(allowed(&a.join(&b)), allowed(&a) || allowed(&b));
        }
    }

    /// Set inclusion is sound for behavior: if A includes B and B's engine
    /// allows a call, A's engine allows it too.
    #[test]
    fn set_inclusion_sound(fa in arb_filter(), fb in arb_filter(), call in arb_call()) {
        let a = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, fa),
        ]);
        let b = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, fb),
        ]);
        if a.includes(&b) {
            let ea = PermissionEngine::compile(&a);
            let eb = PermissionEngine::compile(&b);
            if eb.check(&call, &NullContext).is_allowed() {
                prop_assert!(ea.check(&call, &NullContext).is_allowed());
            }
        }
    }

    /// Print→parse is idempotent: one roundtrip reaches a fixed point that
    /// further roundtrips preserve exactly. (Raw generated trees may contain
    /// shapes like `And([True, True])` that the parser's smart constructors
    /// flatten, so the first roundtrip normalizes rather than preserves.)
    #[test]
    fn manifest_print_parse_roundtrip(f in arb_filter()) {
        let set = PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, f),
        ]);
        let printed = set.to_string();
        let normalized = sdnshield_core::lang::parse_manifest(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for `{printed}`: {e}"));
        let reprinted = normalized.to_string();
        let twice = sdnshield_core::lang::parse_manifest(&reprinted)
            .unwrap_or_else(|e| panic!("re-reparse failed for `{reprinted}`: {e}"));
        prop_assert_eq!(normalized, twice);
    }
}
