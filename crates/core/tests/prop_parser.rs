//! Property tests for the two language front ends: no input may panic the
//! parsers, and well-formed constructs round-trip.

use proptest::prelude::*;

use sdnshield_core::lang::{parse_filter, parse_manifest};
use sdnshield_core::policy::parse_policy;
use sdnshield_core::token::PermissionToken;

proptest! {
    /// Arbitrary byte soup never panics the manifest parser.
    #[test]
    fn manifest_parser_never_panics(input in ".{0,256}") {
        let _ = parse_manifest(&input);
    }

    /// Arbitrary byte soup never panics the policy parser.
    #[test]
    fn policy_parser_never_panics(input in ".{0,256}") {
        let _ = parse_policy(&input);
    }

    /// Arbitrary byte soup never panics the filter parser.
    #[test]
    fn filter_parser_never_panics(input in ".{0,256}") {
        let _ = parse_filter(&input);
    }

    /// Structured-looking garbage (keyword salad) never panics either and
    /// errors carry a line number within the input.
    #[test]
    fn keyword_salad_fails_gracefully(
        words in proptest::collection::vec(
            prop_oneof![
                Just("PERM"), Just("LIMITING"), Just("AND"), Just("OR"),
                Just("NOT"), Just("MASK"), Just("ASSERT"), Just("EITHER"),
                Just("LET"), Just("MEET"), Just("JOIN"), Just("APP"),
                Just("insert_flow"), Just("IP_DST"), Just("10.0.0.1"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("42"),
                Just("<="), Just("OWN_FLOWS"), Just("SWITCH"), Just(","),
            ],
            0..24,
        )
    ) {
        let input = words.join(" ");
        if let Err(e) = parse_manifest(&input) {
            let _ = e.to_string();
        }
        if let Err(e) = parse_policy(&input) {
            let _ = e.to_string();
        }
    }

    /// Every valid single-token manifest parses, prints, and re-parses
    /// to the same set.
    #[test]
    fn token_names_roundtrip(idx in 0usize..PermissionToken::ALL.len()) {
        let token = PermissionToken::ALL[idx];
        let src = format!("PERM {}", token.name());
        let parsed = parse_manifest(&src).unwrap();
        prop_assert!(parsed.contains_token(token));
        let reparsed = parse_manifest(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Random IP/mask predicates round-trip through print → parse.
    #[test]
    fn predicate_values_roundtrip(addr in any::<u32>(), prefix in 0u8..=32, port in 1u16..u16::MAX) {
        let ip = sdnshield_openflow::types::Ipv4(addr);
        let mask = sdnshield_openflow::types::Ipv4::prefix_mask(prefix);
        let src = format!(
            "PERM insert_flow LIMITING IP_DST {} MASK {} AND TCP_DST {}",
            ip.masked(mask), mask, port
        );
        let parsed = parse_manifest(&src).unwrap();
        let reparsed = parse_manifest(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Random policy programs built from a small grammar parse and their
    /// constraints are countable.
    #[test]
    fn generated_policies_parse(
        n_lets in 0usize..4,
        n_asserts in 0usize..4,
        subnet in 0u8..200,
    ) {
        let mut src = String::new();
        for i in 0..n_lets {
            src.push_str(&format!(
                "LET v{i} = {{ PERM read_statistics LIMITING IP_DST 10.{subnet}.0.0 MASK 255.255.0.0 }}\n"
            ));
        }
        for _ in 0..n_asserts {
            src.push_str("ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n");
        }
        let policy = parse_policy(&src).unwrap();
        prop_assert_eq!(policy.constraints().count(), n_asserts);
        prop_assert_eq!(policy.stmts.len(), n_lets + n_asserts);
    }

    /// Random filter expressions survive parse → Display → reparse: the
    /// reprinted manifest denotes the same permission set.
    #[test]
    fn filter_expressions_roundtrip_display(seed in any::<u64>()) {
        let mut s = seed;
        let src = format!("PERM insert_flow LIMITING {}", gen_filter(&mut s, 3));
        let parsed = parse_manifest(&src).unwrap();
        let reparsed = parse_manifest(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Random policy programs (LET filter macros, LET perm-set bindings,
    /// EITHER / comparison / boolean assertions) survive parse → Display →
    /// reparse structurally.
    #[test]
    fn policy_statements_roundtrip_display(seed in any::<u64>()) {
        let mut s = seed;
        let mut src = String::new();
        src.push_str("LET alpha = { PERM read_statistics }\n");
        src.push_str("LET beta = { PERM network_access } JOIN { PERM send_pkt_out }\n");
        src.push_str(&format!("LET fmacro = {{ {} }}\n", gen_filter(&mut s, 2)));
        let vars = ["alpha", "beta"];
        for _ in 0..(1 + next(&mut s) % 3) {
            if next(&mut s).is_multiple_of(3) {
                src.push_str(&format!(
                    "ASSERT EITHER {} OR {}\n",
                    gen_perm_set(&mut s, &vars, 1),
                    gen_perm_set(&mut s, &vars, 1),
                ));
            } else {
                src.push_str(&format!("ASSERT {}\n", gen_assert(&mut s, &vars, 2)));
            }
        }
        let p1 = parse_policy(&src).unwrap();
        let p2 = parse_policy(&p1.to_string()).unwrap();
        prop_assert_eq!(p1, p2);
    }
}

// --- deterministic generators for the round-trip properties -------------
//
// The shimmed proptest strategy combinators stop at scalars, so structured
// inputs are grown from a seeded splitmix-style stream: proptest shrinks
// the seed, the generator stays deterministic per seed.

fn next(s: &mut u64) -> u32 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*s >> 33) as u32
}

/// A single-field filter atom. Multi-field `Pred` atoms are excluded on
/// purpose: their Display collapses to per-field conjunctions, which
/// round-trips semantically but not structurally.
fn gen_atom(s: &mut u64) -> String {
    match next(s) % 5 {
        0 => format!(
            "IP_DST 10.{}.{}.{}",
            next(s) % 256,
            next(s) % 256,
            next(s) % 256
        ),
        1 => format!("IP_SRC 10.{}.0.0 MASK 255.255.0.0", next(s) % 256),
        2 => format!("TCP_DST {}", 1 + next(s) % 60000),
        3 => format!("SWITCH {}", 1 + next(s) % 8),
        _ => "OWN_FLOWS".to_owned(),
    }
}

fn gen_filter(s: &mut u64, depth: u32) -> String {
    if depth == 0 {
        return gen_atom(s);
    }
    match next(s) % 6 {
        0 | 1 => gen_atom(s),
        2 => format!(
            "{} AND {}",
            gen_filter(s, depth - 1),
            gen_filter(s, depth - 1)
        ),
        3 => format!(
            "{} OR {}",
            gen_filter(s, depth - 1),
            gen_filter(s, depth - 1)
        ),
        4 => format!("NOT ( {} )", gen_filter(s, depth - 1)),
        _ => format!("( {} )", gen_filter(s, depth - 1)),
    }
}

fn gen_perm_literal(s: &mut u64) -> String {
    let tokens = ["read_statistics", "network_access", "send_pkt_out"];
    format!("{{ PERM {} }}", tokens[next(s) as usize % tokens.len()])
}

fn gen_perm_set(s: &mut u64, vars: &[&str], depth: u32) -> String {
    let atom = |s: &mut u64| match next(s) % 4 {
        0 => vars[next(s) as usize % vars.len()].to_owned(),
        1 => format!("APP {}", ["app", "fwd", "lb"][next(s) as usize % 3]),
        _ => gen_perm_literal(s),
    };
    if depth == 0 {
        return atom(s);
    }
    match next(s) % 4 {
        0 => format!("{} MEET {}", gen_perm_set(s, vars, depth - 1), atom(s)),
        1 => format!("{} JOIN {}", gen_perm_set(s, vars, depth - 1), atom(s)),
        _ => atom(s),
    }
}

fn gen_compare(s: &mut u64, vars: &[&str]) -> String {
    let op = ["<", "<=", ">", ">=", "="][next(s) as usize % 5];
    format!(
        "{} {op} {}",
        gen_perm_set(s, vars, 1),
        gen_perm_set(s, vars, 1)
    )
}

/// A boolean assertion tree (EITHER only appears at statement level — the
/// grammar does not nest it under AND/OR/NOT).
fn gen_assert(s: &mut u64, vars: &[&str], depth: u32) -> String {
    if depth == 0 {
        return gen_compare(s, vars);
    }
    match next(s) % 5 {
        0 => format!(
            "{} AND {}",
            gen_assert(s, vars, depth - 1),
            gen_assert(s, vars, depth - 1)
        ),
        1 => format!(
            "{} OR {}",
            gen_assert(s, vars, depth - 1),
            gen_assert(s, vars, depth - 1)
        ),
        2 => format!("NOT {}", gen_assert(s, vars, depth - 1)),
        3 => format!("( {} )", gen_assert(s, vars, depth - 1)),
        _ => gen_compare(s, vars),
    }
}
