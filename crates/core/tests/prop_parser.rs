//! Property tests for the two language front ends: no input may panic the
//! parsers, and well-formed constructs round-trip.

use proptest::prelude::*;

use sdnshield_core::lang::{parse_filter, parse_manifest};
use sdnshield_core::policy::parse_policy;
use sdnshield_core::token::PermissionToken;

proptest! {
    /// Arbitrary byte soup never panics the manifest parser.
    #[test]
    fn manifest_parser_never_panics(input in ".{0,256}") {
        let _ = parse_manifest(&input);
    }

    /// Arbitrary byte soup never panics the policy parser.
    #[test]
    fn policy_parser_never_panics(input in ".{0,256}") {
        let _ = parse_policy(&input);
    }

    /// Arbitrary byte soup never panics the filter parser.
    #[test]
    fn filter_parser_never_panics(input in ".{0,256}") {
        let _ = parse_filter(&input);
    }

    /// Structured-looking garbage (keyword salad) never panics either and
    /// errors carry a line number within the input.
    #[test]
    fn keyword_salad_fails_gracefully(
        words in proptest::collection::vec(
            prop_oneof![
                Just("PERM"), Just("LIMITING"), Just("AND"), Just("OR"),
                Just("NOT"), Just("MASK"), Just("ASSERT"), Just("EITHER"),
                Just("LET"), Just("MEET"), Just("JOIN"), Just("APP"),
                Just("insert_flow"), Just("IP_DST"), Just("10.0.0.1"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("42"),
                Just("<="), Just("OWN_FLOWS"), Just("SWITCH"), Just(","),
            ],
            0..24,
        )
    ) {
        let input = words.join(" ");
        if let Err(e) = parse_manifest(&input) {
            let _ = e.to_string();
        }
        if let Err(e) = parse_policy(&input) {
            let _ = e.to_string();
        }
    }

    /// Every valid single-token manifest parses, prints, and re-parses
    /// to the same set.
    #[test]
    fn token_names_roundtrip(idx in 0usize..PermissionToken::ALL.len()) {
        let token = PermissionToken::ALL[idx];
        let src = format!("PERM {}", token.name());
        let parsed = parse_manifest(&src).unwrap();
        prop_assert!(parsed.contains_token(token));
        let reparsed = parse_manifest(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Random IP/mask predicates round-trip through print → parse.
    #[test]
    fn predicate_values_roundtrip(addr in any::<u32>(), prefix in 0u8..=32, port in 1u16..u16::MAX) {
        let ip = sdnshield_openflow::types::Ipv4(addr);
        let mask = sdnshield_openflow::types::Ipv4::prefix_mask(prefix);
        let src = format!(
            "PERM insert_flow LIMITING IP_DST {} MASK {} AND TCP_DST {}",
            ip.masked(mask), mask, port
        );
        let parsed = parse_manifest(&src).unwrap();
        let reparsed = parse_manifest(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Random policy programs built from a small grammar parse and their
    /// constraints are countable.
    #[test]
    fn generated_policies_parse(
        n_lets in 0usize..4,
        n_asserts in 0usize..4,
        subnet in 0u8..200,
    ) {
        let mut src = String::new();
        for i in 0..n_lets {
            src.push_str(&format!(
                "LET v{i} = {{ PERM read_statistics LIMITING IP_DST 10.{subnet}.0.0 MASK 255.255.0.0 }}\n"
            ));
        }
        for _ in 0..n_asserts {
            src.push_str("ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n");
        }
        let policy = parse_policy(&src).unwrap();
        prop_assert_eq!(policy.constraints().count(), n_asserts);
        prop_assert_eq!(policy.stmts.len(), n_lets + n_asserts);
    }
}
