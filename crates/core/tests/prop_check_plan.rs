//! Differential property test of the permission-check fast path: for
//! arbitrary manifests (including stateful atoms and stubs), arbitrary
//! calls, and an evolving stateful context, all four checking tiers must
//! agree on every decision —
//!
//! * `check` — compiled plan + epoch-keyed decision cache,
//! * `check_uncached` — compiled plan without the cache,
//! * `check_dnf` — raw DNF short-circuit (pre-plan compiled path),
//! * `check_interpreted` — AST interpretation (the semantic baseline).
//!
//! The context mutates between checks (flow-mods, expiries, packet-ins),
//! each mutation bumping the tracker's epoch, so cached decisions are
//! exercised across invalidation boundaries: the cache must never change a
//! decision, before or after an epoch bump.

use proptest::prelude::*;

use bytes::Bytes;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::engine::{OwnershipTracker, PermissionEngine};
use sdnshield_core::filter::{
    ActionConstraint, FilterExpr, Ownership, PktOutSource, SingletonFilter, StatsLevel,
};
use sdnshield_core::perm::{Permission, PermissionSet};
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, PacketOut, StatsRequest};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo, Priority};

/// Singleton filters over a small attribute space, deliberately including
/// every literal class: static (ALL_FLOWS, ARBITRARY), call-only (Pred,
/// priorities, actions, stats), and stateful (OWN_FLOWS, MAX_RULE_COUNT,
/// FROM_PKT_IN), plus stubs (which deny-fast through the gate).
fn arb_singleton() -> impl Strategy<Value = SingletonFilter> {
    prop_oneof![
        (0u32..4, 8u8..=24).prop_map(|(net, len)| {
            SingletonFilter::Pred(FlowMatch {
                ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
                ..FlowMatch::default()
            })
        }),
        (0u16..200).prop_map(SingletonFilter::MaxPriority),
        (0u16..200).prop_map(SingletonFilter::MinPriority),
        prop_oneof![
            Just(SingletonFilter::Action(ActionConstraint::Forward)),
            Just(SingletonFilter::Action(ActionConstraint::Drop)),
        ],
        prop_oneof![
            Just(SingletonFilter::Ownership(Ownership::OwnFlows)),
            Just(SingletonFilter::Ownership(Ownership::AllFlows)),
        ],
        (0u32..4).prop_map(SingletonFilter::MaxRuleCount),
        prop_oneof![
            Just(SingletonFilter::PktOut(PktOutSource::FromPktIn)),
            Just(SingletonFilter::PktOut(PktOutSource::Arbitrary)),
        ],
        prop_oneof![
            Just(SingletonFilter::Stats(StatsLevel::FlowLevel)),
            Just(SingletonFilter::Stats(StatsLevel::PortLevel)),
            Just(SingletonFilter::Stats(StatsLevel::SwitchLevel)),
        ],
        Just(SingletonFilter::Stub("AdminRange".into())),
    ]
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let leaf = prop_oneof![
        Just(FilterExpr::True),
        arb_singleton().prop_map(FilterExpr::Atom),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::Or),
            inner.prop_map(|x| FilterExpr::Not(Box::new(x))),
        ]
    })
}

fn flow_mod(net: u32, len: u8, prio: u16, drop: bool) -> FlowMod {
    let actions = if drop {
        ActionList::drop()
    } else {
        ActionList::output(PortNo(1))
    };
    FlowMod::add(
        FlowMatch {
            ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
            ..FlowMatch::default()
        },
        Priority(prio),
        actions,
    )
}

/// Random API calls covering every attribute the filters above inspect,
/// including packet-outs (provenance) and deletes (ownership).
fn arb_call() -> impl Strategy<Value = ApiCall> {
    prop_oneof![
        (0u32..4, 8u8..=32, 0u16..200, any::<bool>()).prop_map(|(net, len, prio, drop)| {
            ApiCall::new(
                AppId(1),
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: flow_mod(net, len, prio, drop),
                },
            )
        }),
        (0u32..4, 8u8..=32, 0u16..200, any::<bool>()).prop_map(|(net, len, prio, drop)| {
            ApiCall::new(
                AppId(1),
                ApiCallKind::DeleteFlow {
                    dpid: DatapathId(1),
                    flow_mod: flow_mod(net, len, prio, drop),
                },
            )
        }),
        (0u8..4).prop_map(|which| {
            ApiCall::new(
                AppId(1),
                ApiCallKind::SendPacketOut {
                    dpid: DatapathId(1),
                    packet_out: PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: PortNo(1),
                        actions: ActionList::output(PortNo(2)),
                        payload: Bytes::from(vec![which]),
                    },
                },
            )
        }),
        (0u8..3).prop_map(|lvl| {
            let request = match lvl {
                0 => StatsRequest::Flow(FlowMatch::any()),
                1 => StatsRequest::Port(PortNo::NONE),
                _ => StatsRequest::Table,
            };
            ApiCall::new(
                AppId(1),
                ApiCallKind::ReadStatistics {
                    dpid: DatapathId(1),
                    request,
                },
            )
        }),
        Just(ApiCall::new(AppId(1), ApiCallKind::ReadTopology)),
    ]
}

/// A context mutation, applied to the tracker between checks. Every variant
/// routes through a `record_*` method, so every variant bumps the epoch.
#[derive(Debug, Clone)]
enum Mutation {
    FlowMod { app: u16, net: u32, prio: u16 },
    Expiry { net: u32, prio: u16 },
    PktIn { app: u16, payload: u8 },
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (1u16..3, 0u32..4, 0u16..200).prop_map(|(app, net, prio)| Mutation::FlowMod {
            app,
            net,
            prio
        }),
        (0u32..4, 0u16..200).prop_map(|(net, prio)| Mutation::Expiry { net, prio }),
        (1u16..3, 0u8..4).prop_map(|(app, payload)| Mutation::PktIn { app, payload }),
    ]
}

fn apply(tracker: &mut OwnershipTracker, m: &Mutation) {
    match m {
        Mutation::FlowMod { app, net, prio } => {
            tracker.record_flow_mod(
                AppId(*app),
                DatapathId(1),
                &flow_mod(*net, 16, *prio, false),
            );
        }
        Mutation::Expiry { net, prio } => {
            let fm = flow_mod(*net, 16, *prio, false);
            tracker.record_expiry(DatapathId(1), &fm.flow_match, fm.priority);
        }
        Mutation::PktIn { app, payload } => {
            tracker.record_pkt_in(AppId(*app), &Bytes::from(vec![*payload]));
        }
    }
}

fn engine_for(filter: FilterExpr) -> PermissionEngine {
    PermissionEngine::compile(&PermissionSet::from_permissions([
        Permission::limited(PermissionToken::InsertFlow, filter.clone()),
        Permission::limited(PermissionToken::DeleteFlow, filter.clone()),
        Permission::limited(PermissionToken::SendPktOut, filter.clone()),
        Permission::limited(PermissionToken::ReadStatistics, filter.clone()),
        Permission::limited(PermissionToken::VisibleTopology, filter),
    ]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All four tiers agree on every call against a static context.
    #[test]
    fn tiers_agree_on_static_context(f in arb_filter(), call in arb_call()) {
        let engine = engine_for(f);
        let tracker = OwnershipTracker::new();
        let want = engine.check_interpreted(&call, &tracker);
        prop_assert_eq!(engine.check_dnf(&call, &tracker), want.clone());
        prop_assert_eq!(engine.check_uncached(&call, &tracker), want.clone());
        // Twice through the cached path: populate, then hit.
        prop_assert_eq!(engine.check(&call, &tracker), want.clone());
        prop_assert_eq!(engine.check(&call, &tracker), want);
    }

    /// The cache never changes a decision across an evolving context: at
    /// every step — before and after each epoch-bumping mutation — the
    /// cached fast path matches the interpreted baseline on every call.
    #[test]
    fn cache_sound_across_epoch_bumps(
        f in arb_filter(),
        calls in proptest::collection::vec(arb_call(), 1..6),
        mutations in proptest::collection::vec(arb_mutation(), 1..8),
    ) {
        let engine = engine_for(f);
        let mut tracker = OwnershipTracker::new();
        for m in &mutations {
            for call in &calls {
                let want = engine.check_interpreted(call, &tracker);
                prop_assert!(
                    engine.check(call, &tracker) == want,
                    "cached path diverged before mutation {:?} at epoch {}", m, tracker.epoch()
                );
                prop_assert_eq!(engine.check_uncached(call, &tracker), want.clone());
                prop_assert_eq!(engine.check_dnf(call, &tracker), want);
            }
            let before = tracker.epoch();
            apply(&mut tracker, m);
            prop_assert!(before != tracker.epoch(), "mutation must bump the epoch");
            // Re-check the same calls immediately after the bump: any stale
            // cached outcome would surface here.
            for call in &calls {
                prop_assert!(
                    engine.check(call, &tracker) == engine.check_interpreted(call, &tracker),
                    "cached path diverged after mutation {:?} at epoch {}", m, tracker.epoch()
                );
            }
        }
    }
}
