//! Differential property tests for the SAT core (`sdnshield_core::sat`):
//!
//! 1. Every SAT verdict — `satisfiable`, `implies`, `equivalent` — must
//!    agree with brute-force truth-table enumeration over the query's atom
//!    universe, where the oracle skips theory-inconsistent assignments
//!    (those violating an implication, disjointness, priority-exhaustion,
//!    or prefix-sibling-cover axiom). This proves the DPLL solver and the
//!    Tseitin encoding correct on small universes, and proves the theory
//!    clauses are exactly the ones `model_consistent` checks.
//!
//! 2. Models returned by `witness`/`counterexample` must actually satisfy
//!    their query and be theory-consistent — the solver cannot fabricate
//!    evidence.
//!
//! 3. The SAT verdict must be sound for enforcement on point calls: a
//!    filter the solver proves unsatisfiable must deny every exact-match
//!    insert through both the compiled DNF path and the AST interpreter.
//!    (A point call induces a truth assignment over comparison atoms —
//!    membership of one address, one priority — and that assignment is
//!    theory-consistent, so unsat means no such call can pass. The reverse
//!    is deliberately not claimed: runtime evaluation is more liberal on
//!    set-granular and vacuous cases, see DESIGN.md §14.)

use proptest::prelude::*;

use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::engine::{Decision, PermissionEngine};
use sdnshield_core::eval::{eval, NullContext};
use sdnshield_core::filter::{FilterExpr, SingletonFilter};
use sdnshield_core::perm::{Permission, PermissionSet};
use sdnshield_core::sat;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, Ipv4, Priority};

/// A small atom pool chosen to exercise every theory axiom: nested and
/// disjoint prefixes (implication + disjointness), exact sibling halves
/// (the prefix-cover axiom), overlapping priority windows (implication,
/// disjointness, and exhaustion), and free stub variables.
fn pool() -> Vec<SingletonFilter> {
    let pred = |net: u32, len: u8| {
        SingletonFilter::Pred(FlowMatch {
            ip_dst: Some(MaskedIpv4::prefix(Ipv4(net), len)),
            ..FlowMatch::default()
        })
    };
    vec![
        pred(0x0a00_0000, 16), // 10.0.0.0/16
        pred(0x0a00_0000, 24), // 10.0.0.0/24  = union of the two /25s
        pred(0x0a00_0000, 25), // 10.0.0.0/25
        pred(0x0a00_0080, 25), // 10.0.0.128/25
        pred(0x0a01_0000, 24), // 10.1.0.0/24  (disjoint from all above)
        SingletonFilter::MaxPriority(5),
        SingletonFilter::MaxPriority(100),
        SingletonFilter::MinPriority(6),
        SingletonFilter::MinPriority(100),
        SingletonFilter::Stub("AdminRange".into()),
        SingletonFilter::Stub("SiteLocal".into()),
    ]
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let atoms = pool();
    let n = atoms.len();
    let leaf = prop_oneof![
        Just(FilterExpr::True),
        (0..n).prop_map({
            let atoms = atoms.clone();
            move |i| FilterExpr::Atom(atoms[i].clone())
        }),
        (0..n).prop_map(move |i| FilterExpr::Atom(atoms[i].clone())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::Or),
            inner.prop_map(|x| FilterExpr::Not(Box::new(x))),
        ]
    })
}

/// Enumerates every theory-consistent assignment over `atoms`, returning
/// whether any satisfies `pred`.
fn any_consistent(atoms: &[SingletonFilter], pred: impl Fn(&[bool]) -> bool) -> bool {
    let n = atoms.len();
    assert!(n <= 16, "universe too large to enumerate: {n}");
    (0u32..1 << n).any(|bits| {
        let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        sat::model_consistent(atoms, &assign) && pred(&assign)
    })
}

/// Brute-force satisfiability oracle.
fn enum_sat(e: &FilterExpr) -> bool {
    let atoms = sat::atoms_of(&[e]);
    any_consistent(&atoms, |assign| sat::eval_under(e, &atoms, assign))
}

/// Brute-force implication oracle over the shared universe.
fn enum_implies(a: &FilterExpr, b: &FilterExpr) -> bool {
    let atoms = sat::atoms_of(&[a, b]);
    !any_consistent(&atoms, |assign| {
        sat::eval_under(a, &atoms, assign) && !sat::eval_under(b, &atoms, assign)
    })
}

/// Converts a solver model into an assignment over the given universe.
fn assignment_of(model: &sat::Model, atoms: &[SingletonFilter]) -> Vec<bool> {
    atoms
        .iter()
        .map(|a| {
            model
                .iter()
                .find(|(m, _)| m == a)
                .map(|(_, v)| *v)
                .expect("model must assign every universe atom")
        })
        .collect()
}

/// An exact-match insert: one address, one priority. The finest-grained
/// call the comparison atoms can observe.
fn point_insert(addr: u32, prio: u16) -> ApiCall {
    ApiCall::new(
        AppId(1),
        ApiCallKind::InsertFlow {
            dpid: DatapathId(1),
            flow_mod: FlowMod::add(
                FlowMatch {
                    ip_dst: Some(MaskedIpv4::prefix(Ipv4(addr), 32)),
                    ..FlowMatch::default()
                },
                Priority(prio),
                ActionList::drop(),
            ),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `satisfiable` ≡ truth-table enumeration.
    #[test]
    fn satisfiable_equals_enumeration(f in arb_filter()) {
        prop_assert_eq!(sat::satisfiable(&f), enum_sat(&f), "filter: {:?}", f);
    }

    /// `implies` ≡ enumeration over the shared universe.
    #[test]
    fn implies_equals_enumeration(a in arb_filter(), b in arb_filter()) {
        prop_assert_eq!(
            sat::implies(&a, &b),
            enum_implies(&a, &b),
            "a: {:?}\nb: {:?}", a, b
        );
    }

    /// `equivalent` ≡ bidirectional enumeration.
    #[test]
    fn equivalent_equals_enumeration(a in arb_filter(), b in arb_filter()) {
        prop_assert_eq!(
            sat::equivalent(&a, &b),
            enum_implies(&a, &b) && enum_implies(&b, &a),
            "a: {:?}\nb: {:?}", a, b
        );
    }

    /// A witness model satisfies its query and every theory axiom.
    #[test]
    fn witness_models_are_genuine(f in arb_filter()) {
        if let Some(model) = sat::witness(&f) {
            let atoms = sat::atoms_of(&[&f]);
            let assign = assignment_of(&model, &atoms);
            prop_assert!(sat::model_consistent(&atoms, &assign), "filter: {:?}", f);
            prop_assert!(sat::eval_under(&f, &atoms, &assign), "filter: {:?}", f);
        }
    }

    /// A counterexample to `a ⇒ b` satisfies `a`, falsifies `b`, and is
    /// theory-consistent.
    #[test]
    fn counterexamples_are_genuine(a in arb_filter(), b in arb_filter()) {
        if let Some(model) = sat::counterexample(&a, &b) {
            let atoms = sat::atoms_of(&[&a, &b]);
            let assign = assignment_of(&model, &atoms);
            prop_assert!(sat::model_consistent(&atoms, &assign));
            prop_assert!(sat::eval_under(&a, &atoms, &assign), "a: {:?}", a);
            prop_assert!(!sat::eval_under(&b, &atoms, &assign), "b: {:?}", b);
        }
    }

    /// Unsat is sound for enforcement: a provably unsatisfiable filter
    /// denies every point insert, on both the compiled DNF path and the
    /// AST interpreter — and the two runtime paths agree regardless.
    #[test]
    fn unsat_filters_deny_point_calls(
        f in arb_filter(),
        addr in prop_oneof![
            (0u32..512).prop_map(|lo| 0x0a00_0000 | lo), // inside 10.0.0.0/23
            Just(0x0a01_0005u32),                        // inside 10.1.0.0/24
            Just(0xc0a8_0001u32),                        // far outside
        ],
        prio in 0u16..200,
    ) {
        let call = point_insert(addr, prio);
        let engine = PermissionEngine::compile(&PermissionSet::from_permissions([
            Permission::limited(PermissionToken::InsertFlow, f.clone()),
        ]));
        let dnf_allows = matches!(engine.check_dnf(&call, &NullContext), Decision::Allowed);
        let interp_allows = matches!(engine.check_interpreted(&call, &NullContext), Decision::Allowed);
        prop_assert_eq!(dnf_allows, interp_allows, "engine paths disagree on {:?}", f);
        if !sat::satisfiable(&f) {
            // The raw interpreter evaluates stubs to false — exactly one of
            // the assignments the solver quantified over — so unsat means
            // deny on every path, gated or not.
            prop_assert!(!dnf_allows, "unsat filter allowed a call: {:?}", f);
            prop_assert!(!eval(&f, &call, &NullContext), "unsat filter evaluated true: {:?}", f);
        }
    }
}
