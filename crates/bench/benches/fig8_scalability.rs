//! Criterion bench for Figure 8: SDNShield latency scalability with the
//! number of concurrent apps and per-app complexity, plus the deputy-pool
//! ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdnshield_bench::scenario::{caller_scenario, traffic, Arch};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_apps");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for apps in [1usize, 4, 16, 32] {
        for arch in Arch::ALL {
            let controller = caller_scenario(arch, apps, 4, 4);
            let mut gen = traffic(4, 21);
            for _ in 0..10 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), apps), &apps, |b, _| {
                b.iter(|| {
                    let (dpid, pi) = gen.next_packet_in();
                    controller.deliver_packet_in(dpid, pi);
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

fn bench_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_complexity");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for calls in [1usize, 8, 64] {
        for arch in Arch::ALL {
            let controller = caller_scenario(arch, 1, calls, 4);
            let mut gen = traffic(4, 22);
            for _ in 0..10 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), calls), &calls, |b, _| {
                b.iter(|| {
                    let (dpid, pi) = gen.next_packet_in();
                    controller.deliver_packet_in(dpid, pi);
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

fn bench_deputies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_deputy_ablation");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for deputies in [1usize, 2, 4, 8] {
        let controller = caller_scenario(Arch::Shielded, 8, 8, deputies);
        let mut gen = traffic(4, 23);
        for _ in 0..10 {
            let (dpid, pi) = gen.next_packet_in();
            controller.deliver_packet_in(dpid, pi);
        }
        controller.quiesce();
        group.bench_with_input(BenchmarkId::new("deputies", deputies), &deputies, |b, _| {
            b.iter(|| {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            })
        });
        controller.shutdown();
    }
    group.finish();
}

fn bench_deputy_throughput(c: &mut Criterion) {
    // The multi-deputy path end-to-end: pipelined (nowait) delivery keeps
    // every deputy busy, unlike the blocking per-event loops above which
    // serialize at the driver.
    let mut group = c.benchmark_group("fig8_deputy_throughput");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    const BATCH: usize = 256;
    for deputies in [1usize, 2, 4, 8] {
        let controller = caller_scenario(Arch::Shielded, 4, 4, deputies);
        let mut gen = traffic(4, 24);
        for _ in 0..32 {
            let (dpid, pi) = gen.next_packet_in();
            controller.deliver_packet_in_nowait(dpid, pi);
        }
        controller.quiesce();
        group.bench_with_input(
            BenchmarkId::new("pipelined", deputies),
            &deputies,
            |b, _| {
                b.iter(|| {
                    for _ in 0..BATCH {
                        let (dpid, pi) = gen.next_packet_in();
                        controller.deliver_packet_in_nowait(dpid, pi);
                    }
                    controller.quiesce();
                })
            },
        );
        controller.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_apps,
    bench_complexity,
    bench_deputies,
    bench_deputy_throughput
);
criterion_main!(benches);
