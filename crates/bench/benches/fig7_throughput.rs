//! Criterion bench for Figure 7: control-plane throughput under the
//! CBench-style L2 pressure test, baseline vs SDNShield.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sdnshield_bench::scenario::{l2_scenario_opts, l2_scenario_tuned, traffic, Arch};

const BATCH: usize = 512;
const SWITCH_COUNTS: [usize; 3] = [4, 16, 64];

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_throughput");
    group
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(BATCH as u64));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = l2_scenario_opts(arch, n, 4, true);
            let mut gen = traffic(n, 5);
            for _ in 0..200 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    for (dpid, pi) in gen.batch(BATCH) {
                        controller.deliver_packet_in_nowait(dpid, pi);
                    }
                    controller.quiesce();
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

/// Vectored delivery (PR 5): the same pressure test driven through
/// `deliver_packet_in_batch` — one enqueue and one wake-up per app per
/// batch — against the per-event pure-deputy path on an otherwise
/// identical shielded controller.
fn bench_fig7_vectored(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vectored");
    group
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(BATCH as u64));
    for (label, fast_path, vectored) in [
        ("pure_deputy", false, false),
        ("fast_lane_vectored", true, true),
    ] {
        for n in SWITCH_COUNTS {
            let controller = l2_scenario_tuned(Arch::Shielded, n, 4, true, fast_path);
            let mut gen = traffic(n, 5);
            for _ in 0..200 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    if vectored {
                        controller.deliver_packet_in_batch(gen.batch(BATCH));
                    } else {
                        for (dpid, pi) in gen.batch(BATCH) {
                            controller.deliver_packet_in_nowait(dpid, pi);
                        }
                    }
                    controller.quiesce();
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7, bench_fig7_vectored);
criterion_main!(benches);
