//! Criterion bench for Figure 7: control-plane throughput under the
//! CBench-style L2 pressure test, baseline vs SDNShield.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sdnshield_bench::scenario::{l2_scenario_opts, traffic, Arch};

const BATCH: usize = 512;
const SWITCH_COUNTS: [usize; 3] = [4, 16, 64];

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_throughput");
    group
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(BATCH as u64));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = l2_scenario_opts(arch, n, 4, true);
            let mut gen = traffic(n, 5);
            for _ in 0..200 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    for (dpid, pi) in gen.batch(BATCH) {
                        controller.deliver_packet_in_nowait(dpid, pi);
                    }
                    controller.quiesce();
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
