//! Criterion bench for the permission-check fast path (DESIGN.md §5): the
//! four-tier ablation (interpreted AST → short-circuit DNF → compiled plan
//! → plan + epoch-keyed decision cache) on both the paper's uniform trace
//! and the repeated-call workload the cache is built for, plus batched vs
//! singleton flow-mod submission at the kernel boundary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sdnshield_bench::fig5::{
    gen_call_only_manifest, gen_manifest, gen_repeated_trace, gen_trace, Complexity, TraceCall,
    GRANTED_NET,
};
use sdnshield_controller::api::FlowOp;
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::engine::PermissionEngine;
use sdnshield_core::eval::NullContext;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

const BATCH: usize = 64;

fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fastpath");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    // Tier ablation on the uniform trace, across manifest complexity.
    for complexity in Complexity::ALL {
        let engine = PermissionEngine::compile(&gen_manifest(complexity, 42));
        let trace = gen_trace(TraceCall::InsertFlow, 4096, 50, 7);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("uniform/interpreted", complexity.label()),
            &trace,
            |b, t| {
                b.iter(|| {
                    t.iter()
                        .filter(|c| engine.check_interpreted(c, &NullContext).is_allowed())
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uniform/dnf", complexity.label()),
            &trace,
            |b, t| {
                b.iter(|| {
                    t.iter()
                        .filter(|c| engine.check_dnf(c, &NullContext).is_allowed())
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uniform/plan", complexity.label()),
            &trace,
            |b, t| {
                b.iter(|| {
                    t.iter()
                        .filter(|c| engine.check_uncached(c, &NullContext).is_allowed())
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uniform/plan_cache", complexity.label()),
            &trace,
            |b, t| {
                b.iter(|| {
                    t.iter()
                        .filter(|c| engine.check(c, &NullContext).is_allowed())
                        .count()
                })
            },
        );
    }

    // The repeated-call workload on a call-only manifest: cache hits
    // dominate, so plan_cache should clear the other tiers.
    let engine = PermissionEngine::compile(&gen_call_only_manifest(Complexity::Medium, 42));
    let repeated = gen_repeated_trace(TraceCall::InsertFlow, BATCH, 4096, 50, 7);
    group.throughput(Throughput::Elements(repeated.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("repeated/dnf", "medium"),
        &repeated,
        |b, t| {
            b.iter(|| {
                t.iter()
                    .filter(|c| engine.check_dnf(c, &NullContext).is_allowed())
                    .count()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("repeated/plan", "medium"),
        &repeated,
        |b, t| {
            b.iter(|| {
                t.iter()
                    .filter(|c| engine.check_uncached(c, &NullContext).is_allowed())
                    .count()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("repeated/plan_cache", "medium"),
        &repeated,
        |b, t| {
            b.iter(|| {
                t.iter()
                    .filter(|c| engine.check(c, &NullContext).is_allowed())
                    .count()
            })
        },
    );
    group.finish();
}

/// Batched vs singleton flow-mod submission at the kernel boundary (the
/// deputy channel itself is exercised by `fig5_table`'s live-controller
/// section; here the kernel-level amortization — one engine fetch, one
/// tracker read guard, one audit record — is isolated).
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fastpath_batch");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    let kernel = Kernel::new(Network::new(builders::linear(3), 1024), true);
    let app = AppId(1);
    kernel
        .register_app(
            app,
            "bencher",
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        )
        .unwrap();
    let mods: Vec<FlowMod> = (0..BATCH)
        .map(|i| {
            FlowMod::add(
                FlowMatch::default()
                    .with_ip_dst(Ipv4(GRANTED_NET.0 | (i as u32 + 1)))
                    .with_tp_dst(80),
                Priority(100),
                ActionList::output(PortNo(1)),
            )
        })
        .collect();
    let ops: Vec<FlowOp> = mods
        .iter()
        .map(|fm| FlowOp {
            dpid: DatapathId(1),
            flow_mod: fm.clone(),
        })
        .collect();

    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function(BenchmarkId::new("singleton_x64", BATCH), |b| {
        b.iter(|| {
            for fm in &mods {
                let call = ApiCall::new(
                    app,
                    ApiCallKind::InsertFlow {
                        dpid: DatapathId(1),
                        flow_mod: fm.clone(),
                    },
                );
                let (result, _events) = kernel.execute(&call);
                result.expect("insert allowed");
            }
        })
    });
    group.bench_function(BenchmarkId::new("execute_batch", BATCH), |b| {
        b.iter(|| {
            let (result, _events) = kernel.execute_batch(app, &ops);
            result.expect("batch allowed");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tiers, bench_batch);
criterion_main!(benches);
