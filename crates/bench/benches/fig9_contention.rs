//! Criterion bench for Figure 9: mediated-call throughput under deputy
//! contention at 1/2/4/8 deputies, disjoint vs mixed per-switch workloads.
//! Companion to the `fig9_table` bin, which emits `BENCH_fig9.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sdnshield_bench::contention::{ContentionHarness, Workload};

const CALLS_PER_DEPUTY: usize = 1_000;

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_contention");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for workload in Workload::ALL {
        let harness = ContentionHarness::new();
        // Drive every switch to steady-state table size before measuring.
        harness.prime(workload);
        for deputies in [1usize, 2, 4, 8] {
            group.throughput(Throughput::Elements((deputies * CALLS_PER_DEPUTY) as u64));
            group.bench_with_input(
                BenchmarkId::new(workload.label(), deputies),
                &deputies,
                |b, &d| {
                    b.iter(|| harness.run_batch(d, CALLS_PER_DEPUTY, workload));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
