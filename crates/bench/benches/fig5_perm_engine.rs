//! Criterion bench for Figure 5: permission-engine check latency by
//! manifest complexity, call shape, and evaluation strategy (compiled DNF
//! vs interpreted AST — the DESIGN.md §5 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sdnshield_bench::fig5::{gen_manifest, gen_trace, Complexity, TraceCall};
use sdnshield_core::engine::PermissionEngine;
use sdnshield_core::eval::NullContext;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_perm_engine");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for shape in [TraceCall::InsertFlow, TraceCall::ReadStatistics] {
        let shape_name = match shape {
            TraceCall::InsertFlow => "insert_flow",
            TraceCall::ReadStatistics => "read_statistics",
        };
        for complexity in Complexity::ALL {
            if shape == TraceCall::ReadStatistics && complexity == Complexity::Small {
                continue; // the small manifest has no read_statistics token
            }
            let engine = PermissionEngine::compile(&gen_manifest(complexity, 42));
            let trace = gen_trace(shape, 4096, 50, 7);
            group.throughput(Throughput::Elements(trace.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{shape_name}/compiled"), complexity.label()),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        trace
                            .iter()
                            .filter(|call| engine.check(call, &NullContext).is_allowed())
                            .count()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{shape_name}/interpreted"), complexity.label()),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        trace
                            .iter()
                            .filter(|call| {
                                engine.check_interpreted(call, &NullContext).is_allowed()
                            })
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
