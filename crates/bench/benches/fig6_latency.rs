//! Criterion bench for Figure 6: end-to-end control-plane latency per
//! packet-in (L2 scenario) / per topology event (ALTO scenario), baseline vs
//! SDNShield, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdnshield_bench::scenario::{alto_scenario, l2_scenario_opts, traffic, Arch};

const SWITCH_COUNTS: [usize; 3] = [4, 16, 64];

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_l2_latency");
    group
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = l2_scenario_opts(arch, n, 4, true);
            let mut gen = traffic(n, 99);
            for _ in 0..50 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    let (dpid, pi) = gen.next_packet_in();
                    controller.deliver_packet_in(dpid, pi);
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

fn bench_alto(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_alto_latency");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = alto_scenario(arch, n, 4);
            controller.deliver_topology_change("warm");
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    controller.deliver_topology_change("tick");
                    controller.quiesce();
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_l2, bench_alto);
criterion_main!(benches);
