//! Criterion bench for Figure 6: end-to-end control-plane latency per
//! packet-in (L2 scenario) / per topology event (ALTO scenario), baseline vs
//! SDNShield, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdnshield_bench::scenario::{alto_scenario, l2_scenario_opts, traffic, Arch};
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::isolation::{ControllerConfig, ShieldedController};
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::messages::StatsRequest;

const SWITCH_COUNTS: [usize; 3] = [4, 16, 64];

fn bench_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_l2_latency");
    group
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = l2_scenario_opts(arch, n, 4, true);
            let mut gen = traffic(n, 99);
            for _ in 0..50 {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            }
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    let (dpid, pi) = gen.next_packet_in();
                    controller.deliver_packet_in(dpid, pi);
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

fn bench_alto(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_alto_latency");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for arch in Arch::ALL {
        for n in SWITCH_COUNTS {
            let controller = alto_scenario(arch, n, 4);
            controller.deliver_topology_change("warm");
            controller.quiesce();
            group.bench_with_input(BenchmarkId::new(arch.label(), n), &n, |b, _| {
                b.iter(|| {
                    controller.deliver_topology_change("tick");
                    controller.quiesce();
                })
            });
            controller.shutdown();
        }
    }
    group.finish();
}

/// An app issuing a burst of call-only statistics reads per packet-in —
/// the workload the PR 5 read fast path serves without a channel crossing.
struct ReadHeavy {
    reads_per_event: usize,
}

impl App for ReadHeavy {
    fn name(&self) -> &str {
        "read-heavy"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, .. } = event else {
            return;
        };
        for _ in 0..self.reads_per_event {
            let _ = ctx.read_statistics(*dpid, StatsRequest::Table);
        }
    }
}

/// Mediated read latency with the fast lane on vs off (PR 5): each
/// packet-in triggers 16 call-only `read_statistics` calls, served on the
/// app thread (fast lane) or round-tripped through the deputy.
fn bench_read_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_read_latency");
    group
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, fast_path) in [("pure_deputy", false), ("fast_lane", true)] {
        let controller = ShieldedController::new_with_config(
            Network::new(builders::linear(1), 4096),
            ControllerConfig {
                read_fast_path: fast_path,
                ..ControllerConfig::default()
            },
        );
        controller
            .register(
                Box::new(ReadHeavy {
                    reads_per_event: 16,
                }),
                &parse_manifest("PERM pkt_in_event\nPERM read_statistics").expect("manifest"),
            )
            .expect("register");
        let mut gen = traffic(1, 7);
        for _ in 0..50 {
            let (dpid, pi) = gen.next_packet_in();
            controller.deliver_packet_in(dpid, pi);
        }
        controller.quiesce();
        group.bench_function(BenchmarkId::new(label, "16reads"), |b| {
            b.iter(|| {
                let (dpid, pi) = gen.next_packet_in();
                controller.deliver_packet_in(dpid, pi);
            })
        });
        controller.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_l2, bench_alto, bench_read_fast_path);
criterion_main!(benches);
