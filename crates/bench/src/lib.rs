//! Shared workload generators and measurement helpers for the benchmark
//! harness that regenerates the SDNShield paper's figures (DESIGN.md §4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod fig5;
pub mod scenario;
pub mod stats;
