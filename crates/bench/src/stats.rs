//! Simple latency summarization (median + percentile error bars, matching
//! the paper's Figure 6 presentation).

use std::time::Duration;

/// Summary statistics over a latency sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Median.
    pub median: Duration,
    /// 10th percentile.
    pub p10: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl Summary {
    /// Summarizes a sample (empty samples yield zeros).
    pub fn of(mut samples: Vec<Duration>) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                median: Duration::ZERO,
                p10: Duration::ZERO,
                p90: Duration::ZERO,
                mean: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |p: f64| samples[((n as f64 - 1.0) * p).round() as usize];
        let total: Duration = samples.iter().sum();
        Summary {
            n,
            median: pct(0.5),
            p10: pct(0.1),
            p90: pct(0.9),
            mean: total / n as u32,
        }
    }

    /// Formats a duration as microseconds with two decimals.
    pub fn us(d: Duration) -> String {
        format!("{:.2}", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = Summary::of(samples);
        assert_eq!(s.n, 100);
        // Index (99 * 0.5).round() = 50 → the 51st sample.
        assert_eq!(s.median, Duration::from_micros(51));
        assert_eq!(s.p10, Duration::from_micros(11));
        assert_eq!(s.p90, Duration::from_micros(90));
        assert_eq!(
            s.mean,
            Duration::from_micros(50) + Duration::from_nanos(500)
        );
    }

    #[test]
    fn empty_sample_is_zero() {
        let s = Summary::of(Vec::new());
        assert_eq!(s.n, 0);
        assert_eq!(s.median, Duration::ZERO);
    }

    #[test]
    fn formats_microseconds() {
        assert_eq!(Summary::us(Duration::from_micros(1500)), "1500.00");
        assert_eq!(Summary::us(Duration::from_nanos(2500)), "2.50");
    }
}
