//! End-to-end scenario setups for Figures 6–8: the L2-learning and ALTO-TE
//! workloads on both the SDNShield and the monolithic controller.

use sdnshield_apps::alto::{AltoService, TrafficEngApp, ALTO_MANIFEST, TE_MANIFEST};
use sdnshield_apps::l2_learning::{L2LearningSwitch, L2_MANIFEST};
use sdnshield_controller::isolation::{ControllerConfig, ShieldedController};
use sdnshield_controller::monolithic::MonolithicController;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_netsim::trafficgen::{PacketKind, TrafficGen};
use sdnshield_openflow::messages::PacketIn;
use sdnshield_openflow::types::{DatapathId, Ipv4};

/// Which controller architecture a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Unmodified baseline (the paper's "original OpenDaylight").
    Baseline,
    /// SDNShield with permission checking and thread isolation.
    Shielded,
}

impl Arch {
    /// Both architectures, baseline first.
    pub const ALL: [Arch; 2] = [Arch::Baseline, Arch::Shielded];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Arch::Baseline => "baseline",
            Arch::Shielded => "sdnshield",
        }
    }
}

/// A controller of either architecture with a uniform driving surface.
pub enum AnyController {
    /// The baseline.
    Baseline(MonolithicController),
    /// SDNShield.
    Shielded(ShieldedController),
}

impl AnyController {
    /// Delivers one packet-in and waits until subscribed apps processed it.
    pub fn deliver_packet_in(&self, dpid: DatapathId, pi: PacketIn) {
        match self {
            AnyController::Baseline(c) => c.deliver_packet_in(dpid, pi),
            AnyController::Shielded(c) => c.deliver_packet_in(dpid, pi),
        }
    }

    /// Pipelined delivery: does not wait for processing (pressure tests).
    pub fn deliver_packet_in_nowait(&self, dpid: DatapathId, pi: PacketIn) {
        match self {
            AnyController::Baseline(c) => c.deliver_packet_in_nowait(dpid, pi),
            AnyController::Shielded(c) => c.deliver_packet_in_nowait(dpid, pi),
        }
    }

    /// Vectored delivery: the whole batch is enqueued with one wake-up per
    /// receiving app (shielded); the synchronous baseline just processes the
    /// batch in order. Pair with [`AnyController::quiesce`].
    pub fn deliver_packet_in_batch(&self, batch: Vec<(DatapathId, PacketIn)>) {
        match self {
            AnyController::Baseline(c) => {
                for (dpid, pi) in batch {
                    c.deliver_packet_in(dpid, pi);
                }
            }
            AnyController::Shielded(c) => c.deliver_packet_in_batch(batch),
        }
    }

    /// Fires a topology-change event (the ALTO chain trigger).
    pub fn deliver_topology_change(&self, description: &str) {
        match self {
            AnyController::Baseline(c) => c.deliver_topology_change(description),
            AnyController::Shielded(c) => c.deliver_topology_change(description),
        }
    }

    /// Waits for all cascaded work to drain.
    pub fn quiesce(&self) {
        if let AnyController::Shielded(c) = self {
            c.quiesce();
        }
        // The baseline is fully synchronous.
    }

    /// The kernel, for inspection.
    pub fn kernel(&self) -> std::sync::Arc<sdnshield_controller::kernel::Kernel> {
        match self {
            AnyController::Baseline(c) => c.kernel(),
            AnyController::Shielded(c) => c.kernel(),
        }
    }

    /// Stops threads (no-op for the baseline).
    pub fn shutdown(&self) {
        if let AnyController::Shielded(c) = self {
            c.shutdown();
        }
    }
}

/// Builds the L2-learning scenario: a linear network of `num_switches`
/// switches and the learning-switch app, ready to receive packet-ins.
///
/// CBench mode (`cbench = true`) absorbs packet-outs at the emulated
/// switches instead of walking them through the simulated data plane —
/// the measurement methodology of the paper's Figures 6–7, where the
/// generator's fake switches only count controller responses.
pub fn l2_scenario_opts(
    arch: Arch,
    num_switches: usize,
    deputies: usize,
    cbench: bool,
) -> AnyController {
    l2_scenario_tuned(arch, num_switches, deputies, cbench, true)
}

/// [`l2_scenario_opts`] with an explicit read-fast-path switch, so the
/// before/after comparison (pure deputy vs fast lane) runs on otherwise
/// identical controllers.
pub fn l2_scenario_tuned(
    arch: Arch,
    num_switches: usize,
    deputies: usize,
    cbench: bool,
    read_fast_path: bool,
) -> AnyController {
    let network = Network::new(builders::linear(num_switches), 16_384);
    let manifest = parse_manifest(L2_MANIFEST).expect("l2 manifest");
    let c = match arch {
        Arch::Baseline => {
            let c = MonolithicController::new(network);
            c.register(Box::new(L2LearningSwitch::new()), &manifest);
            AnyController::Baseline(c)
        }
        Arch::Shielded => {
            // The pressure tests pipeline thousands of packet-ins ahead of
            // the app; the default (overload-protection) queue bound would
            // shed events and quietly measure partial processing. Size the
            // queue for the whole batch so every delivered event is handled.
            let c = ShieldedController::new_with_config(
                network,
                ControllerConfig {
                    num_deputies: deputies,
                    app_queue_capacity: 16_384,
                    read_fast_path,
                    ..ControllerConfig::default()
                },
            );
            c.register(Box::new(L2LearningSwitch::new()), &manifest)
                .expect("register l2");
            AnyController::Shielded(c)
        }
    };
    c.kernel().set_absorb_packet_outs(cbench);
    c
}

/// [`l2_scenario_opts`] with the full data-plane walk (integration tests).
pub fn l2_scenario(arch: Arch, num_switches: usize, deputies: usize) -> AnyController {
    l2_scenario_opts(arch, num_switches, deputies, false)
}

/// Builds the ALTO-TE scenario: the cost service plus the TE app; each
/// topology-change event triggers the four-mediation chain of §IX-A.
pub fn alto_scenario(arch: Arch, num_switches: usize, deputies: usize) -> AnyController {
    let network = Network::new(builders::linear(num_switches), 16_384);
    let alto_manifest = parse_manifest(ALTO_MANIFEST).expect("alto manifest");
    let te_manifest = parse_manifest(TE_MANIFEST).expect("te manifest");
    let te = || {
        TrafficEngApp::new(
            Ipv4::new(10, 0, 0, 0),
            8,
            DatapathId(1),
            DatapathId(num_switches as u64),
        )
    };
    match arch {
        Arch::Baseline => {
            let c = MonolithicController::new(network);
            c.register(Box::new(AltoService::new()), &alto_manifest);
            c.register(Box::new(te()), &te_manifest);
            AnyController::Baseline(c)
        }
        Arch::Shielded => {
            let c = ShieldedController::new(network, deputies);
            c.register(Box::new(AltoService::new()), &alto_manifest)
                .expect("register alto");
            c.register(Box::new(te()), &te_manifest)
                .expect("register te");
            AnyController::Shielded(c)
        }
    }
}

/// A synthetic app issuing a fixed number of API calls per packet-in —
/// the "app complexity" knob of Figure 8 (complexity "measured by the API
/// calls issued by the app").
pub struct CallerApp {
    /// API calls issued per event.
    pub calls_per_event: usize,
    counter: u16,
}

impl CallerApp {
    /// An app issuing `calls_per_event` flow insertions per packet-in.
    pub fn new(calls_per_event: usize) -> Self {
        CallerApp {
            calls_per_event,
            counter: 0,
        }
    }
}

impl sdnshield_controller::app::App for CallerApp {
    fn name(&self) -> &str {
        "caller"
    }

    fn on_start(&mut self, ctx: &sdnshield_controller::app::AppCtx) {
        ctx.subscribe(sdnshield_core::api::EventKind::PacketIn)
            .expect("subscribe");
    }

    fn on_event(
        &mut self,
        ctx: &sdnshield_controller::app::AppCtx,
        event: &sdnshield_controller::events::Event,
    ) {
        use sdnshield_openflow::actions::ActionList;
        use sdnshield_openflow::flow_match::FlowMatch;
        use sdnshield_openflow::messages::FlowMod;
        use sdnshield_openflow::types::{PortNo, Priority};
        let sdnshield_controller::events::Event::PacketIn { dpid, .. } = event else {
            return;
        };
        for _ in 0..self.calls_per_event {
            self.counter = self.counter.wrapping_add(1);
            let fm = FlowMod::add(
                FlowMatch::default().with_tp_dst(1 + (self.counter % 1024)),
                Priority(100),
                ActionList::output(PortNo(1)),
            );
            let _ = ctx.insert_flow(*dpid, fm);
        }
    }
}

/// The Figure-8 scalability scenario: `num_apps` concurrent [`CallerApp`]s,
/// each issuing `calls_per_event` calls per packet-in.
pub fn caller_scenario(
    arch: Arch,
    num_apps: usize,
    calls_per_event: usize,
    deputies: usize,
) -> AnyController {
    let network = Network::new(builders::linear(4), 1_000_000);
    let manifest = parse_manifest(
        "PERM pkt_in_event
PERM insert_flow",
    )
    .expect("manifest");
    match arch {
        Arch::Baseline => {
            let c = MonolithicController::new(network);
            for _ in 0..num_apps {
                c.register(Box::new(CallerApp::new(calls_per_event)), &manifest);
            }
            AnyController::Baseline(c)
        }
        Arch::Shielded => {
            let c = ShieldedController::new(network, deputies);
            for _ in 0..num_apps {
                c.register(Box::new(CallerApp::new(calls_per_event)), &manifest)
                    .expect("register caller");
            }
            AnyController::Shielded(c)
        }
    }
}

/// A CBench-style generator sized to a scenario.
pub fn traffic(num_switches: usize, seed: u64) -> TrafficGen {
    TrafficGen::new(num_switches as u64, 16, PacketKind::Arp, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_scenario_processes_traffic_on_both_archs() {
        for arch in Arch::ALL {
            let c = l2_scenario(arch, 4, 4);
            let mut gen = traffic(4, 1);
            for _ in 0..10 {
                let (dpid, pi) = gen.next_packet_in();
                c.deliver_packet_in(dpid, pi);
            }
            c.quiesce();
            // The learning switch flooded unknown destinations: audit shows
            // activity (shielded) / flow tables untouched but no crash.
            c.shutdown();
        }
    }

    #[test]
    fn alto_scenario_chain_runs_on_both_archs() {
        for arch in Arch::ALL {
            let c = alto_scenario(arch, 4, 4);
            c.deliver_topology_change("bench tick");
            c.quiesce();
            let rules: usize = (1..=4).map(|d| c.kernel().flow_count(DatapathId(d))).sum();
            assert!(
                rules >= 2,
                "{}: TE rules installed, got {rules}",
                arch.label()
            );
            c.shutdown();
        }
    }
}
