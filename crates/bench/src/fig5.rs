//! Workload generator for Figure 5 (permission-engine micro-benchmark).
//!
//! Paper §IX-B2: "We measure the permission engine throughput with three
//! manually generated permission manifests, which represent small, medium
//! and large permission complexity. Three manifests respectively contain 1,
//! 5 and 15 permission tokens, and each token is associated with 10-20
//! filters. The app behavior trace is a sequence of flow insertions and
//! statistics requests that guarantees 5% of the API calls violate the
//! permissions."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::filter::{
    ActionConstraint, FilterExpr, Ownership, SingletonFilter, StatsLevel,
};
use sdnshield_core::perm::{Permission, PermissionSet};
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, StatsRequest};
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// Manifest complexity tiers from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    /// 1 token.
    Small,
    /// 5 tokens.
    Medium,
    /// 15 tokens.
    Large,
}

impl Complexity {
    /// All tiers in presentation order.
    pub const ALL: [Complexity; 3] = [Complexity::Small, Complexity::Medium, Complexity::Large];

    /// Number of permission tokens in the manifest.
    pub fn tokens(self) -> usize {
        match self {
            Complexity::Small => 1,
            Complexity::Medium => 5,
            Complexity::Large => 15,
        }
    }

    /// Singleton filters attached to each token — graded within the paper's
    /// 10–20 band so the per-check work grows with complexity (the paper's
    /// Figure-5 trend).
    pub fn filters_per_token(self) -> usize {
        match self {
            Complexity::Small => 10,
            Complexity::Medium => 15,
            Complexity::Large => 20,
        }
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Complexity::Small => "small",
            Complexity::Medium => "medium",
            Complexity::Large => "large",
        }
    }
}

/// The subnet granted to `insert_flow` / `read_flow_table` predicates: calls
/// inside pass, outside violate.
pub const GRANTED_NET: Ipv4 = Ipv4::new(10, 13, 0, 0);
/// A subnet guaranteed outside every granted predicate.
pub const FORBIDDEN_NET: Ipv4 = Ipv4::new(172, 31, 0, 0);

/// Generates a manifest of the given complexity: `tokens()` permission
/// tokens, each carrying 10–20 singleton filters composed with OR-of-ANDs.
///
/// The filter structure is built so that the *workload* of
/// [`gen_trace`] passes: every token's filter includes a disjunct covering
/// [`GRANTED_NET`] traffic at priority ≤ 400 with forwarding actions.
pub fn gen_manifest(complexity: Complexity, seed: u64) -> PermissionSet {
    gen_manifest_with(complexity, seed, false)
}

/// Like [`gen_manifest`], but every filter atom is *call-only* (no
/// ownership/quota/provenance atoms), so the compiled plans are pure
/// functions of the call shape and the engine's decision cache engages.
/// This is the manifest the repeated-call cache benchmark uses.
pub fn gen_call_only_manifest(complexity: Complexity, seed: u64) -> PermissionSet {
    gen_manifest_with(complexity, seed, true)
}

fn gen_manifest_with(complexity: Complexity, seed: u64, call_only: bool) -> PermissionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PermissionSet::new();
    // Tokens in a fixed order: flow-table tokens first so Small keeps
    // insert_flow (the hot call in the trace).
    let token_order = [
        PermissionToken::InsertFlow,
        PermissionToken::ReadStatistics,
        PermissionToken::ReadFlowTable,
        PermissionToken::DeleteFlow,
        PermissionToken::SendPktOut,
        PermissionToken::VisibleTopology,
        PermissionToken::FlowEvent,
        PermissionToken::PktInEvent,
        PermissionToken::TopologyEvent,
        PermissionToken::ErrorEvent,
        PermissionToken::ReadPayload,
        PermissionToken::ModifyTopology,
        PermissionToken::HostNetwork,
        PermissionToken::FileSystem,
        PermissionToken::ProcessRuntime,
    ];
    for token in token_order.into_iter().take(complexity.tokens()) {
        let filter = gen_filter(token, complexity.filters_per_token(), call_only, &mut rng);
        set.insert(Permission::limited(token, filter));
    }
    set
}

/// Builds one token's filter: a disjunction of conjunctive clauses totaling
/// 10–20 singleton filters, always including the workload-passing clause.
fn gen_filter(
    token: PermissionToken,
    total: usize,
    call_only: bool,
    rng: &mut StdRng,
) -> FilterExpr {
    // The guaranteed-pass clause: granted subnet + generous bounds.
    let pass_clause = FilterExpr::atom(SingletonFilter::Pred(FlowMatch {
        ip_dst: Some(MaskedIpv4::prefix(GRANTED_NET, 16)),
        ..FlowMatch::default()
    }))
    .and(FilterExpr::atom(SingletonFilter::MaxPriority(400)))
    .and(FilterExpr::atom(SingletonFilter::Action(
        ActionConstraint::Forward,
    )))
    .and(FilterExpr::atom(SingletonFilter::Stats(
        StatsLevel::FlowLevel,
    )));
    let mut used = 4usize;
    let mut expr: Option<FilterExpr> = None;
    while used < total {
        // Fixed 2-atom clauses (plus a possible 1-atom remainder) keep the
        // clause count — the dominant evaluation cost — a deterministic
        // function of the tier, so the Figure-5 trend is not washed out by
        // random clause structure.
        let clause_len = 2.min(total - used);
        // Every clause leads with an ip_dst predicate disjoint from both the
        // granted and the forbidden subnets, so the 5% violating calls fail
        // every disjunct (the point of the workload).
        let mut clause = FilterExpr::atom(subnet_atom(rng));
        for _ in 1..clause_len {
            clause = clause.and(FilterExpr::atom(random_atom(token, call_only, rng)));
        }
        used += clause_len;
        expr = Some(match expr {
            Some(e) => e.or(clause),
            None => clause,
        });
    }
    // The workload-passing clause goes LAST: the evaluator must consider the
    // other disjuncts first, so per-check cost scales with the manifest's
    // filter count (an arbitrary manifest gives no such placement luck).
    match expr {
        Some(e) => e.or(pass_clause),
        None => pass_clause,
    }
}

/// An ip_dst predicate on 10.{20..200}/16..24 — never 10.13/16, never
/// 172.31/16.
fn subnet_atom(rng: &mut StdRng) -> SingletonFilter {
    SingletonFilter::Pred(FlowMatch {
        ip_dst: Some(MaskedIpv4::prefix(
            Ipv4::new(10, rng.gen_range(20..200), 0, 0),
            rng.gen_range(16..=24),
        )),
        ..FlowMatch::default()
    })
}

fn random_atom(_token: PermissionToken, call_only: bool, rng: &mut StdRng) -> SingletonFilter {
    match rng.gen_range(0..5) {
        0 => subnet_atom(rng),
        1 => SingletonFilter::MaxPriority(rng.gen_range(50..300)),
        2 => SingletonFilter::MinPriority(rng.gen_range(1..50)),
        // Ownership reads the CheckContext, which makes the whole token's
        // plan uncacheable; the call-only variant substitutes a priority cap.
        3 if !call_only => SingletonFilter::Ownership(Ownership::OwnFlows),
        3 => SingletonFilter::MaxPriority(rng.gen_range(300..400)),
        _ => SingletonFilter::Pred(FlowMatch::default().with_tp_dst(rng.gen_range(1..1024))),
    }
}

/// The two call shapes of the paper's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCall {
    /// `insert_flow`.
    InsertFlow,
    /// `read_statistics`.
    ReadStatistics,
}

/// Generates the paper's behavior trace: `n` calls of the given shape with
/// `violation_permille`/1000 of them violating the permissions (the paper
/// uses 5% = 50‰).
pub fn gen_trace(shape: TraceCall, n: usize, violation_permille: u32, seed: u64) -> Vec<ApiCall> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let violate = rng.gen_range(0..1000) < violation_permille;
            let net = if violate { FORBIDDEN_NET } else { GRANTED_NET };
            let dst = Ipv4(net.0 | rng.gen_range(1u32..65_000));
            match shape {
                TraceCall::InsertFlow => ApiCall::new(
                    AppId(1),
                    ApiCallKind::InsertFlow {
                        dpid: DatapathId(rng.gen_range(1..16)),
                        flow_mod: FlowMod::add(
                            FlowMatch::default()
                                .with_ip_dst(dst)
                                .with_tp_dst(rng.gen_range(1..1024)),
                            Priority(rng.gen_range(10..350)),
                            ActionList::output(PortNo(rng.gen_range(1..8))),
                        ),
                    },
                ),
                TraceCall::ReadStatistics => {
                    // Violations for stats use a port-level escalation: the
                    // manifests allow flow-level, so violations query an
                    // app lacking the token instead — modelled by an
                    // out-of-subnet flow query under `Aggregate`.
                    let request = if violate {
                        StatsRequest::Aggregate(
                            FlowMatch::default().with_ip_dst_prefix(FORBIDDEN_NET, 16),
                        )
                    } else {
                        StatsRequest::Flow(FlowMatch::default().with_ip_dst_prefix(GRANTED_NET, 24))
                    };
                    ApiCall::new(
                        AppId(1),
                        ApiCallKind::ReadStatistics {
                            dpid: DatapathId(rng.gen_range(1..16)),
                            request,
                        },
                    )
                }
            }
        })
        .collect()
}

/// Generates a *repeated-call* workload: a pool of `distinct` unique calls
/// (same generation rules and violation rate as [`gen_trace`]) sampled
/// uniformly `n` times. Real reactive apps re-issue the same handful of
/// flow-mod shapes per traffic class; this is the workload where the
/// engine's decision cache pays off.
pub fn gen_repeated_trace(
    shape: TraceCall,
    distinct: usize,
    n: usize,
    violation_permille: u32,
    seed: u64,
) -> Vec<ApiCall> {
    let pool = gen_trace(shape, distinct, violation_permille, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_core::engine::PermissionEngine;
    use sdnshield_core::eval::NullContext;

    #[test]
    fn manifest_sizes_match_paper() {
        for (c, want) in [
            (Complexity::Small, 1),
            (Complexity::Medium, 5),
            (Complexity::Large, 15),
        ] {
            let m = gen_manifest(c, 42);
            assert_eq!(m.len(), want);
            for (_, filter) in m.iter() {
                let atoms = filter.atoms().len();
                assert!((10..=20).contains(&atoms), "got {atoms} filters");
            }
        }
    }

    #[test]
    fn violation_rate_close_to_requested() {
        let manifest = gen_manifest(Complexity::Medium, 42);
        let engine = PermissionEngine::compile(&manifest);
        let trace = gen_trace(TraceCall::InsertFlow, 10_000, 50, 7);
        let denied = trace
            .iter()
            .filter(|c| !engine.check(c, &NullContext).is_allowed())
            .count();
        let rate = denied as f64 / trace.len() as f64;
        assert!(
            (0.03..=0.08).contains(&rate),
            "expected ~5% violations, got {rate:.3}"
        );
    }

    #[test]
    fn stats_trace_behaves() {
        let manifest = gen_manifest(Complexity::Small, 42);
        // Small manifest has only insert_flow: all stats calls denied
        // (missing token) — the bench uses Medium+ for the stats series.
        let engine = PermissionEngine::compile(&manifest);
        let trace = gen_trace(TraceCall::ReadStatistics, 100, 50, 7);
        assert!(trace
            .iter()
            .all(|c| !engine.check(c, &NullContext).is_allowed()));
        let medium = PermissionEngine::compile(&gen_manifest(Complexity::Medium, 42));
        let allowed = trace
            .iter()
            .filter(|c| medium.check(c, &NullContext).is_allowed())
            .count();
        assert!(allowed > 80, "most stats calls pass on medium: {allowed}");
    }

    #[test]
    fn call_only_manifest_plans_are_cacheable() {
        for c in Complexity::ALL {
            let engine = PermissionEngine::compile(&gen_call_only_manifest(c, 42));
            assert!(
                engine.plan_cacheable(PermissionToken::InsertFlow),
                "{c:?} call-only manifest must compile to a cacheable insert_flow plan"
            );
            // All tiers still agree on the standard trace.
            let trace = gen_trace(TraceCall::InsertFlow, 500, 50, 7);
            for call in &trace {
                assert_eq!(
                    engine.check(call, &NullContext),
                    engine.check_interpreted(call, &NullContext)
                );
            }
        }
    }

    #[test]
    fn repeated_trace_cycles_distinct_pool() {
        let trace = gen_repeated_trace(TraceCall::InsertFlow, 16, 2_000, 50, 3);
        assert_eq!(trace.len(), 2_000);
        let pool = gen_trace(TraceCall::InsertFlow, 16, 50, 3);
        assert!(trace.iter().all(|c| pool.contains(c)));
        // Deterministic for a given seed.
        assert_eq!(
            trace,
            gen_repeated_trace(TraceCall::InsertFlow, 16, 2_000, 50, 3)
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            gen_manifest(Complexity::Large, 1),
            gen_manifest(Complexity::Large, 1)
        );
        assert_eq!(
            gen_trace(TraceCall::InsertFlow, 100, 50, 3),
            gen_trace(TraceCall::InsertFlow, 100, 50, 3)
        );
    }
}
