//! The Figure-9 contention workload: worker threads playing Kernel Service
//! Deputies drive [`Kernel::execute`] directly, measuring how mediated-call
//! throughput scales with deputy count now that the kernel has no global
//! lock (paper §IX-B2: checks are stateless per call and scale out across
//! deputy threads).
//!
//! Two workload shapes:
//!
//! * [`Workload::Disjoint`] — each deputy hammers its own switch with flow
//!   insertions: the best case for per-datapath sharding (threads share only
//!   the ownership tracker and the segmented audit log).
//! * [`Workload::Mixed`] — the realistic shape: a mix of inserts, deletes,
//!   flow-table reads and statistics reads, mostly on the deputy's own
//!   switch with periodic calls against a shared switch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand, StatsRequest};
use sdnshield_openflow::types::{DatapathId, PortNo, Priority};

/// The shape of per-deputy traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Pure flow insertions, one private switch per deputy.
    Disjoint,
    /// Mixed inserts/deletes/reads, mostly private with a shared hot switch.
    Mixed,
}

impl Workload {
    /// Both workloads, disjoint first.
    pub const ALL: [Workload; 2] = [Workload::Disjoint, Workload::Mixed];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Disjoint => "disjoint",
            Workload::Mixed => "mixed",
        }
    }

    /// Fraction of calls that are reads (flow-table or statistics).
    pub fn read_fraction(self) -> f64 {
        match self {
            Workload::Disjoint => 0.0,
            // 2 flow-table reads + 1 stats read per 8 calls.
            Workload::Mixed => 3.0 / 8.0,
        }
    }

    /// The op mix, human-readable, as issued by [`ContentionHarness`].
    pub fn mix(self) -> &'static str {
        match self {
            Workload::Disjoint => "8 insert_flow per 8 calls",
            Workload::Mixed => {
                "4 insert_flow / 2 read_flow_table / 1 read_statistics / 1 delete_strict per 8 calls"
            }
        }
    }
}

/// A kernel plus per-deputy registered apps, reusable across measurement
/// batches.
pub struct ContentionHarness {
    kernel: Arc<Kernel>,
    apps: Vec<AppId>,
}

/// The maximum deputy count the harness provisions switches and apps for.
pub const MAX_DEPUTIES: usize = 8;

impl ContentionHarness {
    /// Builds a kernel over `MAX_DEPUTIES` + 1 switches (one private switch
    /// per deputy plus the shared hot switch) and registers one app per
    /// deputy with flow-write and read permissions.
    pub fn new() -> Self {
        let kernel = Arc::new(Kernel::new(
            Network::new(builders::linear(MAX_DEPUTIES + 1), 1_000_000),
            true,
        ));
        let manifest = parse_manifest(
            "PERM insert_flow\n\
             PERM delete_flow\n\
             PERM read_flow_table\n\
             PERM read_statistics",
        )
        .expect("contention manifest");
        let apps: Vec<AppId> = (1..=MAX_DEPUTIES as u16).map(AppId).collect();
        for app in &apps {
            kernel
                .register_app(*app, &format!("deputy-{}", app.0), &manifest)
                .expect("register deputy app");
        }
        ContentionHarness { kernel, apps }
    }

    /// The kernel under test.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Runs one batch: `deputies` threads issue `calls_per_deputy` mediated
    /// calls each, returning the wall-clock time for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `deputies` exceeds [`MAX_DEPUTIES`] or any call is denied
    /// (the apps are registered with every needed permission).
    pub fn run_batch(
        &self,
        deputies: usize,
        calls_per_deputy: usize,
        workload: Workload,
    ) -> Duration {
        assert!(deputies <= MAX_DEPUTIES, "harness sized for 8 deputies");
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..deputies {
                let kernel = Arc::clone(&self.kernel);
                let app = self.apps[t];
                s.spawn(move || {
                    // Private switch t+2; switch 1 is the shared hot spot.
                    let own = DatapathId(t as u64 + 2);
                    for i in 0..calls_per_deputy {
                        let call = build_call(app, own, i, workload);
                        let (res, _) = kernel.execute(&call);
                        res.expect("fully-permissioned call succeeds");
                    }
                });
            }
        });
        start.elapsed()
    }

    /// Calls per second for one batch.
    pub fn throughput(&self, deputies: usize, calls_per_deputy: usize, workload: Workload) -> f64 {
        let elapsed = self.run_batch(deputies, calls_per_deputy, workload);
        (deputies * calls_per_deputy) as f64 / elapsed.as_secs_f64()
    }
}

impl Default for ContentionHarness {
    fn default() -> Self {
        Self::new()
    }
}

fn insert_mod(tp_dst: u16) -> FlowMod {
    FlowMod::add(
        FlowMatch::default().with_tp_dst(tp_dst),
        Priority(100),
        ActionList::output(PortNo(1)),
    )
}

/// The i-th call a deputy issues under a workload. Match identities cycle
/// through a bounded space so long runs replace entries instead of filling
/// the table.
fn build_call(app: AppId, own: DatapathId, i: usize, workload: Workload) -> ApiCall {
    let tp = (i % 4096) as u16 + 1;
    let kind = match workload {
        Workload::Disjoint => ApiCallKind::InsertFlow {
            dpid: own,
            flow_mod: insert_mod(tp),
        },
        Workload::Mixed => {
            // Every 8th call targets the shared switch; the op mix is
            // 4 inserts : 2 reads : 1 stats : 1 delete.
            let dpid = if i % 8 == 7 { DatapathId(1) } else { own };
            match i % 8 {
                0 | 2 | 4 | 7 => ApiCallKind::InsertFlow {
                    dpid,
                    flow_mod: insert_mod(tp),
                },
                1 | 5 => ApiCallKind::ReadFlowTable {
                    dpid,
                    query: FlowMatch::any(),
                },
                3 => ApiCallKind::ReadStatistics {
                    dpid,
                    request: StatsRequest::Table,
                },
                _ => {
                    let mut fm = insert_mod(tp);
                    fm.command = FlowModCommand::DeleteStrict;
                    ApiCallKind::DeleteFlow { dpid, flow_mod: fm }
                }
            }
        }
    };
    ApiCall::new(app, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_run_denial_free_on_both_workloads() {
        let h = ContentionHarness::new();
        for workload in Workload::ALL {
            for deputies in [1, 2] {
                let elapsed = h.run_batch(deputies, 64, workload);
                assert!(elapsed.as_nanos() > 0);
            }
        }
        // All calls audited as non-denied.
        let records = h.kernel().audit_records_since(0);
        assert!(records
            .iter()
            .all(|r| r.outcome != sdnshield_controller::audit::AuditOutcome::Denied));
    }
}
