//! The Figure-9 contention workload: worker threads playing Kernel Service
//! Deputies drive [`Kernel::execute`] directly, measuring how mediated-call
//! throughput scales with deputy count now that the kernel has no global
//! lock (paper §IX-B2: checks are stateless per call and scale out across
//! deputy threads).
//!
//! Two workload shapes:
//!
//! * [`Workload::Disjoint`] — each deputy hammers its own switch with flow
//!   insertions: the best case for per-datapath sharding (threads share only
//!   the ownership tracker and the segmented audit log).
//! * [`Workload::Mixed`] — the realistic shape: a mix of inserts, deletes,
//!   flow-table reads and statistics reads, mostly on the deputy's own
//!   switch with periodic calls against a shared switch.
//!
//! And two harness shapes:
//!
//! * [`ContentionHarness::new`] — the direct, unjournaled kernel: every
//!   call (reads included) goes through `Kernel::execute`. This is the
//!   historical fig9 series and deliberately bypasses the production write
//!   pipeline.
//! * [`ContentionHarness::new_group_commit`] — the production shape: the
//!   kernel journals every mutation, so writes run the flat-combining
//!   group-commit submit path (DESIGN.md §16), and reads are served on the
//!   calling thread via the lock-free RCU fast lane with a mediated-path
//!   fallback — exactly what `ShieldedController` gives real apps.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sdnshield_controller::journal::Journal;
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand, StatsRequest};
use sdnshield_openflow::types::{DatapathId, PortNo, Priority};

/// The shape of per-deputy traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Pure flow insertions, one private switch per deputy.
    Disjoint,
    /// Mixed inserts/deletes/reads, mostly private with a shared hot switch.
    Mixed,
}

impl Workload {
    /// Both workloads, disjoint first.
    pub const ALL: [Workload; 2] = [Workload::Disjoint, Workload::Mixed];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Disjoint => "disjoint",
            Workload::Mixed => "mixed",
        }
    }

    /// Fraction of calls that are reads (flow-table or statistics).
    pub fn read_fraction(self) -> f64 {
        match self {
            Workload::Disjoint => 0.0,
            // 2 flow-table reads + 1 stats read per 8 calls.
            Workload::Mixed => 3.0 / 8.0,
        }
    }

    /// The op mix, human-readable, as issued by [`ContentionHarness`].
    pub fn mix(self) -> &'static str {
        match self {
            Workload::Disjoint => "8 insert_flow per 8 calls",
            Workload::Mixed => {
                "4 insert_flow / 2 read_flow_table / 1 read_statistics / 1 delete_strict per 8 calls"
            }
        }
    }
}

/// A kernel plus per-deputy registered apps, reusable across measurement
/// batches.
pub struct ContentionHarness {
    kernel: Arc<Kernel>,
    apps: Vec<AppId>,
    /// `Some` in group-commit mode: the journal the kernel batch-appends
    /// to, compacted between batches so long runs stay bounded.
    journal: Option<Arc<Journal>>,
    /// Serve read calls on the issuing thread via the RCU fast lane
    /// (production `read_fast_path` shape) instead of `Kernel::execute`.
    fast_reads: bool,
}

/// The maximum deputy count the harness provisions switches and apps for.
pub const MAX_DEPUTIES: usize = 8;

/// The per-switch match-identity cycle: call `i` targets tp-dst
/// `i % TP_SPACE + 1` (salted per app on the shared switch), so
/// steady-state tables hold a few hundred entries. Deliberately small: the
/// combined working set of all eight deputies' tables must fit in cache,
/// otherwise the speedup column conflates cache-capacity thrash (each
/// timesliced deputy evicting its peers' tables) with the mediation-path
/// contention under test.
pub const TP_SPACE: usize = 256;

impl ContentionHarness {
    /// Builds a kernel over `MAX_DEPUTIES` + 1 switches (one private switch
    /// per deputy plus the shared hot switch) and registers one app per
    /// deputy with flow-write and read permissions.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// The production write-pipeline variant: the kernel journals every
    /// mutation — so submitters run the flat-combining group commit with
    /// batched journal appends — and reads are served on the calling
    /// thread via [`Kernel::try_serve_read`] (falling back to the mediated
    /// path on epoch races), mirroring the `ShieldedController` defaults.
    /// Single-writer switch lanes are enabled when the host has the ≥ 4
    /// cores they need to pay off; below that the combiner applies batches
    /// inline, same as the production default.
    pub fn new_group_commit() -> Self {
        Self::build(true)
    }

    fn build(group_commit: bool) -> Self {
        let kernel = Arc::new(Kernel::new(
            Network::new(builders::linear(MAX_DEPUTIES + 1), 1_000_000),
            true,
        ));
        let journal = group_commit.then(|| {
            let journal = Arc::new(Journal::in_memory());
            kernel.attach_journal(Arc::clone(&journal));
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cores >= 4 {
                kernel.set_switch_lanes(4, false);
            }
            journal
        });
        let manifest = parse_manifest(
            "PERM insert_flow\n\
             PERM delete_flow\n\
             PERM read_flow_table\n\
             PERM read_statistics",
        )
        .expect("contention manifest");
        let apps: Vec<AppId> = (1..=MAX_DEPUTIES as u16).map(AppId).collect();
        for app in &apps {
            kernel
                .register_app(*app, &format!("deputy-{}", app.0), &manifest)
                .expect("register deputy app");
        }
        ContentionHarness {
            kernel,
            apps,
            journal,
            fast_reads: group_commit,
        }
    }

    /// Drives every switch to the workload's steady-state table *before*
    /// measurement, so per-call cost does not depend on how many calls a
    /// row happens to issue per deputy:
    ///
    /// * private switches get exactly the set of match identities the
    ///   workload's inserts can (re)produce — minus anything its deletes
    ///   target — so from call 0 every insert is a replacement, every
    ///   strict delete is a no-op, and every `FlowMatch::any()` read scans
    ///   the same number of entries;
    /// * the shared hot switch (mixed only) gets every app's full salted
    ///   tp range, for all [`MAX_DEPUTIES`] apps — not just the ones a
    ///   given row will run — so its table size is deputy-count-independent
    ///   and shared inserts are same-owner replacements.
    ///
    /// Without this, rows with more (or longer-running) deputies read and
    /// probe larger tables, and the speedup column measures table growth
    /// rather than mediation overhead.
    pub fn prime(&self, workload: Workload) {
        let exec = |app: AppId, dpid: DatapathId, tp: u16| {
            let call = ApiCall::new(
                app,
                ApiCallKind::InsertFlow {
                    dpid,
                    flow_mod: insert_mod(tp),
                },
            );
            self.kernel
                .execute(&call)
                .0
                .expect("steady-state priming insert");
        };
        for (t, app) in self.apps.iter().enumerate() {
            let own = DatapathId(t as u64 + 2);
            for tp in 1..=TP_SPACE as u16 {
                match workload {
                    // Disjoint inserts every tp in the cycle.
                    Workload::Disjoint => exec(*app, own, tp),
                    // Mixed: tp = i % TP_SPACE + 1; insert arms are i % 8
                    // in {0, 2, 4} (tp = 1, 3, 5 mod 8) and the strict-
                    // delete arm is i % 8 == 6 (tp = 7 mod 8). Install
                    // everything except the deleted residue so the table
                    // never drifts.
                    Workload::Mixed => {
                        if tp % 8 != 7 {
                            exec(*app, own, tp);
                        }
                    }
                }
            }
        }
        if workload == Workload::Mixed {
            for app in &self.apps {
                for k in 1..=(TP_SPACE / 8) as u16 {
                    exec(*app, DatapathId(1), k * 8 + (app.0 - 1) * TP_SPACE as u16);
                }
            }
        }
        if let Some(journal) = &self.journal {
            journal.compact(journal.last_seq());
        }
    }

    /// The kernel under test.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Runs one batch: `deputies` threads issue `calls_per_deputy` mediated
    /// calls each, returning the wall-clock time for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `deputies` exceeds [`MAX_DEPUTIES`] or any call is denied
    /// (the apps are registered with every needed permission).
    pub fn run_batch(
        &self,
        deputies: usize,
        calls_per_deputy: usize,
        workload: Workload,
    ) -> Duration {
        assert!(deputies <= MAX_DEPUTIES, "harness sized for 8 deputies");
        let fast_reads = self.fast_reads;
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..deputies {
                let kernel = Arc::clone(&self.kernel);
                let app = self.apps[t];
                s.spawn(move || {
                    // Private switch t+2; switch 1 is the shared hot spot.
                    let own = DatapathId(t as u64 + 2);
                    for i in 0..calls_per_deputy {
                        let call = build_call(app, own, i, workload);
                        if fast_reads {
                            if let Some(res) = kernel.try_serve_read(&call) {
                                res.expect("fully-permissioned read succeeds");
                                continue;
                            }
                        }
                        let (res, _) = kernel.execute(&call);
                        res.expect("fully-permissioned call succeeds");
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        // Journal maintenance stays outside the timed window: compaction is
        // a between-batch chore, not part of the mediation cost under test.
        if let Some(journal) = &self.journal {
            journal.compact(journal.last_seq());
        }
        elapsed
    }

    /// Calls per second for one batch.
    pub fn throughput(&self, deputies: usize, calls_per_deputy: usize, workload: Workload) -> f64 {
        let elapsed = self.run_batch(deputies, calls_per_deputy, workload);
        (deputies * calls_per_deputy) as f64 / elapsed.as_secs_f64()
    }
}

impl Default for ContentionHarness {
    fn default() -> Self {
        Self::new()
    }
}

fn insert_mod(tp_dst: u16) -> FlowMod {
    FlowMod::add(
        FlowMatch::default().with_tp_dst(tp_dst),
        Priority(100),
        ActionList::output(PortNo(1)),
    )
}

/// The i-th call a deputy issues under a workload. Match identities cycle
/// through a bounded space so long runs replace entries instead of filling
/// the table.
fn build_call(app: AppId, own: DatapathId, i: usize, workload: Workload) -> ApiCall {
    let tp = (i % TP_SPACE) as u16 + 1;
    let kind = match workload {
        Workload::Disjoint => ApiCallKind::InsertFlow {
            dpid: own,
            flow_mod: insert_mod(tp),
        },
        Workload::Mixed => {
            // Every 8th call targets the shared switch; the op mix is
            // 4 inserts : 2 reads : 1 stats : 1 delete. Shared-switch
            // inserts salt the match identity per app (as the contention
            // integration tests do) so deputies contend on the shard lock
            // rather than silently replacing each other's entries — cross-
            // app replacement churn would scale with deputy count and
            // masquerade as mediation overhead.
            let shared = i % 8 == 7;
            let dpid = if shared { DatapathId(1) } else { own };
            let tp = if shared {
                (i % TP_SPACE) as u16 + 1 + (app.0 - 1) * TP_SPACE as u16
            } else {
                tp
            };
            match i % 8 {
                0 | 2 | 4 | 7 => ApiCallKind::InsertFlow {
                    dpid,
                    flow_mod: insert_mod(tp),
                },
                1 | 5 => ApiCallKind::ReadFlowTable {
                    dpid,
                    query: FlowMatch::any(),
                },
                3 => ApiCallKind::ReadStatistics {
                    dpid,
                    request: StatsRequest::Table,
                },
                _ => {
                    let mut fm = insert_mod(tp);
                    fm.command = FlowModCommand::DeleteStrict;
                    ApiCallKind::DeleteFlow { dpid, flow_mod: fm }
                }
            }
        }
    };
    ApiCall::new(app, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_run_denial_free_on_both_workloads() {
        let h = ContentionHarness::new();
        for workload in Workload::ALL {
            h.prime(workload);
            for deputies in [1, 2] {
                let elapsed = h.run_batch(deputies, 64, workload);
                assert!(elapsed.as_nanos() > 0);
            }
        }
        // All calls audited as non-denied.
        let records = h.kernel().audit_records_since(0);
        assert!(records
            .iter()
            .all(|r| r.outcome != sdnshield_controller::audit::AuditOutcome::Denied));
    }

    #[test]
    fn group_commit_batches_run_denial_free_and_journal_stays_bounded() {
        let h = ContentionHarness::new_group_commit();
        h.prime(Workload::Mixed);
        for deputies in [1, 4] {
            let elapsed = h.run_batch(deputies, 64, Workload::Mixed);
            assert!(elapsed.as_nanos() > 0);
        }
        // Mutations really routed through the flat-combining submit path.
        let stats = h.kernel().combiner_stats();
        assert!(stats.submitted > 0, "writes go through the combiner");
        // Between-batch compaction keeps the in-memory journal bounded.
        assert_eq!(h.journal.as_ref().unwrap().len(), 0);
        let records = h.kernel().audit_records_since(0);
        assert!(records
            .iter()
            .all(|r| r.outcome != sdnshield_controller::audit::AuditOutcome::Denied));
    }
}
