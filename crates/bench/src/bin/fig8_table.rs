//! Figure 8: SDNShield's latency-overhead scalability with (a) the number of
//! concurrent apps and (b) per-app complexity (API calls per event) — plus
//! the deputy-pool-size ablation (DESIGN.md §5).
//!
//! The paper's claim: "the latency overhead of SDNShield increases linearly
//! with the number of concurrent apps and the complexity of apps".
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig8_table`

use std::time::Instant;

use sdnshield_bench::scenario::{caller_scenario, traffic, Arch};
use sdnshield_bench::stats::Summary;

const REPS: usize = 100;
const DEPUTIES: usize = 4;

fn measure(arch: Arch, apps: usize, calls: usize, deputies: usize) -> f64 {
    let c = caller_scenario(arch, apps, calls, deputies);
    let mut gen = traffic(4, 21);
    for _ in 0..10 {
        let (dpid, pi) = gen.next_packet_in();
        c.deliver_packet_in(dpid, pi);
    }
    c.quiesce();
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let (dpid, pi) = gen.next_packet_in();
        let t = Instant::now();
        c.deliver_packet_in(dpid, pi);
        samples.push(t.elapsed());
    }
    c.shutdown();
    Summary::of(samples).median.as_secs_f64() * 1e6
}

/// End-to-end pipelined throughput (events/sec) at a deputy count: packet-ins
/// are delivered without waiting (CBench-style pressure), so deputies drain
/// the call stream concurrently — the multi-deputy path the blocking
/// per-event latency loop above cannot exercise.
fn throughput(deputies: usize, events: usize) -> f64 {
    let c = caller_scenario(Arch::Shielded, 4, 4, deputies);
    let mut gen = traffic(4, 31);
    for _ in 0..32 {
        let (dpid, pi) = gen.next_packet_in();
        c.deliver_packet_in_nowait(dpid, pi);
    }
    c.quiesce();
    let t = Instant::now();
    for _ in 0..events {
        let (dpid, pi) = gen.next_packet_in();
        c.deliver_packet_in_nowait(dpid, pi);
    }
    c.quiesce();
    let elapsed = t.elapsed().as_secs_f64();
    c.shutdown();
    events as f64 / elapsed
}

fn main() {
    println!("Figure 8 — latency-overhead scalability (median over {REPS} events, µs)\n");

    println!("(a) varying concurrent apps (4 calls/event each)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "apps", "baseline µs", "sdnshield µs", "overhead µs", "per-app µs"
    );
    let mut prev_overhead = 0.0;
    for apps in [1usize, 2, 4, 8, 16, 32] {
        let base = measure(Arch::Baseline, apps, 4, DEPUTIES);
        let shielded = measure(Arch::Shielded, apps, 4, DEPUTIES);
        let overhead = shielded - base;
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>14.1} {:>14.2}",
            apps,
            base,
            shielded,
            overhead,
            overhead / apps as f64
        );
        prev_overhead = overhead;
    }
    let _ = prev_overhead;

    println!("\n(b) varying app complexity (1 app, N calls/event)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "calls", "baseline µs", "sdnshield µs", "overhead µs", "per-call µs"
    );
    for calls in [1usize, 2, 4, 8, 16, 32, 64] {
        let base = measure(Arch::Baseline, 1, calls, DEPUTIES);
        let shielded = measure(Arch::Shielded, 1, calls, DEPUTIES);
        let overhead = shielded - base;
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>14.1} {:>14.2}",
            calls,
            base,
            shielded,
            overhead,
            overhead / calls as f64
        );
    }

    println!("\n(c) ablation: deputy-pool size (8 apps, 8 calls/event)");
    println!("{:<10} {:>14}", "deputies", "sdnshield µs");
    for deputies in [1usize, 2, 4, 8] {
        let shielded = measure(Arch::Shielded, 8, 8, deputies);
        println!("{:<10} {:>14.1}", deputies, shielded);
    }

    println!("\n(d) end-to-end pipelined throughput vs deputies (4 apps, 4 calls/event)");
    println!("{:<10} {:>14} {:>12}", "deputies", "events/sec", "vs 1");
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut base = 0.0;
    for deputies in [1usize, 2, 4, 8] {
        let eps = throughput(deputies, 2_000);
        if deputies == 1 {
            base = eps;
        }
        println!("{:<10} {:>14.0} {:>11.2}x", deputies, eps, eps / base);
    }
    println!("host parallelism: {parallelism} hardware threads");

    println!(
        "\npaper reference: overhead grows linearly in both dimensions, so\n\
         SDNShield \"is highly scalable even if the number of concurrent apps\n\
         and the complexity of individual apps grow\" (Fig 8); post-sharding,\n\
         section (d) shows throughput rising with deputies on multi-core hosts\n\
         (asserted >=1.5x at 4 deputies by the tier-2 contention test)."
    );
}
