//! Figure 9: mediated-call throughput vs deputy count on the decomposed
//! (shard-locked) kernel — the paper's §IX-B2 claim that stateless
//! permission checks "scale out across deputy threads", measurable now that
//! the single global kernel lock is gone.
//!
//! Emits a machine-readable `BENCH_fig9.json` next to the table so later
//! PRs have a throughput baseline to compare against.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig9_table`
//! (`--fast` shrinks the batches for CI smoke runs).

use std::fmt::Write as _;
use std::fs;

use sdnshield_bench::contention::{ContentionHarness, Workload};

const DEPUTIES: [usize; 4] = [1, 2, 4, 8];

fn measure(calls_per_deputy: usize, reps: usize) -> Vec<(Workload, Vec<(usize, f64)>)> {
    let mut out = Vec::new();
    for workload in Workload::ALL {
        let harness = ContentionHarness::new();
        harness.run_batch(2, calls_per_deputy.min(512), workload); // warmup
        let mut rows = Vec::new();
        for &deputies in &DEPUTIES {
            // Best of `reps` batches: contention benches are noisy and the
            // max is the least-perturbed observation.
            let best = (0..reps)
                .map(|_| harness.throughput(deputies, calls_per_deputy, workload))
                .fold(f64::MIN, f64::max);
            rows.push((deputies, best));
        }
        out.push((workload, rows));
    }
    out
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
fn to_json(results: &[(Workload, Vec<(usize, f64)>)], calls_per_deputy: usize) -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig9_contention\",\n");
    s.push_str("  \"unit\": \"calls_per_sec\",\n");
    let _ = writeln!(s, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(s, "  \"calls_per_deputy\": {calls_per_deputy},");
    s.push_str("  \"workloads\": {\n");
    for (wi, (workload, rows)) in results.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", workload.label());
        for (ri, (deputies, cps)) in rows.iter().enumerate() {
            let comma = if ri + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(s, "      \"{deputies}\": {cps:.0}{comma}");
        }
        let comma = if wi + 1 < results.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"mixed_read_fraction\": {:.3},",
        Workload::Mixed.read_fraction()
    );
    let _ = writeln!(s, "  \"mixed_op_mix\": \"{}\",", Workload::Mixed.mix());
    let speedup4 = speedup_mixed(results, 4);
    let speedup8 = speedup_mixed(results, 8);
    let _ = writeln!(s, "  \"speedup_mixed_4_vs_1\": {speedup4:.2},");
    let _ = writeln!(s, "  \"speedup_mixed_8_vs_1\": {speedup8:.2}");
    s.push_str("}\n");
    s
}

/// Mixed-workload throughput ratio of `deputies` deputies over one.
fn speedup_mixed(results: &[(Workload, Vec<(usize, f64)>)], deputies: usize) -> f64 {
    let mixed = results
        .iter()
        .find(|(w, _)| *w == Workload::Mixed)
        .map(|(_, rows)| rows)
        .expect("mixed workload measured");
    let at = |d: usize| {
        mixed
            .iter()
            .find(|(dep, _)| *dep == d)
            .map(|(_, cps)| *cps)
            .expect("deputy count measured")
    };
    at(deputies) / at(1)
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (calls, reps) = if fast { (2_000, 2) } else { (20_000, 5) };

    println!("Figure 9 — kernel call throughput vs deputies (best of {reps} batches)\n");
    let results = measure(calls, reps);
    println!(
        "{:<10} {:>10} {:>16} {:>12}",
        "workload", "deputies", "calls/sec", "vs 1 deputy"
    );
    for (workload, rows) in &results {
        let base = rows[0].1;
        for (deputies, cps) in rows {
            println!(
                "{:<10} {:>10} {:>16.0} {:>11.2}x",
                workload.label(),
                deputies,
                cps,
                cps / base
            );
        }
    }

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup4 = speedup_mixed(&results, 4);
    let speedup8 = speedup_mixed(&results, 8);
    println!("\nhost parallelism: {parallelism} hardware threads");
    println!("mixed-workload mix: {}", Workload::Mixed.mix());
    println!("mixed-workload speedup 4 vs 1 deputies: {speedup4:.2}x");
    println!("mixed-workload speedup 8 vs 1 deputies: {speedup8:.2}x");
    if parallelism < 4 {
        println!(
            "note: scaling cannot materialize below 4 hardware threads; the\n\
             tier-2 tests `four_deputies_beat_one_by_1_5x` and\n\
             `mixed_workload_scales_1p5x_at_4_deputies` assert the >=1.5x\n\
             bar on capable hosts (cargo test -- --ignored)."
        );
    }

    let json = to_json(&results, calls);
    fs::write("BENCH_fig9.json", &json).expect("write BENCH_fig9.json");
    println!("\nwrote BENCH_fig9.json");
}
