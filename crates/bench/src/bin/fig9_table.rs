//! Figure 9: mediated-call throughput vs deputy count on the decomposed
//! (shard-locked) kernel — the paper's §IX-B2 claim that stateless
//! permission checks "scale out across deputy threads", measurable now that
//! the single global kernel lock is gone.
//!
//! Three series per deputy count:
//!
//! * `disjoint` — pure inserts, one private switch per deputy, direct
//!   unjournaled kernel (sharding best case).
//! * `mixed` — the realistic op mix on the *direct* unjournaled kernel.
//!   Historical series; it bypasses the production write pipeline, so its
//!   speedups are reported under `speedup_mixed_direct_*`.
//! * `group_commit` — the same mix on the production pipeline: journaled
//!   kernel (flat-combining group-commit submit, batched journal appends,
//!   DESIGN.md §16) with reads served via the lock-free RCU fast lane.
//!   This is the configuration real apps get, so the headline
//!   `speedup_mixed_*` keys are computed from this series.
//!
//! Emits a machine-readable `BENCH_fig9.json` next to the table so later
//! PRs have a throughput baseline to compare against.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig9_table`
//! (`--fast` shrinks the batches for CI smoke runs).

use std::fmt::Write as _;
use std::fs;

use sdnshield_bench::contention::{ContentionHarness, Workload};

const DEPUTIES: [usize; 4] = [1, 2, 4, 8];

/// One measured series: a label plus (deputies, calls/sec) rows.
struct Series {
    label: &'static str,
    rows: Vec<(usize, f64)>,
}

fn measure_series(
    label: &'static str,
    mk_harness: impl Fn() -> ContentionHarness,
    workload: Workload,
    calls_total: usize,
    reps: usize,
) -> Series {
    let mut rows = Vec::new();
    let mut last: Option<ContentionHarness> = None;
    for &deputies in &DEPUTIES {
        // Strong scaling: the TOTAL batch is constant and split across the
        // deputies, so every row commits (and journals) the same history
        // length between compactions. Fixing per-deputy work instead would
        // hand higher-deputy rows proportionally longer journal retention
        // windows — measurable as allocator pressure, not mediation cost.
        let calls_per_deputy = calls_total / deputies;
        // Best of `reps` batches: contention benches are noisy and the
        // max is the least-perturbed observation.
        //
        // Every (row, rep) measurement runs on a FRESH, steady-state-primed
        // harness, so every deputy's switches hold the same table sizes no
        // matter the deputy count or per-deputy call count. Reusing one
        // kernel across rows (as this table once did) silently handicaps
        // the later, higher-deputy rows: their reads scan tables the
        // earlier rows already populated, and the "speedup" column ends
        // up measuring table growth, not contention.
        let best = (0..reps)
            .map(|_| {
                let harness = mk_harness();
                // Steady-state tables from call 0 (see `prime` docs), then a
                // short warmup batch to page in code and thread stacks.
                harness.prime(workload);
                harness.run_batch(deputies, calls_per_deputy.min(512), workload);
                let cps = harness.throughput(deputies, calls_per_deputy, workload);
                last = Some(harness);
                cps
            })
            .fold(f64::MIN, f64::max);
        rows.push((deputies, best));
    }
    if let Some(harness) = last {
        let stats = harness.kernel().combiner_stats();
        if stats.submitted > 0 {
            println!(
                "{label}: last batch combiner — {} submits, {} drains (mean batch {:.2}, \
                 max {}), {} combined for peers, {} ring fallbacks",
                stats.submitted,
                stats.drains,
                stats.mean_batch(),
                stats.max_batch,
                stats.combined,
                stats.ring_fallbacks
            );
        }
    }
    Series { label, rows }
}

fn measure(calls_total: usize, reps: usize) -> Vec<Series> {
    let out = vec![
        measure_series(
            "disjoint",
            ContentionHarness::new,
            Workload::Disjoint,
            calls_total,
            reps,
        ),
        measure_series(
            "mixed",
            ContentionHarness::new,
            Workload::Mixed,
            calls_total,
            reps,
        ),
        measure_series(
            "group_commit",
            ContentionHarness::new_group_commit,
            Workload::Mixed,
            calls_total,
            reps,
        ),
    ];
    println!();
    out
}

/// Throughput ratio of `deputies` deputies over one, within one series.
fn speedup(series: &[Series], label: &str, deputies: usize) -> f64 {
    let rows = &series
        .iter()
        .find(|s| s.label == label)
        .expect("series measured")
        .rows;
    let at = |d: usize| {
        rows.iter()
            .find(|(dep, _)| *dep == d)
            .map(|(_, cps)| *cps)
            .expect("deputy count measured")
    };
    at(deputies) / at(1)
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
fn to_json(series: &[Series], calls_total: usize) -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig9_contention\",\n");
    s.push_str("  \"unit\": \"calls_per_sec\",\n");
    let _ = writeln!(s, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(s, "  \"calls_total_per_batch\": {calls_total},");
    s.push_str("  \"workloads\": {\n");
    for (wi, sr) in series.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", sr.label);
        for (ri, (deputies, cps)) in sr.rows.iter().enumerate() {
            let comma = if ri + 1 < sr.rows.len() { "," } else { "" };
            let _ = writeln!(s, "      \"{deputies}\": {cps:.0}{comma}");
        }
        let comma = if wi + 1 < series.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  },\n");
    s.push_str("  \"series_notes\": {\n");
    s.push_str("    \"disjoint\": \"direct unjournaled kernel, per-deputy private switches\",\n");
    s.push_str(
        "    \"mixed\": \"direct unjournaled kernel; bypasses the production write pipeline\",\n",
    );
    s.push_str(
        "    \"group_commit\": \"journaled kernel: flat-combining group-commit writes + RCU read fast lane (production path)\"\n",
    );
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"mixed_read_fraction\": {:.3},",
        Workload::Mixed.read_fraction()
    );
    let _ = writeln!(s, "  \"mixed_op_mix\": \"{}\",", Workload::Mixed.mix());
    let _ = writeln!(
        s,
        "  \"speedup_mixed_4_vs_1\": {:.2},",
        speedup(series, "group_commit", 4)
    );
    let _ = writeln!(
        s,
        "  \"speedup_mixed_8_vs_1\": {:.2},",
        speedup(series, "group_commit", 8)
    );
    let _ = writeln!(
        s,
        "  \"speedup_mixed_direct_4_vs_1\": {:.2},",
        speedup(series, "mixed", 4)
    );
    let _ = writeln!(
        s,
        "  \"speedup_mixed_direct_8_vs_1\": {:.2}",
        speedup(series, "mixed", 8)
    );
    s.push_str("}\n");
    s
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    // Total calls per measured batch, split across the row's deputies.
    // Sized so a batch runs for hundreds of milliseconds at the ~150k
    // calls/sec the cache-resident steady-state workload sustains —
    // shorter batches drown in scheduler noise.
    let (calls, reps) = if fast { (8_000, 2) } else { (200_000, 5) };

    println!("Figure 9 — kernel call throughput vs deputies (best of {reps} batches)\n");
    let series = measure(calls, reps);
    println!(
        "{:<14} {:>10} {:>16} {:>12}",
        "series", "deputies", "calls/sec", "vs 1 deputy"
    );
    for sr in &series {
        let base = sr.rows[0].1;
        for (deputies, cps) in &sr.rows {
            println!(
                "{:<14} {:>10} {:>16.0} {:>11.2}x",
                sr.label,
                deputies,
                cps,
                cps / base
            );
        }
    }

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nhost parallelism: {parallelism} hardware threads");
    println!("mixed-workload mix: {}", Workload::Mixed.mix());
    println!(
        "group-commit (production path) speedup 4 vs 1 deputies: {:.2}x",
        speedup(&series, "group_commit", 4)
    );
    println!(
        "group-commit (production path) speedup 8 vs 1 deputies: {:.2}x",
        speedup(&series, "group_commit", 8)
    );
    println!(
        "direct-kernel mixed speedup 4 vs 1 deputies: {:.2}x",
        speedup(&series, "mixed", 4)
    );
    if parallelism < 4 {
        println!(
            "note: scaling cannot materialize below 4 hardware threads; the\n\
             tier-2 tests `four_deputies_beat_one_by_1_5x` and\n\
             `mixed_workload_scales_1p5x_at_4_deputies` assert the >=1.5x\n\
             bar on capable hosts (cargo test -- --ignored)."
        );
    }

    let json = to_json(&series, calls);
    fs::write("BENCH_fig9.json", &json).expect("write BENCH_fig9.json");
    println!("\nwrote BENCH_fig9.json");
}
