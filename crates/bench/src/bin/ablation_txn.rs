//! Ablation (DESIGN.md §5): per-call checking vs transactional group commit
//! (paper §VI-B2). Measures installing N related rules as N individual
//! `insert_flow` calls (N deputy round trips) against one atomic transaction
//! (one round trip, N checks + applies inside).
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin ablation_txn`

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sdnshield_controller::api::FlowOp;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::isolation::ShieldedController;
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, PacketIn, PacketInReason};
use sdnshield_openflow::types::{BufferId, DatapathId, PortNo, Priority};

const REPS: usize = 200;

/// Issues a batch of rules per event, either call-by-call or as one
/// transaction, and records elapsed time per batch.
struct BatchApp {
    batch: usize,
    transactional: bool,
    samples: Arc<Mutex<Vec<std::time::Duration>>>,
    counter: u16,
}

impl App for BatchApp {
    fn name(&self) -> &str {
        "batcher"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, .. } = event else {
            return;
        };
        let ops: Vec<FlowOp> = (0..self.batch)
            .map(|_| {
                self.counter = self.counter.wrapping_add(1);
                FlowOp {
                    dpid: *dpid,
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_tp_dst(1 + (self.counter % 8192)),
                        Priority(100),
                        ActionList::output(PortNo(1)),
                    ),
                }
            })
            .collect();
        let t = Instant::now();
        if self.transactional {
            ctx.transaction(ops).expect("transaction");
        } else {
            for op in ops {
                ctx.insert_flow(op.dpid, op.flow_mod).expect("insert");
            }
        }
        self.samples.lock().push(t.elapsed());
    }
}

fn measure(batch: usize, transactional: bool) -> f64 {
    let c = ShieldedController::new(Network::new(builders::linear(2), 1_000_000), 4);
    let samples = Arc::new(Mutex::new(Vec::with_capacity(REPS)));
    c.register(
        Box::new(BatchApp {
            batch,
            transactional,
            samples: Arc::clone(&samples),
            counter: 0,
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").expect("manifest"),
    )
    .expect("register");
    for _ in 0..REPS {
        c.deliver_packet_in(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(1),
                reason: PacketInReason::NoMatch,
                payload: bytes::Bytes::new(),
            },
        );
    }
    c.shutdown();
    let samples = samples.lock();
    let total: std::time::Duration = samples.iter().sum();
    total.as_secs_f64() * 1e6 / samples.len() as f64
}

fn main() {
    println!("Ablation — per-call checking vs API-call transactions (µs per batch)\n");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "batch", "per-call (µs)", "txn (µs)", "speedup"
    );
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let per_call = measure(batch, false);
        let txn = measure(batch, true);
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>9.2}x",
            batch,
            per_call,
            txn,
            per_call / txn
        );
    }
    println!(
        "\ninterpretation: a transaction crosses the app→deputy channel once\n\
         for the whole batch, so its advantage grows with batch size; it also\n\
         provides the paper's atomicity (no partial rule state on denial)."
    );
}
