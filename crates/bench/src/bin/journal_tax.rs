//! Journal hot-path tax: mediated-call throughput with the command journal
//! detached vs attached (DESIGN.md §12).
//!
//! Every state-changing kernel call encodes a [`Command`] frame and appends
//! it to the journal while holding the commit lock, so journaling is a pure
//! per-call overhead on the mediation hot path. This bench measures that
//! overhead directly on `Kernel::execute` — no deputy channels, no app
//! threads, just the seam the journal sits on — for three configurations:
//!
//! * `off`     — no journal attached (the pre-§12 hot path),
//! * `memory`  — in-memory journal (the warm-standby feed),
//! * `file`    — file-backed journal (crash durability; includes the
//!   kernel-buffered write syscall).
//!
//! Two vantage points:
//!
//! * **kernel seam** — raw `Kernel::execute` back to back on one thread.
//!   This is a microbenchmark of the submit/append seam itself; the
//!   journal's fixed per-command cost (commit lock, command reification,
//!   record push) is a large *relative* number here because the baseline
//!   is only a few hundred nanoseconds. Reported, not gated.
//! * **mediated call** — `ctx.insert_flow` from an app through a real
//!   deputy channel, the path every API call in the shielded controller
//!   actually takes. This is the tax apps observe, and the number the
//!   <5% budget is about. Gated.
//!
//! Emits `BENCH_journal_tax.json`. With `--gate <pct>` the process exits
//! non-zero if the in-memory *mediated* tax exceeds `<pct>` percent — the
//! CI regression gate. The file-backed tax is reported but not gated: it
//! is dominated by the write syscall, which is the price of durability,
//! not of the journaling seam.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin journal_tax -- [--fast] [--gate 5]`

use std::fs;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::isolation::{ShieldedController, WarmStandby};
use sdnshield_controller::journal::Journal;
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, PortNo, Priority};

const APP: AppId = AppId(1);
/// Distinct rule shapes; the trace cycles so the flow table and ownership
/// tracker replace entries instead of growing.
const SHAPES: u16 = 64;

fn fresh_kernel() -> Kernel {
    let kernel = Kernel::new(Network::new(builders::linear(3), 4096), true);
    let manifest = parse_manifest("PERM insert_flow\nPERM delete_flow").expect("manifest");
    kernel
        .register_app(APP, "bench", &manifest)
        .expect("register");
    kernel
}

fn calls() -> Vec<ApiCall> {
    (0..SHAPES)
        .map(|i| {
            ApiCall::new(
                APP,
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1 + u64::from(i % 3)),
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_tp_dst(1 + i),
                        Priority(100),
                        ActionList::output(PortNo(1)),
                    ),
                },
            )
        })
        .collect()
}

/// Mediated inserts/second through `Kernel::execute` after a warm-up round.
///
/// Between rounds the journal is compacted through the applied cursor —
/// the retention policy of the deployed configuration, where a checkpoint
/// (snapshot or caught-up standby) releases the replayed prefix. Without
/// it the log grows without bound and the measurement degenerates into an
/// allocator benchmark.
fn throughput(kernel: &Kernel, reps: usize) -> f64 {
    let trace = calls();
    let mut ok = 0usize;
    for call in &trace {
        ok += kernel.execute(call).0.is_ok() as usize;
    }
    let start = Instant::now();
    for _ in 0..reps {
        for call in &trace {
            ok += kernel.execute(call).0.is_ok() as usize;
        }
        if let Some(journal) = kernel.journal() {
            journal.compact(kernel.last_applied());
        }
    }
    let elapsed = start.elapsed();
    assert!(ok > 0);
    (reps * trace.len()) as f64 / elapsed.as_secs_f64()
}

/// An app that times `reps * SHAPES` singleton inserts through its deputy
/// channel from `on_start`, reporting mediated inserts/second.
struct MediatedBench {
    reps: usize,
    out: Arc<Mutex<Option<f64>>>,
}

impl App for MediatedBench {
    fn name(&self) -> &str {
        "journal-tax"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let mods: Vec<(DatapathId, FlowMod)> = (0..SHAPES)
            .map(|i| {
                (
                    DatapathId(1 + u64::from(i % 3)),
                    FlowMod::add(
                        FlowMatch::default().with_tp_dst(1 + i),
                        Priority(100),
                        ActionList::output(PortNo(1)),
                    ),
                )
            })
            .collect();
        for (dpid, fm) in &mods {
            ctx.insert_flow(*dpid, fm.clone()).expect("warmup insert");
        }
        let start = Instant::now();
        for _ in 0..self.reps {
            for (dpid, fm) in &mods {
                ctx.insert_flow(*dpid, fm.clone()).expect("insert");
            }
        }
        let elapsed = start.elapsed();
        *self.out.lock().unwrap() = Some((self.reps * mods.len()) as f64 / elapsed.as_secs_f64());
    }
}

/// Mediated-path journal configuration.
#[derive(Clone, Copy, PartialEq)]
enum MediatedMode {
    /// No journal attached.
    Off,
    /// In-memory journal, compacted behind the primary's applied cursor by
    /// a checkpointer thread (the snapshot-retention policy). Isolates the
    /// append seam itself — this is the gated configuration.
    Memory,
    /// In-memory journal with a live warm standby tailing it and
    /// compaction behind the standby's cursor — the full §12 deployment
    /// loop, including the standby's share of journal-lock contention.
    MemoryStandby,
}

/// Mediated inserts/second through a live deputy channel. The log is kept
/// bounded by the mode's compaction policy, as it would be in production.
fn mediated_throughput(reps: usize, mode: MediatedMode) -> f64 {
    let controller = ShieldedController::new(Network::new(builders::linear(3), 4096), 2);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut checkpointer = None;
    if mode != MediatedMode::Off {
        let journal = Arc::new(Journal::in_memory());
        controller.attach_journal(Arc::clone(&journal));
        let standby = (mode == MediatedMode::MemoryStandby).then(|| {
            WarmStandby::new(
                Network::new(builders::linear(3), 4096),
                &controller.snapshot(),
                Arc::clone(&journal),
            )
        });
        let primary = controller.kernel();
        let stop_flag = Arc::clone(&stop);
        checkpointer = Some(std::thread::spawn(move || {
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                let through = match &standby {
                    Some(standby) => {
                        standby.catch_up();
                        standby.kernel().last_applied()
                    }
                    None => primary.last_applied(),
                };
                journal.compact(through);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }));
    }
    let out = Arc::new(Mutex::new(None));
    controller
        .register(
            Box::new(MediatedBench {
                reps,
                out: Arc::clone(&out),
            }),
            &parse_manifest("PERM insert_flow\nPERM delete_flow").expect("manifest"),
        )
        .expect("register bench app");
    let result = out.lock().unwrap().take().expect("bench app ran");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = checkpointer {
        handle.join().expect("checkpointer thread");
    }
    controller.shutdown();
    result
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--gate takes a percentage"));
    let (reps, med_reps) = if fast { (2_000, 200) } else { (20_000, 2_000) };

    println!("Journal hot-path tax");
    println!(
        "trace: {SHAPES} rule shapes x {reps} rounds (kernel seam), x {med_reps} (mediated)\n"
    );

    // Vantage 1 — the raw kernel seam (informational).
    let kernel = fresh_kernel();
    let off = throughput(&kernel, reps);

    let kernel = fresh_kernel();
    kernel.attach_journal(Arc::new(Journal::in_memory()));
    let memory = throughput(&kernel, reps);

    let mut path = std::env::temp_dir();
    path.push(format!(
        "sdnshield-journal-tax-{}.journal",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    let kernel = fresh_kernel();
    kernel.attach_journal(Arc::new(Journal::open(&path).expect("open journal")));
    let file = throughput(&kernel, reps);
    let _ = fs::remove_file(&path);

    let tax = |base: f64, with: f64| 100.0 * (base - with) / base;
    let (memory_tax, file_tax) = (tax(off, memory), tax(off, file));
    println!("kernel seam (Kernel::execute, single thread):");
    println!(
        "  {:<8} {:>12} {:>12} {:>9}",
        "journal", "inserts/s", "ns/insert", "tax(%)"
    );
    for (label, t, tx) in [
        ("off", off, 0.0),
        ("memory", memory, memory_tax),
        ("file", file, file_tax),
    ] {
        println!("  {label:<8} {t:>12.0} {:>12.0} {tx:>9.2}", 1e9 / t);
    }

    // Vantage 2 — the mediated call path apps actually take (gated).
    // Best of three runs each: the deputy path crosses threads, so single
    // runs carry scheduler noise well above the effect being measured.
    let best = |mode: MediatedMode| -> f64 {
        (0..3)
            .map(|_| mediated_throughput(med_reps, mode))
            .fold(0.0f64, f64::max)
    };
    let med_off = best(MediatedMode::Off);
    let med_memory = best(MediatedMode::Memory);
    let med_standby = best(MediatedMode::MemoryStandby);
    let med_tax = tax(med_off, med_memory);
    let standby_tax = tax(med_off, med_standby);
    println!("\nmediated call (ctx.insert_flow via deputy channel):");
    println!(
        "  {:<16} {:>12} {:>12} {:>9}",
        "journal", "inserts/s", "ns/insert", "tax(%)"
    );
    for (label, t, tx) in [
        ("off", med_off, 0.0),
        ("memory", med_memory, med_tax),
        ("memory+standby", med_standby, standby_tax),
    ] {
        println!("  {label:<16} {t:>12.0} {:>12.0} {tx:>9.2}", 1e9 / t);
    }

    let json = format!(
        "{{\n  \"bench\": \"journal_tax\",\n  \"fast\": {fast},\n  \
         \"kernel_seam\": {{\n    \
         \"inserts_per_sec\": {{\"off\": {off:.0}, \"memory\": {memory:.0}, \"file\": {file:.0}}},\n    \
         \"tax_pct\": {{\"memory\": {memory_tax:.2}, \"file\": {file_tax:.2}}}\n  }},\n  \
         \"mediated\": {{\n    \
         \"inserts_per_sec\": {{\"off\": {med_off:.0}, \"memory\": {med_memory:.0}, \
         \"memory_standby\": {med_standby:.0}}},\n    \
         \"tax_pct\": {{\"memory\": {med_tax:.2}, \"memory_standby\": {standby_tax:.2}}}\n  }}\n}}\n"
    );
    fs::write("BENCH_journal_tax.json", &json).expect("write BENCH_journal_tax.json");
    println!("\nwrote BENCH_journal_tax.json");

    if let Some(limit) = gate {
        if med_tax > limit {
            eprintln!(
                "GATE FAILED: mediated in-memory journal tax {med_tax:.2}% \
                 exceeds the {limit:.2}% budget"
            );
            std::process::exit(1);
        }
        println!("gate ok: mediated in-memory journal tax {med_tax:.2}% <= {limit:.2}%");
    }
}
