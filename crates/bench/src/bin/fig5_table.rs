//! Figure 5: permission-engine checking throughput on a single core, by
//! manifest complexity and API-call shape — now as a four-tier ablation of
//! the check fast path (DESIGN.md §5):
//!
//! * `interpreted` — AST interpretation (semantic baseline),
//! * `dnf`         — short-circuit DNF (the pre-plan compiled path),
//! * `plan`        — compiled check plan (static literals folded, terms
//!   and literals ordered cheapest-first),
//! * `plan+cache`  — plan plus the epoch-keyed decision cache.
//!
//! Also measures the repeated-call workload where the cache pays off, and
//! the batched deputy API (`submit_batch`) against singleton calls through
//! a real `ShieldedController` channel. Emits `BENCH_fig5.json`.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig5_table`
//! (`--fast` shrinks the traces for CI smoke runs).

use std::fmt::Write as _;
use std::fs;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sdnshield_bench::fig5::{
    gen_call_only_manifest, gen_manifest, gen_repeated_trace, gen_trace, Complexity, TraceCall,
    GRANTED_NET,
};
use sdnshield_controller::api::FlowOp;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::isolation::ShieldedController;
use sdnshield_core::api::ApiCall;
use sdnshield_core::engine::PermissionEngine;
use sdnshield_core::eval::NullContext;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

const TIERS: [&str; 4] = ["interpreted", "dnf", "plan", "plan_cache"];
const BATCH: usize = 64;
/// Distinct call shapes in the repeated workload — a reactive app's
/// per-traffic-class rule set.
const DISTINCT_SHAPES: usize = 64;

/// checks/sec for each tier, in `TIERS` order.
fn tier_throughputs(engine: &PermissionEngine, trace: &[ApiCall]) -> [f64; 4] {
    [
        throughput(trace, |c| {
            engine.check_interpreted(c, &NullContext).is_allowed()
        }),
        throughput(trace, |c| engine.check_dnf(c, &NullContext).is_allowed()),
        throughput(trace, |c| {
            engine.check_uncached(c, &NullContext).is_allowed()
        }),
        throughput(trace, |c| engine.check(c, &NullContext).is_allowed()),
    ]
}

/// Runs the trace once for warm-up, then measures checks/second.
fn throughput(trace: &[ApiCall], mut check: impl FnMut(&ApiCall) -> bool) -> f64 {
    let mut allowed = 0usize;
    for c in trace.iter().take(10_000) {
        allowed += check(c) as usize;
    }
    let start = Instant::now();
    for c in trace {
        allowed += check(c) as usize;
    }
    let elapsed = start.elapsed();
    // Keep `allowed` live so the loop cannot be optimized out.
    assert!(allowed > 0);
    trace.len() as f64 / elapsed.as_secs_f64()
}

/// Times `reps` rounds of 64 singleton `insert_flow` calls and 64-op
/// `submit_batch` calls from inside a deputy-routed app, reporting per-op
/// nanoseconds. The same (match, priority) pairs repeat every round, so the
/// flow table and ownership tracker replace entries instead of growing.
struct DeputyBench {
    reps: usize,
    out: Arc<Mutex<Option<(f64, f64)>>>,
}

impl App for DeputyBench {
    fn name(&self) -> &str {
        "deputy-bench"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let dpid = DatapathId(1);
        let mods: Vec<FlowMod> = (0..BATCH)
            .map(|i| {
                FlowMod::add(
                    FlowMatch::default()
                        .with_ip_dst(Ipv4(GRANTED_NET.0 | (i as u32 + 1)))
                        .with_tp_dst(80),
                    Priority(100),
                    ActionList::output(PortNo(1)),
                )
            })
            .collect();
        let ops = |mods: &[FlowMod]| -> Vec<FlowOp> {
            mods.iter()
                .map(|fm| FlowOp {
                    dpid,
                    flow_mod: fm.clone(),
                })
                .collect()
        };
        // Warm-up: one round each way.
        for fm in &mods {
            ctx.insert_flow(dpid, fm.clone()).expect("warmup insert");
        }
        ctx.submit_batch(ops(&mods)).expect("warmup batch");

        let start = Instant::now();
        for _ in 0..self.reps {
            for fm in &mods {
                ctx.insert_flow(dpid, fm.clone()).expect("singleton insert");
            }
        }
        let singleton_ns = start.elapsed().as_nanos() as f64 / (self.reps * BATCH) as f64;

        let start = Instant::now();
        for _ in 0..self.reps {
            ctx.submit_batch(ops(&mods)).expect("batch insert");
        }
        let batch_ns = start.elapsed().as_nanos() as f64 / (self.reps * BATCH) as f64;

        *self.out.lock().unwrap() = Some((singleton_ns, batch_ns));
    }
}

fn measure_deputy(reps: usize) -> (f64, f64) {
    let controller = ShieldedController::new(Network::new(builders::linear(3), 1024), 2);
    let out = Arc::new(Mutex::new(None));
    controller
        .register(
            Box::new(DeputyBench {
                reps,
                out: Arc::clone(&out),
            }),
            &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
        )
        .expect("register bench app");
    let result = out.lock().unwrap().take().expect("bench app ran");
    controller.shutdown();
    result
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (trace_len, deputy_reps) = if fast { (20_000, 20) } else { (200_000, 200) };

    println!("Figure 5 — permission engine throughput (single core)");
    println!("trace: {trace_len} calls, 5% violations\n");
    println!(
        "{:<18} {:<10} {:>13} {:>13} {:>13} {:>13} {:>12}",
        "call",
        "complexity",
        "interp (k/s)",
        "dnf (k/s)",
        "plan (k/s)",
        "cache (k/s)",
        "latency(ns)"
    );

    // Section 1 — tier ablation on the paper's uniform random trace.
    let mut uniform: Vec<(&str, &str, [f64; 4])> = Vec::new();
    for shape in [TraceCall::InsertFlow, TraceCall::ReadStatistics] {
        for complexity in Complexity::ALL {
            // The Small manifest only grants insert_flow; skip the stats
            // series there (every call would short-circuit at the token
            // gate, which is not the filter cost being measured).
            if shape == TraceCall::ReadStatistics && complexity == Complexity::Small {
                continue;
            }
            let engine = PermissionEngine::compile(&gen_manifest(complexity, 42));
            let trace = gen_trace(shape, trace_len, 50, 7);
            let tiers = tier_throughputs(&engine, &trace);
            let shape_label = match shape {
                TraceCall::InsertFlow => "insert_flow",
                TraceCall::ReadStatistics => "read_statistics",
            };
            println!(
                "{:<18} {:<10} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>12.0}",
                shape_label,
                complexity.label(),
                tiers[0] / 1e3,
                tiers[1] / 1e3,
                tiers[2] / 1e3,
                tiers[3] / 1e3,
                1e9 / tiers[3],
            );
            uniform.push((shape_label, complexity.label(), tiers));
        }
    }

    // Section 2 — the repeated-call workload (call-only manifest, so the
    // decision cache engages): the case the cache is built for.
    let engine = PermissionEngine::compile(&gen_call_only_manifest(Complexity::Medium, 42));
    let repeated = gen_repeated_trace(TraceCall::InsertFlow, DISTINCT_SHAPES, trace_len, 50, 7);
    let repeated_tiers = tier_throughputs(&engine, &repeated);
    let cache_vs_dnf = repeated_tiers[3] / repeated_tiers[1];
    println!(
        "\nrepeated-call workload ({DISTINCT_SHAPES} distinct insert_flow shapes, medium call-only manifest):"
    );
    for (label, t) in TIERS.iter().zip(repeated_tiers.iter()) {
        println!(
            "  {label:<12} {:>13.0} k/s  ({:>6.0} ns/check)",
            t / 1e3,
            1e9 / t
        );
    }
    println!("  plan+cache vs dnf: {cache_vs_dnf:.2}x");

    // Section 3 — batched vs singleton deputy calls through a live
    // controller channel.
    let (singleton_ns, batch_ns) = measure_deputy(deputy_reps);
    let batch_speedup = singleton_ns / batch_ns;
    println!("\ndeputy channel, {BATCH} flow-mods x {deputy_reps} rounds:");
    println!("  singleton calls {singleton_ns:>10.0} ns/op");
    println!("  submit_batch    {batch_ns:>10.0} ns/op");
    println!("  batch vs singleton: {batch_speedup:.2}x");

    println!(
        "\npaper reference: >1M checks/s on a 2012-class core; checking latency\n\
         always below one microsecond; throughput decreases with manifest\n\
         complexity (Fig 5)."
    );

    let json = to_json(
        trace_len,
        &uniform,
        &repeated_tiers,
        cache_vs_dnf,
        singleton_ns,
        batch_ns,
    );
    fs::write("BENCH_fig5.json", &json).expect("write BENCH_fig5.json");
    println!("\nwrote BENCH_fig5.json");
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
fn to_json(
    trace_len: usize,
    uniform: &[(&str, &str, [f64; 4])],
    repeated: &[f64; 4],
    cache_vs_dnf: f64,
    singleton_ns: f64,
    batch_ns: f64,
) -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tiers_obj = |s: &mut String, indent: &str, tiers: &[f64; 4]| {
        for (i, (label, t)) in TIERS.iter().zip(tiers.iter()).enumerate() {
            let comma = if i + 1 < TIERS.len() { "," } else { "" };
            let _ = writeln!(s, "{indent}\"{label}\": {t:.0}{comma}");
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig5_fastpath\",\n");
    s.push_str("  \"unit\": \"checks_per_sec\",\n");
    let _ = writeln!(s, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(s, "  \"trace_len\": {trace_len},");
    s.push_str("  \"uniform_trace\": {\n");
    for (i, (shape, complexity, tiers)) in uniform.iter().enumerate() {
        let _ = writeln!(s, "    \"{shape}/{complexity}\": {{");
        tiers_obj(&mut s, "      ", tiers);
        let comma = if i + 1 < uniform.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"repeated_trace\": {{ \"distinct_shapes\": {DISTINCT_SHAPES},"
    );
    tiers_obj(&mut s, "    ", repeated);
    s.push_str("  },\n");
    let _ = writeln!(s, "  \"repeated_plan_cache_vs_dnf\": {cache_vs_dnf:.2},");
    let _ = writeln!(s, "  \"deputy_singleton_ns_per_op\": {singleton_ns:.0},");
    let _ = writeln!(s, "  \"deputy_batch{BATCH}_ns_per_op\": {batch_ns:.0},");
    let _ = writeln!(
        s,
        "  \"deputy_batch_vs_singleton\": {:.2}",
        singleton_ns / batch_ns
    );
    s.push_str("}\n");
    s
}
