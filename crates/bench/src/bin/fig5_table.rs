//! Figure 5: permission-engine checking throughput on a single core, by
//! manifest complexity and API-call shape — plus the compiled-vs-interpreted
//! ablation (DESIGN.md §5).
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig5_table`

use std::time::Instant;

use sdnshield_bench::fig5::{gen_manifest, gen_trace, Complexity, TraceCall};
use sdnshield_core::engine::PermissionEngine;
use sdnshield_core::eval::NullContext;

const TRACE_LEN: usize = 200_000;

fn main() {
    println!("Figure 5 — permission engine throughput (single core)");
    println!("trace: {TRACE_LEN} calls, 5% violations\n");
    println!(
        "{:<18} {:<12} {:>16} {:>16} {:>12}",
        "call", "complexity", "compiled (k/s)", "interp (k/s)", "latency (ns)"
    );
    for shape in [TraceCall::InsertFlow, TraceCall::ReadStatistics] {
        for complexity in Complexity::ALL {
            // The Small manifest only grants insert_flow; skip the stats
            // series there (every call would short-circuit at the token
            // gate, which is not the filter cost being measured).
            if shape == TraceCall::ReadStatistics && complexity == Complexity::Small {
                continue;
            }
            let manifest = gen_manifest(complexity, 42);
            let engine = PermissionEngine::compile(&manifest);
            let trace = gen_trace(shape, TRACE_LEN, 50, 7);

            let compiled = throughput(&trace, |c| engine.check(c, &NullContext).is_allowed());
            let interpreted = throughput(&trace, |c| {
                engine.check_interpreted(c, &NullContext).is_allowed()
            });
            println!(
                "{:<18} {:<12} {:>16.0} {:>16.0} {:>12.0}",
                match shape {
                    TraceCall::InsertFlow => "insert_flow",
                    TraceCall::ReadStatistics => "read_statistics",
                },
                complexity.label(),
                compiled / 1e3,
                interpreted / 1e3,
                1e9 / compiled,
            );
        }
    }
    println!(
        "\npaper reference: >1M checks/s on a 2012-class core; checking latency\n\
         always below one microsecond; throughput decreases with manifest\n\
         complexity (Fig 5)."
    );
}

/// Runs the trace once for warm-up, then measures checks/second.
fn throughput(
    trace: &[sdnshield_core::api::ApiCall],
    mut check: impl FnMut(&sdnshield_core::api::ApiCall) -> bool,
) -> f64 {
    let mut allowed = 0usize;
    for c in trace.iter().take(10_000) {
        allowed += check(c) as usize;
    }
    let start = Instant::now();
    for c in trace {
        allowed += check(c) as usize;
    }
    let elapsed = start.elapsed();
    // Keep `allowed` live so the loop cannot be optimized out.
    assert!(allowed > 0);
    trace.len() as f64 / elapsed.as_secs_f64()
}
