//! Figure 7: end-to-end control-plane throughput under pressure (the
//! CBench-style L2 learning workload), baseline vs SDNShield, varying the
//! number of emulated switches.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig7_table`

use std::time::Instant;

use sdnshield_bench::scenario::{l2_scenario_opts, traffic, Arch};

const BATCH: usize = 5_000;
const SWITCH_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];
const DEPUTIES: usize = 4;

fn main() {
    println!("Figure 7 — end-to-end throughput, L2 learning pressure test ({BATCH} packet-ins)\n");
    println!(
        "{:<10} {:>20} {:>20} {:>12}",
        "switches", "baseline (resp/s)", "sdnshield (resp/s)", "degradation"
    );
    for &n in &SWITCH_COUNTS {
        let mut rates = [0.0f64; 2];
        for (i, arch) in Arch::ALL.iter().enumerate() {
            // CBench methodology: emulated switches absorb responses, and
            // the generator keeps many packet-ins outstanding (pipelined).
            let c = l2_scenario_opts(*arch, n, DEPUTIES, true);
            let mut gen = traffic(n, 5);
            // Warm-up.
            for _ in 0..500 {
                let (dpid, pi) = gen.next_packet_in();
                c.deliver_packet_in_nowait(dpid, pi);
            }
            c.quiesce();
            let batch = gen.batch(BATCH);
            let t = Instant::now();
            for (dpid, pi) in batch {
                c.deliver_packet_in_nowait(dpid, pi);
            }
            c.quiesce();
            rates[i] = BATCH as f64 / t.elapsed().as_secs_f64();
            c.shutdown();
        }
        println!(
            "{:<10} {:>20.0} {:>20.0} {:>11.1}%",
            n,
            rates[0],
            rates[1],
            100.0 * (rates[0] - rates[1]) / rates[0]
        );
    }
    println!(
        "\npaper reference: \"SDNShield brings negligible throughput degradation\n\
         compared to the original OpenDaylight controller\" (Fig 7)."
    );
}
