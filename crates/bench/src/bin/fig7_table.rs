//! Figure 7: end-to-end control-plane throughput under pressure (the
//! CBench-style L2 learning workload), baseline vs SDNShield, varying the
//! number of emulated switches.
//!
//! PR 5 adds a before/after column pair for the mediated architecture:
//! "pure deputy" routes every API call through the deputy channel and
//! delivers events one by one (the PR 4 path), while "fast lane" combines
//! the app-side read fast path with vectored event delivery and batched
//! flow-op submission. Emits `BENCH_fig7.json` next to the text table.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig7_table`
//! (`--fast` shrinks the batch for CI smoke runs).

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use sdnshield_bench::scenario::{l2_scenario_tuned, traffic, AnyController, Arch};

const SWITCH_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];
const DEPUTIES: usize = 4;
/// Vectored-delivery chunk: the generator hands the controller bursts of
/// this size, mirroring a southbound socket read draining several frames.
const CHUNK: usize = 512;

/// PR 4 checked-in reference (resp/s) for the mediated architecture on this
/// workload — the "before" column when comparing against history rather
/// than the rerun pure-deputy series.
const PR4_REFERENCE: [(usize, f64); 5] = [
    (4, 85_384.0),
    (8, 81_280.0),
    (16, 87_055.0),
    (32, 84_100.0),
    (64, 87_948.0),
];

/// One measured row: throughputs in responses/second.
struct Row {
    switches: usize,
    baseline: f64,
    pure_deputy: f64,
    fast_lane: f64,
}

/// The three delivery styles under measurement.
#[derive(Clone, Copy)]
enum Series {
    Baseline,
    PureDeputy,
    FastLane,
}

fn measure(series: Series, switches: usize, batch: usize) -> f64 {
    let (arch, fast_path) = match series {
        Series::Baseline => (Arch::Baseline, false),
        Series::PureDeputy => (Arch::Shielded, false),
        Series::FastLane => (Arch::Shielded, true),
    };
    // CBench methodology: emulated switches absorb responses, and the
    // generator keeps many packet-ins outstanding (pipelined).
    let c = l2_scenario_tuned(arch, switches, DEPUTIES, true, fast_path);
    let mut gen = traffic(switches, 5);
    // Warm-up.
    for _ in 0..500 {
        let (dpid, pi) = gen.next_packet_in();
        c.deliver_packet_in_nowait(dpid, pi);
    }
    c.quiesce();
    let mut pending = gen.batch(batch);
    let t = Instant::now();
    match series {
        Series::FastLane => {
            // Vectored: each chunk is one enqueue + one wake-up per app.
            while !pending.is_empty() {
                let rest = pending.split_off(pending.len().min(CHUNK));
                c.deliver_packet_in_batch(pending);
                pending = rest;
            }
        }
        Series::Baseline | Series::PureDeputy => {
            for (dpid, pi) in pending {
                c.deliver_packet_in_nowait(dpid, pi);
            }
        }
    }
    c.quiesce();
    let rate = batch as f64 / t.elapsed().as_secs_f64();
    c.shutdown();
    rate
}

fn fast_hits(c: &AnyController) -> u64 {
    match c {
        AnyController::Baseline(_) => 0,
        AnyController::Shielded(c) => c.fast_path_hits(),
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let batch = if fast { 1_000 } else { 5_000 };

    println!("Figure 7 — end-to-end throughput, L2 learning pressure test ({batch} packet-ins)\n");
    println!(
        "{:<10} {:>18} {:>18} {:>18} {:>9} {:>12}",
        "switches", "baseline (r/s)", "deputy (r/s)", "fast lane (r/s)", "speedup", "degradation"
    );
    let mut rows = Vec::new();
    for &n in &SWITCH_COUNTS {
        let row = Row {
            switches: n,
            baseline: measure(Series::Baseline, n, batch),
            pure_deputy: measure(Series::PureDeputy, n, batch),
            fast_lane: measure(Series::FastLane, n, batch),
        };
        println!(
            "{:<10} {:>18.0} {:>18.0} {:>18.0} {:>8.2}x {:>11.1}%",
            row.switches,
            row.baseline,
            row.pure_deputy,
            row.fast_lane,
            row.fast_lane / row.pure_deputy,
            100.0 * (row.baseline - row.fast_lane) / row.baseline,
        );
        rows.push(row);
    }

    // Sanity: on the L2 workload the fast lane only serves call-only reads;
    // the learning switch issues none, so the win comes from vectored
    // delivery + batched flow-ops. Confirm the lane is wired regardless.
    let c = l2_scenario_tuned(Arch::Shielded, 4, DEPUTIES, true, true);
    c.quiesce();
    let hits = fast_hits(&c);
    c.shutdown();
    println!("\nfast-path hits during L2 startup: {hits} (L2 issues no call-only reads)");

    println!(
        "\npaper reference: \"SDNShield brings negligible throughput degradation\n\
         compared to the original OpenDaylight controller\" (Fig 7)."
    );

    let json = to_json(batch, &rows);
    fs::write("BENCH_fig7.json", &json).expect("write BENCH_fig7.json");
    println!("\nwrote BENCH_fig7.json");
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
fn to_json(batch: usize, rows: &[Row]) -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig7_throughput\",\n");
    s.push_str("  \"unit\": \"resp_per_sec\",\n");
    let _ = writeln!(s, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(s, "  \"batch\": {batch},");
    let _ = writeln!(s, "  \"deputies\": {DEPUTIES},");
    let _ = writeln!(s, "  \"vectored_chunk\": {CHUNK},");
    s.push_str("  \"switch_counts\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let pr4 = PR4_REFERENCE
            .iter()
            .find(|(n, _)| *n == row.switches)
            .map(|(_, r)| *r)
            .unwrap_or(row.pure_deputy);
        let _ = writeln!(s, "    \"{}\": {{", row.switches);
        let _ = writeln!(s, "      \"baseline\": {:.0},", row.baseline);
        let _ = writeln!(
            s,
            "      \"sdnshield_pure_deputy\": {:.0},",
            row.pure_deputy
        );
        let _ = writeln!(s, "      \"sdnshield_fast_lane\": {:.0},", row.fast_lane);
        let _ = writeln!(s, "      \"pr4_reference\": {pr4:.0},");
        let _ = writeln!(
            s,
            "      \"improvement_vs_measured_deputy\": {:.2},",
            row.fast_lane / row.pure_deputy
        );
        let _ = writeln!(
            s,
            "      \"improvement_vs_pr4_reference\": {:.2},",
            row.fast_lane / pr4
        );
        let _ = writeln!(
            s,
            "      \"degradation_vs_baseline_pct\": {:.1}",
            100.0 * (row.baseline - row.fast_lane) / row.baseline
        );
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}
