//! Figure 6: end-to-end control-plane latency, baseline vs SDNShield, for
//! the two §IX-A scenarios, varying the number of switches. Reports median
//! with 10/90-percentile error bars over 100 repetitions, as the paper does.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin fig6_table`

use std::time::Instant;

use sdnshield_bench::scenario::{alto_scenario, l2_scenario_opts, traffic, Arch};
use sdnshield_bench::stats::Summary;

const REPS: usize = 100;
const SWITCH_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];
const DEPUTIES: usize = 4;

fn main() {
    println!("Figure 6 — end-to-end control-plane latency ({REPS} reps, median [p10,p90] µs)\n");

    println!("(a) L2 learning switch");
    println!(
        "{:<10} {:>22} {:>22} {:>10}",
        "switches", "baseline (µs)", "sdnshield (µs)", "overhead"
    );
    for &n in &SWITCH_COUNTS {
        let mut medians = [0.0f64; 2];
        let mut row = String::new();
        for (i, arch) in Arch::ALL.iter().enumerate() {
            // CBench methodology: emulated switches absorb responses.
            let c = l2_scenario_opts(*arch, n, DEPUTIES, true);
            let mut gen = traffic(n, 99);
            // Warm-up: teach the MAC table.
            for _ in 0..50 {
                let (dpid, pi) = gen.next_packet_in();
                c.deliver_packet_in(dpid, pi);
            }
            c.quiesce();
            let mut samples = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let (dpid, pi) = gen.next_packet_in();
                let t = Instant::now();
                c.deliver_packet_in(dpid, pi);
                samples.push(t.elapsed());
            }
            c.shutdown();
            let s = Summary::of(samples);
            medians[i] = s.median.as_secs_f64() * 1e6;
            row.push_str(&format!(
                " {:>9} [{:>4},{:>5}]",
                Summary::us(s.median),
                Summary::us(s.p10),
                Summary::us(s.p90)
            ));
        }
        println!("{:<10} {row} {:>9.1}µs", n, medians[1] - medians[0]);
    }

    println!("\n(b) ALTO traffic engineering");
    println!(
        "{:<10} {:>22} {:>22} {:>10}",
        "switches", "baseline (µs)", "sdnshield (µs)", "overhead"
    );
    for &n in &SWITCH_COUNTS {
        let mut medians = [0.0f64; 2];
        let mut row = String::new();
        for (i, arch) in Arch::ALL.iter().enumerate() {
            let c = alto_scenario(*arch, n, DEPUTIES);
            // Warm-up.
            for _ in 0..5 {
                c.deliver_topology_change("warm");
            }
            c.quiesce();
            let mut samples = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let t = Instant::now();
                c.deliver_topology_change("tick");
                c.quiesce();
                samples.push(t.elapsed());
            }
            c.shutdown();
            let s = Summary::of(samples);
            medians[i] = s.median.as_secs_f64() * 1e6;
            row.push_str(&format!(
                " {:>9} [{:>4},{:>5}]",
                Summary::us(s.median),
                Summary::us(s.p10),
                Summary::us(s.p90)
            ));
        }
        println!("{:<10} {row} {:>9.1}µs", n, medians[1] - medians[0]);
    }

    println!(
        "\npaper reference: SDNShield's additional latency is \"almost\n\
         unnoticeable\" — tens of microseconds, two orders of magnitude below\n\
         typical data-center end-to-end latency (Fig 6)."
    );
}
