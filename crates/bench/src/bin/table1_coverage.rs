//! Table I: attack-protection coverage. Runs the four §IX-B1
//! proof-of-concept attack apps on the unmodified baseline and on SDNShield
//! under least-privilege permissions, and prints the coverage matrix.
//!
//! Run with: `cargo run --release -p sdnshield-bench --bin table1_coverage`

use bytes::Bytes;
use sdnshield_apps::attacks::{
    FlowTunnelApp, InfoLeakApp, RouteHijackApp, SniffInjectApp, StatsHandle,
};
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::isolation::ShieldedController;
use sdnshield_controller::monolithic::MonolithicController;
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::perm::PermissionSet;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield_openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

struct Provisioner;

impl App for Provisioner {
    fn name(&self) -> &str {
        "provisioner"
    }
    fn on_start(&mut self, ctx: &AppCtx) {
        // Static h1→h3 path + firewall on s2.
        type Rule = (u64, FlowMatch, u16, Option<u16>);
        let rules: [Rule; 5] = [
            (
                1u64,
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                100u16,
                Some(1u16),
            ),
            (
                2,
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                100,
                Some(2),
            ),
            (
                3,
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                100,
                Some(2),
            ),
            (2, FlowMatch::default().with_tp_dst(80), 300, Some(2)),
            (2, FlowMatch::default().with_ip_proto(6), 200, None),
        ];
        for (dpid, m, prio, port) in rules {
            let actions = match port {
                Some(p) => ActionList::output(PortNo(p)),
                None => ActionList::drop(),
            };
            ctx.insert_flow(DatapathId(dpid), FlowMod::add(m, Priority(prio), actions))
                .expect("provision");
        }
        let _ = ctx.subscribe(EventKind::PacketIn);
    }
}

type AttackSet = (Vec<Box<dyn App>>, Vec<(&'static str, StatsHandle)>);

fn attack_apps() -> AttackSet {
    let (sniff, s1) = SniffInjectApp::new();
    let (leak, s2) = InfoLeakApp::new((Ipv4::new(203, 0, 113, 66), 8080));
    let (hijack, s3) = RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
    let (tunnel, s4) =
        FlowTunnelApp::new(DatapathId(1), DatapathId(3), 23, 80, (PortNo(1), PortNo(2)));
    (
        vec![
            Box::new(sniff),
            Box::new(leak),
            Box::new(hijack),
            Box::new(tunnel),
        ],
        vec![
            ("1: intrusion to data plane", s1),
            ("2: sensitive info leakage", s2),
            ("3: manipulation of rules", s3),
            ("4: attacking other apps", s4),
        ],
    )
}

fn shielded_manifests() -> Vec<PermissionSet> {
    [
        "PERM pkt_in_event\nPERM read_payload",
        "PERM topology_event\nPERM visible_topology\nPERM read_statistics\n\
         PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0",
        "PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS",
        "PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD",
    ]
    .into_iter()
    .map(|m| parse_manifest(m).expect("manifest"))
    .collect()
}

fn http_wakeup() -> EthernetFrame {
    EthernetFrame::tcp(
        EthAddr::from_u64(3),
        EthAddr::from_u64(1),
        Ipv4::new(10, 0, 0, 3),
        Ipv4::new(10, 0, 0, 1),
        43210,
        80,
        TcpFlags::default(),
        Bytes::from_static(b"GET /"),
    )
}

fn main() {
    // Baseline run.
    let mut baseline = Vec::new();
    {
        let c = MonolithicController::new(Network::new(builders::linear(3), 4096));
        c.register(Box::new(Provisioner), &PermissionSet::new());
        let (apps, stats) = attack_apps();
        for app in apps {
            c.register(app, &PermissionSet::new());
        }
        c.inject_host_frame(http_wakeup());
        c.deliver_topology_change("wake");
        for (name, s) in stats {
            let st = s.lock();
            baseline.push((name, st.attempts, st.successes));
        }
    }
    // Shielded run.
    let mut shielded = Vec::new();
    {
        let c = ShieldedController::new(Network::new(builders::linear(3), 4096), 4);
        c.register(
            Box::new(Provisioner),
            &parse_manifest("PERM insert_flow\nPERM pkt_in_event").expect("manifest"),
        )
        .expect("register provisioner");
        let (apps, stats) = attack_apps();
        for (app, manifest) in apps.into_iter().zip(shielded_manifests()) {
            c.register(app, &manifest).expect("register attack app");
        }
        c.inject_host_frame(http_wakeup());
        c.deliver_topology_change("wake");
        c.quiesce();
        for (name, s) in stats {
            let st = s.lock();
            shielded.push((name, st.attempts, st.successes));
        }
        c.shutdown();
    }

    println!("Table I — attack protection coverage\n");
    println!(
        "{:<30} {:>22} {:>22}",
        "attack class", "baseline (succ/att)", "SDNShield (succ/att)"
    );
    for ((name, ba, bs), (_, sa, ss)) in baseline.iter().zip(shielded.iter()) {
        println!("{:<30} {:>12}/{:<9} {:>12}/{:<9}", name, bs, ba, ss, sa);
    }
    let all_vulnerable = baseline.iter().all(|(_, _, s)| *s > 0);
    let all_blocked = shielded.iter().all(|(_, _, s)| *s == 0);
    println!(
        "\nbaseline vulnerable to all classes: {all_vulnerable}\n\
         SDNShield blocks all classes:       {all_blocked}"
    );
    println!(
        "\npaper reference (Table I): \"original Floodlight is vulnerable to all\n\
         the attacks, while SDNShield-enabled Floodlight is immune to all of\n\
         them.\""
    );
}
