//! The lint fixture corpus: one fixture per `SH0xx` code, each asserting
//! the exact code, severity, and span the analyzer must report.
//!
//! Fixtures live in `tests/fixtures/`; files ending in `.pol` run through
//! [`analyze_policy`], the rest through [`analyze_manifest`]. Each fixture
//! declares its expected findings in `# expect: CODE severity line:col`
//! header comments (comment lines count toward line numbers — the lexer
//! skips them but keeps counting). The harness requires an exact match in
//! order: missing, extra, or misplaced findings all fail.
//!
//! Market-only codes (SH009 unknown `APP`, SH011 uncompleted stub, the
//! cross-artifact SH005 orphan-macro case) need several artifacts at once,
//! so they are asserted inline against [`analyze_market`].

use sdnshield_analysis::{analyze_manifest, analyze_market, analyze_policy, Diagnostic, Severity};

fn fmt_diag(d: &Diagnostic) -> String {
    let pos = d
        .span
        .map(|s| format!("{}:{}", s.line, s.col))
        .unwrap_or_else(|| "-".into());
    format!("{} {} {pos}", d.code, d.severity)
}

fn check(name: &str) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let expected: Vec<String> = src
        .lines()
        .filter_map(|l| l.strip_prefix("# expect: "))
        .map(|l| l.trim().to_owned())
        .collect();
    let diags = if name.ends_with(".pol") {
        analyze_policy(&src)
    } else {
        analyze_manifest(&src)
    };
    let actual: Vec<String> = diags.iter().map(fmt_diag).collect();
    assert_eq!(actual, expected, "fixture {name}\ndiagnostics: {diags:#?}");
}

#[test]
fn sh000_syntax_error() {
    check("sh000_syntax.perm");
}

#[test]
fn sh001_unsatisfiable_conjunction() {
    check("sh001_unsat.perm");
}

#[test]
fn sh001_pairwise_sat_jointly_unsat_triple() {
    check("sh001_triple.perm");
}

#[test]
fn sh002_shadowed_or_branch() {
    check("sh002_shadowed.perm");
}

#[test]
fn sh003_duplicate_permission() {
    check("sh003_duplicate.perm");
}

#[test]
fn sh004_broad_sensitive_grant() {
    check("sh004_broad.perm");
}

#[test]
fn sh005_unused_let_binding() {
    check("sh005_unused.pol");
}

#[test]
fn sh006_undefined_variable() {
    check("sh006_undefined.pol");
}

#[test]
fn sh007_vacuous_mutual_exclusion() {
    check("sh007_vacuous.pol");
}

#[test]
fn sh008_overlapping_exclusion_operands() {
    check("sh008_overlap.pol");
}

#[test]
fn sh010_constant_assertion() {
    check("sh010_constant.pol");
}

#[test]
fn clean_manifest_has_no_findings() {
    check("clean.perm");
}

// --- market-mode codes --------------------------------------------------

#[test]
fn sh009_unknown_app_reference() {
    let report = analyze_market(
        &[("fwd", "PERM insert_flow LIMITING SWITCH 1")],
        "ASSERT APP ghost <= { PERM insert_flow }",
    );
    assert!(report.manifests[0].1.is_empty(), "{report:#?}");
    let [d] = &report.policy[..] else {
        panic!("expected exactly one policy finding: {report:#?}");
    };
    assert_eq!(d.code, "SH009");
    assert_eq!(d.severity, Severity::Error);
    let span = d.span.expect("SH009 carries the APP name span");
    assert_eq!((span.line, span.col), (1, 12), "{d:#?}");
}

#[test]
fn sh011_uncompleted_stub_macro() {
    // `admin_choice` is a stub the policy never completes with a LET.
    let report = analyze_market(
        &[("fwd", "PERM insert_flow LIMITING admin_choice")],
        "ASSERT APP fwd <= { PERM insert_flow }",
    );
    let [d] = &report.manifests[0].1[..] else {
        panic!("expected exactly one manifest finding: {report:#?}");
    };
    assert_eq!(d.code, "SH011");
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("SH011 carries the stub atom span");
    assert_eq!((span.line, span.col), (1, 27), "{d:#?}");
    assert!(report.policy.is_empty(), "{report:#?}");
}

#[test]
fn completed_stub_is_clean_and_macro_is_used() {
    // The same stub, completed by the policy: no SH011, no SH005.
    let report = analyze_market(
        &[("fwd", "PERM insert_flow LIMITING admin_choice")],
        "LET admin_choice = { SWITCH 1 }\nASSERT APP fwd <= { PERM insert_flow }",
    );
    assert!(report.manifests[0].1.is_empty(), "{report:#?}");
    assert!(report.policy.is_empty(), "{report:#?}");
}

#[test]
fn sh005_orphaned_filter_macro_in_market() {
    // A LET filter macro no submitted manifest stubs: flagged only in
    // market mode, where the full set of manifests is known.
    let report = analyze_market(
        &[("fwd", "PERM insert_flow LIMITING SWITCH 1")],
        "LET nobody_uses_me = { SWITCH 2 }\nASSERT APP fwd <= { PERM insert_flow }",
    );
    let [d] = &report.policy[..] else {
        panic!("expected exactly one policy finding: {report:#?}");
    };
    assert_eq!(d.code, "SH005");
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("SH005 carries the binding name span");
    assert_eq!((span.line, span.col), (1, 5), "{d:#?}");
}
