//! End-to-end tests for the `shieldcheck` binary: exit codes, text and
//! JSON rendering, market mode, and usage errors.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_shieldcheck"))
        .args(args)
        .output()
        .expect("spawn shieldcheck")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_manifest_exits_zero() {
    let out = run(&[fixture("clean.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn error_finding_exits_one_with_caret_text() {
    let out = run(&[fixture("sh001_unsat.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[SH001]"), "{text}");
    assert!(text.contains("^^^^^^"), "{text}");
    assert!(text.contains("1 error(s)"), "{text}");
}

#[test]
fn warning_exits_zero_unless_denied() {
    let path = fixture("sh004_broad.perm");
    let path = path.to_str().unwrap();
    let out = run(&[path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("warning[SH004]"));
    let denied = run(&["--deny-warnings", path]);
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");
}

#[test]
fn json_output_is_one_array_with_origins() {
    let manifest = fixture("sh001_unsat.perm");
    let policy = fixture("sh005_unused.pol");
    let out = run(&[
        "--format",
        "json",
        manifest.to_str().unwrap(),
        policy.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = stdout(&out);
    assert!(
        json.starts_with('[') && json.trim_end().ends_with(']'),
        "{json}"
    );
    assert!(json.contains("\"code\":\"SH001\""), "{json}");
    assert!(json.contains("\"code\":\"SH005\""), "{json}");
    assert!(json.contains("sh001_unsat.perm"), "{json}");
    assert!(json.contains("\"severity\":\"warning\""), "{json}");
}

#[test]
fn market_mode_cross_checks() {
    let dir = std::env::temp_dir().join("shieldcheck_market_test");
    std::fs::create_dir_all(&dir).unwrap();
    let app = dir.join("fwd.perm");
    let pol = dir.join("site.pol");
    std::fs::write(&app, "PERM insert_flow LIMITING admin_choice\n").unwrap();
    std::fs::write(&pol, "ASSERT APP ghost <= { PERM insert_flow }\n").unwrap();
    let out = run(&["--market", app.to_str().unwrap(), pol.to_str().unwrap()]);
    // SH009 (unknown app, error) + SH011 (uncompleted stub, warning).
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[SH009]"), "{text}");
    assert!(text.contains("warning[SH011]"), "{text}");
}

#[test]
fn market_mode_requires_exactly_one_policy() {
    let out = run(&["--market", fixture("clean.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn missing_file_and_bad_flag_exit_two() {
    let out = run(&["definitely_missing_file.perm"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
