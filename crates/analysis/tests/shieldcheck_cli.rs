//! End-to-end tests for the `shieldcheck` binary: the stable exit-code
//! contract (0 clean / 1 warnings / 2 errors / 3 usage), text and JSON
//! rendering, market mode, semantic diff, and trace certification.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_shieldcheck"))
        .args(args)
        .output()
        .expect("spawn shieldcheck")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch directory for generated inputs, unique per test.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shieldcheck_cli_{test}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clean_manifest_exits_zero() {
    let out = run(&[fixture("clean.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn error_finding_exits_two_with_caret_text() {
    let out = run(&[fixture("sh001_unsat.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[SH001]"), "{text}");
    assert!(text.contains("^^^^^^"), "{text}");
    assert!(text.contains("1 error(s)"), "{text}");
}

#[test]
fn warning_exits_one_or_two_when_denied() {
    let path = fixture("sh004_broad.perm");
    let path = path.to_str().unwrap();
    let out = run(&[path]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout(&out).contains("warning[SH004]"));
    let denied = run(&["--deny-warnings", path]);
    assert_eq!(denied.status.code(), Some(2), "{denied:?}");
}

#[test]
fn json_output_is_one_array_with_origins_and_schema_version() {
    let manifest = fixture("sh001_unsat.perm");
    let policy = fixture("sh005_unused.pol");
    let out = run(&[
        "--format",
        "json",
        manifest.to_str().unwrap(),
        policy.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let json = stdout(&out);
    assert!(
        json.starts_with('[') && json.trim_end().ends_with(']'),
        "{json}"
    );
    assert!(json.contains("\"schema_version\":2"), "{json}");
    assert!(json.contains("\"code\":\"SH001\""), "{json}");
    assert!(json.contains("\"code\":\"SH005\""), "{json}");
    assert!(json.contains("sh001_unsat.perm"), "{json}");
    assert!(json.contains("\"severity\":\"warning\""), "{json}");
}

#[test]
fn market_mode_cross_checks() {
    let dir = scratch("market");
    let app = dir.join("fwd.perm");
    let pol = dir.join("site.pol");
    std::fs::write(&app, "PERM insert_flow LIMITING admin_choice\n").unwrap();
    std::fs::write(&pol, "ASSERT APP ghost <= { PERM insert_flow }\n").unwrap();
    let out = run(&["--market", app.to_str().unwrap(), pol.to_str().unwrap()]);
    // SH009 (unknown app, error) + SH011 (uncompleted stub, warning).
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[SH009]"), "{text}");
    assert!(text.contains("warning[SH011]"), "{text}");
}

#[test]
fn market_mode_finds_cross_app_write_overlap() {
    let dir = scratch("sh012");
    let a = dir.join("alpha.perm");
    let b = dir.join("beta.perm");
    let pol = dir.join("site.pol");
    // Both apps may insert flows on switch 1: overlapping write authority.
    std::fs::write(&a, "PERM insert_flow LIMITING SWITCH 1,2\n").unwrap();
    std::fs::write(&b, "PERM insert_flow LIMITING SWITCH 1\n").unwrap();
    std::fs::write(
        &pol,
        "ASSERT APP alpha <= { PERM insert_flow PERM delete_flow }\n",
    )
    .unwrap();
    let out = run(&[
        "--market",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        pol.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("warning[SH012]"), "{text}");
    assert!(text.contains("alpha"), "{text}");
    assert!(text.contains("beta"), "{text}");
}

#[test]
fn market_mode_couples_apps_named_in_one_statement() {
    let dir = scratch("sh014");
    let a = dir.join("alpha.perm");
    let b = dir.join("beta.perm");
    let pol = dir.join("site.pol");
    std::fs::write(&a, "PERM read_statistics\n").unwrap();
    std::fs::write(&b, "PERM visible_topology\n").unwrap();
    // One statement naming both apps couples their reconciliations (SH014);
    // naming them in separate statements must stay clean.
    std::fs::write(&pol, "ASSERT APP alpha MEET APP beta = { }\n").unwrap();
    let out = run(&[
        "--market",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        pol.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout(&out).contains("warning[SH014]"), "{}", stdout(&out));

    std::fs::write(
        &pol,
        "ASSERT APP alpha <= { PERM read_statistics }\nASSERT APP beta <= { PERM visible_topology }\n",
    )
    .unwrap();
    let out = run(&[
        "--market",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        pol.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn market_mode_requires_exactly_one_policy() {
    let out = run(&["--market", fixture("clean.perm").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn missing_file_and_bad_flag_exit_three() {
    let out = run(&["definitely_missing_file.perm"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = run(&["diff", "only_one.pol"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let out = run(&["certify"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

/// Pins the full exit-code contract in one place: 0 clean, 1 warnings,
/// 2 errors, 3 usage. A change to any of these is a breaking CLI change.
#[test]
fn exit_code_contract() {
    assert_eq!(
        run(&[fixture("clean.perm").to_str().unwrap()])
            .status
            .code(),
        Some(0)
    );
    assert_eq!(
        run(&[fixture("sh004_broad.perm").to_str().unwrap()])
            .status
            .code(),
        Some(1)
    );
    assert_eq!(
        run(&[fixture("sh001_unsat.perm").to_str().unwrap()])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(run(&["--nonsense"]).status.code(), Some(3));
}

#[test]
fn diff_identical_policies_is_clean() {
    let dir = scratch("diff_clean");
    let pol = dir.join("site.pol");
    let app = dir.join("fwd.perm");
    std::fs::write(
        &pol,
        "ASSERT APP fwd <= { PERM insert_flow PERM read_statistics }\n",
    )
    .unwrap();
    std::fs::write(
        &app,
        "PERM insert_flow LIMITING SWITCH 1\nPERM read_statistics\n",
    )
    .unwrap();
    let out = run(&[
        "diff",
        pol.to_str().unwrap(),
        pol.to_str().unwrap(),
        app.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        stdout(&out).contains("0 decision flip(s)"),
        "{:?}",
        stdout(&out)
    );
}

#[test]
fn diff_narrowing_policy_reports_witnessed_flip() {
    let dir = scratch("diff_flip");
    let old = dir.join("old.pol");
    let new = dir.join("new.pol");
    let app = dir.join("fwd.perm");
    std::fs::write(
        &old,
        "ASSERT APP fwd <= { PERM insert_flow PERM read_statistics }\n",
    )
    .unwrap();
    std::fs::write(
        &new,
        "ASSERT APP fwd <= { PERM insert_flow LIMITING MAX_PRIORITY 100 PERM read_statistics }\n",
    )
    .unwrap();
    std::fs::write(&app, "PERM insert_flow\nPERM read_statistics\n").unwrap();
    let out = run(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        app.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("warning[SH015]"), "{text}");
    assert!(text.contains("narrowed"), "{text}");

    let json_out = run(&[
        "diff",
        "--format",
        "json",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        app.to_str().unwrap(),
    ]);
    assert_eq!(json_out.status.code(), Some(1), "{json_out:?}");
    let json = stdout(&json_out);
    assert!(json.contains("\"schema_version\":2"), "{json}");
    assert!(json.contains("\"mode\":\"diff\""), "{json}");
    assert!(json.contains("\"change\":\"narrowed\""), "{json}");
    assert!(json.contains("\"newly_denied\""), "{json}");
}

#[test]
fn certify_flags_out_of_envelope_allow() {
    let dir = scratch("certify");
    let good = dir.join("good.trace");
    let bad = dir.join("bad.trace");
    // One in-envelope allow (switch 1, priority within u16) and one
    // fabricated allow on a switch the manifest never grants.
    let register = "register app=1 name=fwd manifest=PERM%20insert_flow%20LIMITING%20SWITCH%201\n";
    let ok_decision = "decision lane=deputy allowed=true app=1 kind=insert_flow dpid=1 \
                       match=any cmd=add prio=100 actions=drop\n";
    let rogue_decision = "decision lane=fastlane allowed=true app=1 kind=insert_flow dpid=9 \
                          match=any cmd=add prio=50000 actions=drop\n";
    std::fs::write(&good, format!("{register}{ok_decision}")).unwrap();
    std::fs::write(&bad, format!("{register}{ok_decision}{rogue_decision}")).unwrap();

    let out = run(&["certify", good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        stdout(&out).contains("certified: yes"),
        "{:?}",
        stdout(&out)
    );

    let out = run(&["certify", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[SH016]"), "{text}");
    assert!(text.contains("certified: no"), "{text}");

    let json_out = run(&["certify", "--format", "json", bad.to_str().unwrap()]);
    assert_eq!(json_out.status.code(), Some(2), "{json_out:?}");
    let json = stdout(&json_out);
    assert!(json.contains("\"mode\":\"certify\""), "{json}");
    assert!(json.contains("\"certified\":false"), "{json}");
    assert!(json.contains("\"code\":\"SH016\""), "{json}");
}
