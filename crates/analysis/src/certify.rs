//! Runtime conformance certification: replay an exported kernel decision
//! trace against the statically computed decision envelope (DESIGN.md §14).
//!
//! `shieldcheck certify <trace>` re-derives, for every runtime decision in
//! the trace, what the static analysis says about that (app, call) pair:
//!
//! - **Allow outside the envelope (SH016, error).** The kernel allowed a
//!   call that the registered manifest cannot justify — the app was not
//!   registered, the required token was never granted, or the grant's filter
//!   provably rejects the call. Any SH016 means the enforcement engine and
//!   the static model disagree, which is exactly the bug class this gate
//!   exists to catch (fast-lane/cache/batch divergence from the deputy).
//! - **Deny of an always-allowed call (SH017, warning).** The kernel denied
//!   a call the static model proves admissible under every context. A
//!   warning, not an error: over-restriction is safe, but it usually
//!   indicates a stale snapshot or an over-eager fast-path bailout.
//!
//! The envelope is evaluated in three-valued (Kleene) logic. Literals that
//! consult runtime state the trace does not carry — ownership, rule-count
//! quotas, packet-in provenance — evaluate to *unknown*, and a decision
//! whose verdict is unknown is accepted either way. This is the deliberate
//! incompleteness boundary: certification proves every Allow is derivable
//! from call-only facts, never that stateful judgment calls were right.

use std::collections::BTreeMap;

use sdnshield_core::eval::{classify, eval_singleton, LiteralClass, NullContext};
use sdnshield_core::lang::{parse_manifest, SpannedExpr};
use sdnshield_core::trace::{parse_trace, TraceEvent};
use sdnshield_core::{ApiCall, AppId, FilterExpr, PermissionSet};

use crate::diag::{json_string, Diagnostic, Severity, SCHEMA_VERSION};

/// Three-valued verdict of the static envelope for one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tv {
    /// Provably allowed under every context.
    True,
    /// Provably denied under every context.
    False,
    /// Depends on runtime state the trace does not carry.
    Unknown,
}

impl Tv {
    fn not(self) -> Tv {
        match self {
            Tv::True => Tv::False,
            Tv::False => Tv::True,
            Tv::Unknown => Tv::Unknown,
        }
    }
}

impl From<bool> for Tv {
    fn from(b: bool) -> Tv {
        if b {
            Tv::True
        } else {
            Tv::False
        }
    }
}

/// Kleene evaluation of a filter against a call: static literals fold,
/// call-only literals evaluate exactly (they never read the context, so
/// [`NullContext`] is sound), stateful literals are unknown.
fn eval_tv(expr: &FilterExpr, call: &ApiCall) -> Tv {
    match expr {
        FilterExpr::True => Tv::True,
        FilterExpr::Atom(f) => match classify(f) {
            LiteralClass::Static(b) => b.into(),
            LiteralClass::CallOnly => eval_singleton(f, call, &NullContext).into(),
            LiteralClass::Stateful => Tv::Unknown,
        },
        FilterExpr::And(xs) => {
            let mut acc = Tv::True;
            for x in xs {
                match eval_tv(x, call) {
                    Tv::False => return Tv::False,
                    Tv::Unknown => acc = Tv::Unknown,
                    Tv::True => {}
                }
            }
            acc
        }
        FilterExpr::Or(xs) => {
            let mut acc = Tv::False;
            for x in xs {
                match eval_tv(x, call) {
                    Tv::True => return Tv::True,
                    Tv::Unknown => acc = Tv::Unknown,
                    Tv::False => {}
                }
            }
            acc
        }
        FilterExpr::Not(x) => eval_tv(x, call).not(),
    }
}

/// The result of certifying one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CertifyReport {
    /// Total decisions replayed.
    pub decisions: u64,
    /// Runtime Allows among them.
    pub allows: u64,
    /// Runtime Denies among them.
    pub denies: u64,
    /// Decisions accepted only because a stateful literal made the verdict
    /// unknown (the incompleteness boundary, reported for transparency).
    pub unknown: u64,
    /// Decisions per lane (`deputy`, `fastlane`, `vectored`, `batch`).
    pub lanes: BTreeMap<String, u64>,
    /// Every SH016/SH017 finding, plus any trace or manifest parse error.
    pub findings: Vec<Diagnostic>,
}

impl CertifyReport {
    /// Did certification succeed (no error-severity finding)?
    pub fn is_certified(&self) -> bool {
        !self.findings.iter().any(|d| d.severity >= Severity::Error)
    }

    /// Stable JSON object: `{"schema_version":…,"mode":"certify",
    /// "decisions","allows","denies","unknown","lanes":{…},
    /// "findings":[<diagnostic>…],"certified":bool}`.
    pub fn render_json(&self, origin: &str) -> String {
        let lanes: Vec<String> = self
            .lanes
            .iter()
            .map(|(lane, n)| format!("{}:{n}", json_string(lane)))
            .collect();
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|d| d.render_json(origin))
            .collect();
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"mode\":\"certify\",\
             \"decisions\":{},\"allows\":{},\"denies\":{},\"unknown\":{},\
             \"lanes\":{{{}}},\"findings\":[{}],\"certified\":{}}}",
            self.decisions,
            self.allows,
            self.denies,
            self.unknown,
            lanes.join(","),
            findings.join(","),
            self.is_certified(),
        )
    }
}

/// One-line human description of a traced call, for finding messages.
fn describe_call(call: &ApiCall) -> String {
    format!(
        "{} (app {}, token `{}`)",
        call.kind.name(),
        call.app.0,
        call.required_token().name()
    )
}

/// Certifies a decision trace (the text produced by
/// `sdnshield_core::trace::write_trace`) against the static envelope each
/// registered manifest defines.
pub fn certify_trace(src: &str) -> CertifyReport {
    let mut report = CertifyReport::default();
    let events = match parse_trace(src) {
        Ok(evs) => evs,
        Err(e) => {
            report.findings.push(Diagnostic::new(
                "SH000",
                Severity::Error,
                format!("trace line {}: {}", e.line, e.msg),
                SpannedExpr::DUMMY_SPAN,
            ));
            return report;
        }
    };

    // The registry the trace builds up: app id -> (name, granted set). A
    // manifest that fails to parse registers as `None`; decisions for such
    // apps are uncertifiable and flagged once at registration time.
    let mut apps: BTreeMap<AppId, (String, Option<PermissionSet>)> = BTreeMap::new();

    for ev in events {
        match ev {
            TraceEvent::Register {
                app,
                name,
                manifest,
            } => {
                let set = match parse_manifest(&manifest) {
                    Ok(set) => Some(set),
                    Err(e) => {
                        report.findings.push(Diagnostic::new(
                            "SH000",
                            Severity::Error,
                            format!(
                                "app `{name}` (id {}): registered manifest does not parse: {}",
                                app.0, e.message
                            ),
                            SpannedExpr::DUMMY_SPAN,
                        ));
                        None
                    }
                };
                apps.insert(app, (name, set));
            }
            TraceEvent::Deregister { app } => {
                apps.remove(&app);
            }
            TraceEvent::Decision {
                lane,
                allowed,
                call,
            } => {
                report.decisions += 1;
                *report.lanes.entry(lane.clone()).or_insert(0) += 1;
                if allowed {
                    report.allows += 1;
                } else {
                    report.denies += 1;
                }

                let entry = apps.get(&call.app);
                let verdict = match entry {
                    // Unknown app: nothing grants anything, envelope is F.
                    None => Tv::False,
                    // Unparseable manifest: already reported; skip.
                    Some((_, None)) => continue,
                    Some((_, Some(set))) => match set.filter(call.required_token()) {
                        None => Tv::False,
                        Some(f) => eval_tv(f, &call),
                    },
                };

                match (allowed, verdict) {
                    (true, Tv::False) => {
                        let why = match entry {
                            None => "the app is not registered at this point in the trace",
                            Some((_, Some(set))) if !set.contains_token(call.required_token()) => {
                                "the registered manifest never grants the required token"
                            }
                            _ => "the granted filter provably rejects this call",
                        };
                        report.findings.push(
                            Diagnostic::new(
                                "SH016",
                                Severity::Error,
                                format!(
                                    "runtime Allow outside the static envelope: {} on the {lane} lane",
                                    describe_call(&call)
                                ),
                                SpannedExpr::DUMMY_SPAN,
                            )
                            .with_note(why),
                        );
                    }
                    (false, Tv::True) => {
                        report.findings.push(
                            Diagnostic::new(
                                "SH017",
                                Severity::Warning,
                                format!(
                                    "runtime Deny of a statically always-allowed call: {} on the {lane} lane",
                                    describe_call(&call)
                                ),
                                SpannedExpr::DUMMY_SPAN,
                            )
                            .with_note(
                                "the static envelope admits this call under every context; \
                                 likely a stale snapshot or over-eager fast-path bailout",
                            ),
                        );
                    }
                    (_, Tv::Unknown) => report.unknown += 1,
                    _ => {}
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_core::trace::write_trace;
    use sdnshield_core::ApiCallKind;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::messages::FlowMod;
    use sdnshield_openflow::types::{DatapathId, Priority};

    const MANIFEST: &str = "PERM insert_flow LIMITING SWITCH 1 AND MAX_PRIORITY 100\n\
                            PERM visible_topology";

    fn insert(app: u16, dpid: u64, prio: u16) -> ApiCall {
        ApiCall::new(
            AppId(app),
            ApiCallKind::InsertFlow {
                dpid: DatapathId(dpid),
                flow_mod: FlowMod::add(FlowMatch::any(), Priority(prio), ActionList::drop()),
            },
        )
    }

    fn trace(decisions: &[(bool, ApiCall)]) -> String {
        let mut evs = vec![TraceEvent::Register {
            app: AppId(1),
            name: "fwd".into(),
            manifest: MANIFEST.into(),
        }];
        for (allowed, call) in decisions {
            evs.push(TraceEvent::Decision {
                lane: "deputy".into(),
                allowed: *allowed,
                call: call.clone(),
            });
        }
        write_trace(&evs)
    }

    #[test]
    fn in_envelope_allows_certify() {
        let r = certify_trace(&trace(&[(true, insert(1, 1, 50))]));
        assert!(r.is_certified(), "{:?}", r.findings);
        assert_eq!(r.decisions, 1);
        assert_eq!(r.allows, 1);
        assert_eq!(r.lanes.get("deputy"), Some(&1));
    }

    #[test]
    fn out_of_envelope_allow_is_sh016() {
        // Priority above the granted MAX_PRIORITY: provably outside.
        let r = certify_trace(&trace(&[(true, insert(1, 1, 5000))]));
        assert!(!r.is_certified());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "SH016");
    }

    #[test]
    fn unregistered_app_allow_is_sh016() {
        let r = certify_trace(&trace(&[(true, insert(9, 1, 10))]));
        assert_eq!(r.findings[0].code, "SH016");
        assert!(r.findings[0].notes[0].contains("not registered"));
    }

    #[test]
    fn deny_of_always_allowed_call_is_sh017_warning() {
        let r = certify_trace(&trace(&[(
            false,
            ApiCall::new(AppId(1), ApiCallKind::ReadTopology),
        )]));
        assert!(r.is_certified(), "SH017 is a warning, not an error");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, "SH017");
    }

    #[test]
    fn deny_inside_envelope_is_silent() {
        // Denying an in-envelope call is conservative, and the envelope for
        // a priority-5000 insert is F, so denying it is exactly right.
        let r = certify_trace(&trace(&[(false, insert(1, 1, 5000))]));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.denies, 1);
    }

    #[test]
    fn garbage_trace_is_an_error_not_a_panic() {
        let r = certify_trace("decision allowed=maybe\n");
        assert!(!r.is_certified());
        assert_eq!(r.findings[0].code, "SH000");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = certify_trace(&trace(&[(true, insert(1, 1, 50))]));
        let js = r.render_json("t.trace");
        assert!(js.starts_with("{\"schema_version\":"), "{js}");
        assert!(js.contains("\"mode\":\"certify\""), "{js}");
        assert!(js.contains("\"certified\":true"), "{js}");
    }
}
