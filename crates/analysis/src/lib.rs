//! `sdnshield-analysis` — static analysis for SDNShield permission manifests
//! (Appendix A) and security policies (Appendix B).
//!
//! The analyzer vets app-market submissions *before* any controller is
//! instantiated: it parses artifacts with span-carrying ASTs and runs
//! semantic lint passes built on the paper's Algorithm-1 inclusion algebra.
//! Every finding is a [`Diagnostic`] with a stable `SH0xx` code, a severity,
//! a source span, and notes, renderable as caret-underlined text or JSON.
//!
//! # Code registry
//!
//! | Code  | Severity | Finding |
//! |-------|----------|---------|
//! | SH000 | error    | syntax error (lex/parse failure) |
//! | SH001 | error    | unsatisfiable filter conjunction (provably disjoint conjuncts) |
//! | SH002 | warning  | shadowed/redundant OR branch (subsumed by a sibling) |
//! | SH003 | warning  | duplicate permission declaration (filters OR-join) |
//! | SH004 | warning  | sensitive (write-class) token granted without a narrowing filter |
//! | SH005 | warning  | unused LET binding / orphaned filter macro |
//! | SH006 | error    | undefined variable reference |
//! | SH007 | warning  | vacuous mutual exclusion (an operand is empty) |
//! | SH008 | warning  | overlapping mutual-exclusion operands |
//! | SH009 | error    | `APP` reference to an unknown app (market mode) |
//! | SH010 | warning  | constant assertion (references no app; can never trigger) |
//! | SH011 | warning  | stub macro not completed by the policy (market mode) |
//! | SH012 | warning  | overlapping write authority between reconciled apps (market mode) |
//! | SH013 | warning  | jointly exhaustive aggregate write authority (market mode) |
//! | SH014 | warning  | reconciliation cycle through `APP` references (market mode) |
//! | SH015 | warning  | semantic diff: an (app, token) decision flips (`shieldcheck diff`) |
//! | SH016 | error    | runtime Allow outside the static envelope (`shieldcheck certify`) |
//! | SH017 | warning  | runtime Deny of a statically always-allowed call (`shieldcheck certify`) |
//!
//! SH001, SH002, and SH008 are decided *exactly* by the SAT core
//! (`sdnshield_core::sat`); see DESIGN.md §14 for the theory axioms and the
//! accepted incompleteness around stateful literals.
//!
//! # Examples
//!
//! ```
//! use sdnshield_analysis::analyze_manifest;
//!
//! let diags = analyze_manifest(
//!     "PERM insert_flow LIMITING IP_DST 10.0.0.1 AND IP_DST 10.0.0.2",
//! );
//! assert_eq!(diags[0].code, "SH001");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certify;
pub mod diag;
pub mod diff;
pub mod lint;

use sdnshield_core::lang::{parse_manifest_spanned, SpannedExpr, SpannedManifest, SpannedPerm};
use sdnshield_core::policy::parse_policy_spanned;
use sdnshield_core::{PermissionSet, SyntaxError};

pub use certify::{certify_trace, CertifyReport};
pub use diag::{Diagnostic, Severity};
pub use diff::{diff_market, DiffEntry, DiffReport};
pub use lint::{AppReference, MarketCoverage, MarketManifest, TokenCoverage};

/// Analyzes a manifest source text: parse (SH000 on failure) + all manifest
/// lint passes. Diagnostics are ordered by source position.
pub fn analyze_manifest(src: &str) -> Vec<Diagnostic> {
    match parse_manifest_spanned(src) {
        Ok(m) => sorted(lint::lint_manifest(&m)),
        Err(e) => vec![syntax_diag(&e)],
    }
}

/// Analyzes a policy source text in isolation: parse (SH000 on failure) +
/// the policy lint passes that need no manifests.
pub fn analyze_policy(src: &str) -> Vec<Diagnostic> {
    match parse_policy_spanned(src) {
        Ok(p) => sorted(lint::lint_policy(&p)),
        Err(e) => vec![syntax_diag(&e)],
    }
}

/// The result of a whole-market analysis: per-manifest findings plus policy
/// findings, each attributed to the artifact they point into.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketReport {
    /// Diagnostics per manifest, in submission order, keyed by app name.
    pub manifests: Vec<(String, Vec<Diagnostic>)>,
    /// Diagnostics pointing into the policy (including the span-less
    /// cross-app market findings SH012–SH014).
    pub policy: Vec<Diagnostic>,
    /// Aggregate write-authority coverage and `APP`-reference reachability
    /// over the reconciled market.
    pub coverage: MarketCoverage,
}

impl MarketReport {
    /// Does any finding (anywhere) reach the given severity?
    pub fn has_severity(&self, severity: Severity) -> bool {
        self.manifests
            .iter()
            .flat_map(|(_, ds)| ds.iter())
            .chain(self.policy.iter())
            .any(|d| d.severity >= severity)
    }
}

/// Analyzes an app market: every manifest individually, the policy, and the
/// cross-artifact checks (unknown `APP` references, uncompleted stubs,
/// orphaned filter macros). `manifests` pairs each app name with its source.
pub fn analyze_market(manifests: &[(&str, &str)], policy_src: &str) -> MarketReport {
    let mut parsed: Vec<(usize, SpannedManifest)> = Vec::new();
    let mut report = MarketReport {
        manifests: manifests
            .iter()
            .map(|(name, _)| ((*name).to_owned(), Vec::new()))
            .collect(),
        policy: Vec::new(),
        coverage: MarketCoverage::default(),
    };
    for (i, (_, src)) in manifests.iter().enumerate() {
        match parse_manifest_spanned(src) {
            Ok(m) => {
                report.manifests[i].1.extend(lint::lint_manifest(&m));
                parsed.push((i, m));
            }
            Err(e) => report.manifests[i].1.push(syntax_diag(&e)),
        }
    }
    match parse_policy_spanned(policy_src) {
        Ok(policy) => {
            let market: Vec<MarketManifest<'_>> = parsed
                .iter()
                .map(|(i, m)| MarketManifest {
                    name: manifests[*i].0,
                    manifest: m,
                })
                .collect();
            report.policy = lint::lint_policy_with(&policy, Some(&market));
            for (i, m) in &parsed {
                report.manifests[*i].1.extend(lint::stub_lints(m, &policy));
            }
            let (cross, coverage) = lint::market_lints(&policy, &market);
            report.policy.extend(cross);
            report.coverage = coverage;
        }
        Err(e) => report.policy.push(syntax_diag(&e)),
    }
    for (_, ds) in &mut report.manifests {
        *ds = sorted(std::mem::take(ds));
    }
    report.policy = sorted(std::mem::take(&mut report.policy));
    report
}

/// Analyzes an already-parsed permission set (the kernel's pre-registration
/// path). Spans are unavailable, so diagnostics carry `span: None`.
pub fn analyze_permission_set(set: &PermissionSet) -> Vec<Diagnostic> {
    let m = SpannedManifest {
        perms: set
            .iter()
            .map(|(token, filter)| SpannedPerm {
                token,
                keyword_span: SpannedExpr::DUMMY_SPAN,
                name_span: SpannedExpr::DUMMY_SPAN,
                filter: Some(SpannedExpr::from_expr(filter)),
            })
            .collect(),
    };
    lint::lint_manifest(&m)
}

/// Does any diagnostic in the slice reach the given severity?
pub fn has_severity(diags: &[Diagnostic], severity: Severity) -> bool {
    diags.iter().any(|d| d.severity >= severity)
}

fn syntax_diag(e: &SyntaxError) -> Diagnostic {
    Diagnostic::new(
        "SH000",
        Severity::Error,
        format!("syntax error: {}", e.message),
        e.span(),
    )
}

/// Stable order: by position, then code.
fn sorted(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by_key(|d| {
        let (l, c) = d.span.map(|s| (s.line, s.col)).unwrap_or((0, 0));
        (l, c, d.code)
    });
    diags
}
