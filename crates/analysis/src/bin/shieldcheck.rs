//! `shieldcheck` — static analyzer CLI for SDNShield manifests and policies.
//!
//! ```text
//! shieldcheck [--format text|json] [--market] [--deny-warnings] FILE...
//! ```
//!
//! Files ending in `.pol` are policies; everything else is a manifest.
//! With `--market`, the manifests and the (single) policy are additionally
//! cross-checked as one app-market submission: `APP` references must name a
//! submitted manifest, and stub macros must be completed by the policy.
//!
//! Exit status: `0` clean (or warnings only), `1` findings at the failing
//! severity (errors, or warnings too under `--deny-warnings`), `2` usage or
//! I/O error.

use std::process::ExitCode;

use sdnshield_analysis::{analyze_manifest, analyze_market, analyze_policy, Diagnostic, Severity};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    market: bool,
    deny_warnings: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: shieldcheck [--format text|json] [--market] [--deny-warnings] FILE...
  FILE            manifest source, or policy when the name ends in .pol
  --format FMT    output format: text (default) or json
  --market        cross-check all manifests against the single policy
  --deny-warnings exit 1 on warnings as well as errors";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        market: false,
        deny_warnings: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--market" => opts.market = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(opts)
}

fn is_policy(path: &str) -> bool {
    path.ends_with(".pol")
}

/// An app's name in market mode: the file stem.
fn app_name(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".perm").unwrap_or(base)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Read everything up front so I/O failures exit 2 before any analysis.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &opts.files {
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((path.clone(), src)),
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // (origin, source, diagnostics) triples for rendering.
    let mut results: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    if opts.market {
        let policies: Vec<&(String, String)> =
            sources.iter().filter(|(p, _)| is_policy(p)).collect();
        if policies.len() != 1 {
            eprintln!(
                "error: --market needs exactly one policy (.pol) among the inputs, found {}",
                policies.len()
            );
            return ExitCode::from(2);
        }
        let (policy_path, policy_src) = policies[0];
        let manifests: Vec<(&str, &str)> = sources
            .iter()
            .filter(|(p, _)| !is_policy(p))
            .map(|(p, s)| (app_name(p), s.as_str()))
            .collect();
        let report = analyze_market(&manifests, policy_src);
        let manifest_sources: Vec<&(String, String)> =
            sources.iter().filter(|(p, _)| !is_policy(p)).collect();
        for ((path, src), (_, diags)) in manifest_sources.iter().zip(report.manifests) {
            results.push((path.clone(), src.clone(), diags));
        }
        results.push((policy_path.clone(), policy_src.clone(), report.policy));
    } else {
        for (path, src) in &sources {
            let diags = if is_policy(path) {
                analyze_policy(src)
            } else {
                analyze_manifest(src)
            };
            results.push((path.clone(), src.clone(), diags));
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    match opts.format {
        Format::Json => {
            let mut objects = Vec::new();
            for (origin, _, diags) in &results {
                for d in diags {
                    objects.push(d.render_json(origin));
                }
            }
            println!("[{}]", objects.join(","));
        }
        Format::Text => {
            for (origin, src, diags) in &results {
                for d in diags {
                    print!("{}", d.render_text(src, origin));
                }
            }
        }
    }
    for (_, _, diags) in &results {
        for d in diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
    }
    if opts.format == Format::Text {
        println!(
            "shieldcheck: {} file(s), {errors} error(s), {warnings} warning(s)",
            results.len()
        );
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
