//! `shieldcheck` — static analyzer CLI for SDNShield manifests and policies.
//!
//! ```text
//! shieldcheck [--format text|json] [--market] [--deny-warnings] FILE...
//! shieldcheck diff    [--format text|json] OLD.pol NEW.pol MANIFEST...
//! shieldcheck certify [--format text|json] TRACE
//! ```
//!
//! In lint mode, files ending in `.pol` are policies; everything else is a
//! manifest. With `--market`, the manifests and the (single) policy are
//! additionally cross-checked as one app-market submission: `APP` references
//! must name a submitted manifest, stub macros must be completed by the
//! policy, and the reconciled market is checked for cross-app conflicts
//! (SH012–SH014).
//!
//! `diff` reconciles every manifest under both policies and reports each
//! (app, token) decision that flips, with a SAT witness (SH015) — the
//! hot-reload pre-flight gate. `certify` replays an exported kernel
//! decision trace against the static envelope (SH016/SH017).
//!
//! Exit status (stable contract, pinned by the CLI e2e tests):
//! `0` clean, `1` warnings only, `2` errors (or warnings under
//! `--deny-warnings`), `3` usage or I/O error.

use std::process::ExitCode;

use sdnshield_analysis::{
    analyze_manifest, analyze_market, analyze_policy, certify_trace, diff_market, Diagnostic,
    Severity,
};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    market: bool,
    deny_warnings: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: shieldcheck [--format text|json] [--market] [--deny-warnings] FILE...
       shieldcheck diff    [--format text|json] OLD.pol NEW.pol MANIFEST...
       shieldcheck certify [--format text|json] TRACE
  FILE            manifest source, or policy when the name ends in .pol
  --format FMT    output format: text (default) or json
  --market        cross-check all manifests against the single policy
  --deny-warnings exit 2 on warnings as well as errors
exit status: 0 clean, 1 warnings, 2 errors, 3 usage/IO error";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        market: false,
        deny_warnings: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--market" => opts.market = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(opts)
}

fn is_policy(path: &str) -> bool {
    path.ends_with(".pol")
}

/// An app's name in market mode: the file stem.
fn app_name(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".perm").unwrap_or(base)
}

/// Usage/I-O failure: message + usage text, exit 3.
fn usage_error(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("{USAGE}");
    ExitCode::from(3)
}

fn read_file(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read `{path}`: {e}");
        ExitCode::from(3)
    })
}

/// The stable exit contract: 0 clean, 1 warnings only, 2 errors (or
/// warnings when `deny_warnings`).
fn exit_for(diags: &[Diagnostic], deny_warnings: bool) -> ExitCode {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::from(2)
    } else if warnings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => run_diff(&args[1..]),
        Some("certify") => run_certify(&args[1..]),
        _ => run_lint(&args),
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => return usage_error(&msg),
    };

    // Read everything up front so I/O failures exit 3 before any analysis.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &opts.files {
        match read_file(path) {
            Ok(src) => sources.push((path.clone(), src)),
            Err(code) => return code,
        }
    }

    // (origin, source, diagnostics) triples for rendering.
    let mut results: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    if opts.market {
        let policies: Vec<&(String, String)> =
            sources.iter().filter(|(p, _)| is_policy(p)).collect();
        if policies.len() != 1 {
            return usage_error(&format!(
                "--market needs exactly one policy (.pol) among the inputs, found {}",
                policies.len()
            ));
        }
        let (policy_path, policy_src) = policies[0];
        let manifests: Vec<(&str, &str)> = sources
            .iter()
            .filter(|(p, _)| !is_policy(p))
            .map(|(p, s)| (app_name(p), s.as_str()))
            .collect();
        let report = analyze_market(&manifests, policy_src);
        let manifest_sources: Vec<&(String, String)> =
            sources.iter().filter(|(p, _)| !is_policy(p)).collect();
        for ((path, src), (_, diags)) in manifest_sources.iter().zip(report.manifests) {
            results.push((path.clone(), src.clone(), diags));
        }
        results.push((policy_path.clone(), policy_src.clone(), report.policy));
    } else {
        for (path, src) in &sources {
            let diags = if is_policy(path) {
                analyze_policy(src)
            } else {
                analyze_manifest(src)
            };
            results.push((path.clone(), src.clone(), diags));
        }
    }

    match opts.format {
        Format::Json => {
            let mut objects = Vec::new();
            for (origin, _, diags) in &results {
                for d in diags {
                    objects.push(d.render_json(origin));
                }
            }
            println!("[{}]", objects.join(","));
        }
        Format::Text => {
            for (origin, src, diags) in &results {
                for d in diags {
                    print!("{}", d.render_text(src, origin));
                }
            }
        }
    }
    let all: Vec<Diagnostic> = results.into_iter().flat_map(|(_, _, ds)| ds).collect();
    if opts.format == Format::Text {
        let errors = all.iter().filter(|d| d.severity == Severity::Error).count();
        println!(
            "shieldcheck: {errors} error(s), {} warning(s)",
            all.len() - errors
        );
    }
    exit_for(&all, opts.deny_warnings)
}

fn run_diff(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => return usage_error(&msg),
    };
    if opts.files.len() < 2 {
        return usage_error("diff needs OLD.pol NEW.pol and zero or more manifests");
    }
    let (old_path, new_path) = (&opts.files[0], &opts.files[1]);
    if !is_policy(old_path) || !is_policy(new_path) {
        return usage_error("the first two diff arguments must be policies (.pol)");
    }
    let old_src = match read_file(old_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let new_src = match read_file(new_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut manifests: Vec<(String, String)> = Vec::new();
    for path in &opts.files[2..] {
        match read_file(path) {
            Ok(src) => manifests.push((app_name(path).to_owned(), src)),
            Err(code) => return code,
        }
    }
    let borrowed: Vec<(&str, &str)> = manifests
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let report = diff_market(&borrowed, &old_src, &new_src);
    let diags = report.diagnostics();
    match opts.format {
        Format::Json => println!("{}", report.render_json()),
        Format::Text => {
            for d in &diags {
                print!("{}", d.render_text("", new_path));
            }
            println!(
                "shieldcheck diff: {} app(s), {} decision flip(s), {} error(s)",
                report.apps.len(),
                report.entries.len(),
                report.errors.len()
            );
        }
    }
    exit_for(&diags, opts.deny_warnings)
}

fn run_certify(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => return usage_error(&msg),
    };
    if opts.files.len() != 1 {
        return usage_error("certify needs exactly one TRACE file");
    }
    let trace_path = &opts.files[0];
    let src = match read_file(trace_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = certify_trace(&src);
    match opts.format {
        Format::Json => println!("{}", report.render_json(trace_path)),
        Format::Text => {
            for d in &report.findings {
                print!("{}", d.render_text("", trace_path));
            }
            println!(
                "shieldcheck certify: {} decision(s) ({} allow, {} deny, {} unknown), \
                 {} finding(s), certified: {}",
                report.decisions,
                report.allows,
                report.denies,
                report.unknown,
                report.findings.len(),
                if report.is_certified() { "yes" } else { "no" }
            );
        }
    }
    exit_for(&report.findings, opts.deny_warnings)
}
